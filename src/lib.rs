//! # igcn — a reproduction of I-GCN (MICRO 2021)
//!
//! *I-GCN: A Graph Convolutional Network Accelerator with Runtime
//! Locality Enhancement through Islandization*, Geng et al., MICRO 2021.
//!
//! This facade crate re-exports the whole workspace as one coherent
//! public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `igcn-graph` | CSR graphs, synthetic datasets, statistics |
//! | [`linalg`] | `igcn-linalg` | dense/sparse matrices, the four SpMM dataflows |
//! | [`gnn`] | `igcn-gnn` | GCN/GraphSage/GIN models, reference forward pass |
//! | [`core`] | `igcn-core` | **the contribution**: Island Locator + Island Consumer, the owned [`core::IGcnEngine`] with parallel execution ([`core::ExecConfig`], [`core::IslandSchedule`]), and the unified [`core::accel::Accelerator`] serving trait |
//! | [`serve`] | `igcn-serve` | [`serve::ServingEngine`]: bounded request queue + worker pool + micro-batching over any backend, with periodic/shutdown checkpointing |
//! | [`shard`] | `igcn-shard` | [`shard::ShardedEngine`]: partitioned multi-engine serving — island-aware sharding, deterministic halo exchange, manifest-driven fleet boot |
//! | [`gateway`] | `igcn-gateway` | [`gateway::Gateway`]: the hermetic TCP serving edge — HTTP/1.1 + length-prefixed binary on one listener, deadlines, load shedding |
//! | [`store`] | `igcn-store` | persistent snapshots: versioned, checksummed binary engine images, the graph-update WAL, warm-start boot ([`store::from_snapshot`]) and the sharded-fleet [`store::ShardManifest`] |
//! | [`sim`] | `igcn-sim` | cycle/energy/area models; [`sim::SimBackend`] lifts any simulator into the serving trait |
//! | [`reorder`] | `igcn-reorder` | lightweight reordering baselines + quality metrics |
//! | [`fail`] | `igcn-fail` | named failpoints for chaos testing — zero-cost when disabled, deterministic triggers and fault actions |
//! | [`obs`] | `igcn-obs` | process-global metrics registry (counters, gauges, log₂-bucket histograms), RAII stage spans, trace IDs, the flight recorder |
//! | [`baselines`] | `igcn-baselines` | AWB-GCN, HyGCN, SIGMA, CPU/GPU models — all servable as `Accelerator` backends |
//!
//! # Quick start
//!
//! Build the engine once (it owns its graph behind an `Arc` and is
//! `Send + Sync`), `prepare` a model, then serve requests — one at a
//! time or in batches:
//!
//! ```
//! use igcn::core::accel::{Accelerator, InferenceRequest};
//! use igcn::core::IGcnEngine;
//! use igcn::gnn::{GnnModel, ModelWeights};
//! use igcn::graph::generate::HubIslandConfig;
//! use igcn::graph::SparseFeatures;
//!
//! // A graph with planted hub-and-island structure.
//! let g = HubIslandConfig::new(500, 20).noise_fraction(0.01).generate(42);
//!
//! // Islandize once and build the owned, serving-ready engine.
//! let mut engine = IGcnEngine::builder(g.graph).build()?;
//!
//! // Install the model once...
//! let model = GnnModel::gcn(32, 16, 4);
//! let weights = ModelWeights::glorot(&model, 1);
//! engine.prepare(&model, &weights)?;
//!
//! // ...then serve. `infer_batch` amortises the per-call setup.
//! let requests: Vec<InferenceRequest> = (0..3)
//!     .map(|i| InferenceRequest::new(SparseFeatures::random(500, 32, 0.1, i)).with_id(i))
//!     .collect();
//! let responses = engine.infer_batch(&requests)?;
//!
//! assert_eq!(responses.len(), 3);
//! assert_eq!(responses[0].output.rows(), 500);
//! println!(
//!     "aggregation ops pruned: {:.1}%",
//!     responses[0].report.aggregation_pruning_rate * 100.0
//! );
//! # Ok::<(), igcn::core::CoreError>(())
//! ```
//!
//! Evolving graphs stay inside the same engine:
//! `engine.apply_update(GraphUpdate::add_edges(batch))?` dissolves and
//! re-forms only the islands the touched edges disturb, then serving
//! continues on the updated graph. Edge *removals* work too
//! (`GraphUpdate::remove_edges`): the endpoints' islands dissolve, and
//! a hub starved below the configured hub floor is demoted and its
//! neighborhood re-islandized.
//!
//! Every execution backend — the engine itself, the
//! [`core::CpuReference`] software pass, and (through
//! [`sim::SimBackend`]) the I-GCN timing model plus the AWB-GCN, HyGCN,
//! SIGMA and CPU/GPU platform simulators — implements the same
//! [`core::accel::Accelerator`] trait, so cross-platform harnesses and
//! serving deployments iterate one `Vec<Box<dyn Accelerator>>`.
//!
//! # Parallel execution & serving
//!
//! Islandization exposes independent work: islands touch disjoint
//! cache-resident neighborhoods, so island-granular execution
//! parallelises with near-zero coordination. The engine materialises
//! that structure as an explicit [`core::IslandSchedule`] — wavefronts
//! of data-independent island tasks with per-island work estimates —
//! and [`core::ExecConfig`] controls how the schedule maps onto
//! software threads:
//!
//! * `num_threads` — worker threads (1 = the original sequential path,
//!   bit-for-bit);
//! * `parallel_islands` — fan per-island aggregation across the pool
//!   *inside* one inference (island-node rows land in disjoint output
//!   rows; hub partials merge back in schedule order, so outputs *and*
//!   statistics are bit-identical at every thread count);
//! * `parallel_batch` — fan `infer_batch` requests across the pool
//!   (each request then runs its layers sequentially).
//!
//! ```
//! use igcn::core::{ExecConfig, IGcnEngine};
//! use igcn::graph::generate::HubIslandConfig;
//!
//! let g = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(7);
//! let engine = IGcnEngine::builder(g.graph)
//!     .exec_config(ExecConfig::default().with_threads(4))
//!     .build()?;
//! assert_eq!(engine.exec_config().num_threads, 4);
//! # Ok::<(), igcn::core::CoreError>(())
//! ```
//!
//! The execution report carries the modelled occupancy of that schedule
//! (`worker_busy_cycles`, `utilisation` on [`core::ExecReport`]), and
//! the timing model reports island-schedule PE utilisation.
//!
//! # Memory layout & locality
//!
//! Islandization *discovers* which nodes are touched together; since
//! PR 3 the engine also makes that locality **physical**. At build time
//! (and after every `apply_update`) it composes the island schedule
//! into a schedule-order permutation — hubs first in detection order,
//! then islands back to back — and materialises an
//! [`core::IslandLayout`]: the permuted CSR graph (each island's nodes
//! and their intra-island neighbors contiguous in memory), the permuted
//! partition whose hub IDs are the compact range `0..H`, prebuilt
//! per-island adjacency bitmaps, and the inter-hub task list in legacy
//! replay order.
//!
//! Execution over the layout uses the zero-allocation hot path
//! ([`core::consumer::hotpath`]): one flat row-major
//! [`core::LayerScratch`] arena per worker — pooled by the engine and
//! reused across layers, islands, batch requests and `infer` calls —
//! with hub XW vectors and hub partial results in dense slabs indexed
//! by the compact hub IDs instead of `HashMap`s. On the 50k-node
//! power-law serving bin this is a ~3.8× single-thread layer-throughput
//! win (`results/locality_speedup.json`, reproducible with
//! `cargo run --release -p igcn-bench --bin layer_hotpath`).
//!
//! **The ID remap contract:** requests and responses always speak
//! *original* node IDs. Request features are gathered into schedule
//! order on the way in (`SparseFeatures::gather_rows_into` with
//! `IslandLayout::gather_order`), intermediate layers stay in layout
//! order, and only the final layer's rows are scattered back
//! (`IslandLayout::forward`). The layout is a pure locality
//! optimisation: outputs and `ExecStats` are **bit-identical** at every
//! thread count — pinned by the conformance suite's thread sweep, with
//! the sequential `IslandConsumer` kept as the layer-level oracle in
//! the hotpath tests. (The legacy index-indirect *engine* path it used
//! to power was retired in PR 6 after soaking since PR 3; its timings
//! live on in `results/locality_baseline.json`, which `layer_hotpath`
//! now reports against instead of a live A/B.)
//!
//! For a serving deployment, wrap any prepared backend in a
//! [`serve::ServingEngine`]: a bounded request queue (backpressure) in
//! front of a worker pool whose workers micro-batch co-arriving
//! requests into single `infer_batch` calls, with graceful shutdown:
//!
//! ```
//! use std::sync::Arc;
//! use igcn::core::accel::{Accelerator, InferenceRequest};
//! use igcn::core::{ExecConfig, IGcnEngine};
//! use igcn::gnn::{GnnModel, ModelWeights};
//! use igcn::graph::generate::HubIslandConfig;
//! use igcn::graph::SparseFeatures;
//! use igcn::serve::{ServingConfig, ServingEngine};
//!
//! let g = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(9);
//! let mut engine = IGcnEngine::builder(g.graph)
//!     .exec_config(ExecConfig::default().with_threads(2))
//!     .build()?;
//! let model = GnnModel::gcn(16, 8, 4);
//! let weights = ModelWeights::glorot(&model, 1);
//! engine.prepare(&model, &weights)?;
//!
//! let serving = ServingEngine::start(
//!     Arc::new(engine),
//!     ServingConfig::default().with_workers(2).with_max_batch(8),
//! );
//! let tickets: Vec<_> = (0..4)
//!     .map(|i| {
//!         let request =
//!             InferenceRequest::new(SparseFeatures::random(300, 16, 0.2, i)).with_id(i);
//!         serving.submit(request).expect("accepting")
//!     })
//!     .collect();
//! for (i, ticket) in tickets.into_iter().enumerate() {
//!     assert_eq!(ticket.wait().expect("served").id, i as u64);
//! }
//! serving.shutdown(); // graceful: drains the queue, joins the workers
//! # Ok::<(), igcn::core::CoreError>(())
//! ```
//!
//! `cargo run --release -p igcn-bench --bin serving_batch` sweeps
//! thread counts × batch sizes on a power-law graph and records the
//! scaling in `results/serving_scaling.json`.
//!
//! # Kernels & SIMD
//!
//! Below the hot path sit explicit SIMD kernels: [`simd`]
//! (`crates/compat/simd`, vendored, dependency-free) provides `f32x8` /
//! `i32x8` value types and whole-slice kernels with three backends —
//! portable scalar (always available, the reference semantics), AVX2
//! (`x86_64`) and NEON (`aarch64`). **Dispatch policy:** the backend is
//! probed once per process (`std::arch` feature detection, cached in an
//! atomic) and chosen *per kernel call*, so the hot loops themselves
//! live inside `#[target_feature]` functions with no per-element
//! branching; `igcn::simd::force_scalar(true)` pins the scalar path at
//! runtime (the conformance suite's fallback sweep runs both and
//! asserts equality). [`linalg::kernels`] builds the engine's kernels
//! on top: `axpy_f32`, `scale_f32`, and the register-tiled,
//! cache-blocked GEMM `gemm_blocked_into` that now powers
//! [`linalg::DenseMatrix::matmul`].
//!
//! **Why vectorization preserves bit-identity:** every kernel
//! vectorizes across *feature columns* — independent output elements —
//! and uses non-fused multiply-then-add (never FMA), so the per-element
//! sequence of f32 roundings is exactly the scalar loop's sequence; no
//! reduction is ever re-associated. The same argument covers the island
//! aggregation's column-blocked replay and the GEMM's k-blocking (both
//! reorder only across independent columns or keep per-element k-order).
//! Outputs and `ExecStats` are therefore bit-identical across scalar /
//! AVX2 / NEON, at every thread and shard count — pinned by unit tests
//! in `igcn-simd`/`igcn-linalg` and the conformance fallback sweep.
//!
//! **Quantized features** ([`linalg::QuantizedFeatures`],
//! `ExecConfig::with_quantized_features`): request features can be
//! staged as per-column symmetric int8 (`scale_c = max|v|/127`),
//! dequantized to f32 before any arithmetic. The CSR structure is
//! preserved bit for bit — every statistic and `account()` are
//! unchanged — while values carry absolute error at most
//! `max_c scale_c / 2` (≈ 0.004 for `[0, 1)` features), with the bound
//! debug-asserted on every quantized request. Default **off**; enable
//! it when the 4×-smaller feature value stream matters more than exact
//! f32 inputs (bandwidth-bound first layers on sparse real-world
//! features).
//!
//! `cargo run --release -p igcn-bench --bin kernel_bench` records
//! scalar-vs-SIMD-vs-blocked A/B medians per kernel and size bin to
//! `results/kernel_speedup.json`: a `kernels` array of
//! `{kernel, bin, n, scalar_median_ns, simd_median_ns, speedup}` rows
//! plus a `quantization` block (`max_abs_error`, `error_bound`,
//! `value_bytes` / `f32_value_bytes`) and a `caveats` note — medians are
//! measured on whatever machine ran the bench (the CI container is
//! 1-CPU, where the "scalar" loops autovectorize and ratios hover
//! around 1×; see the JSON's own caveat field).
//!
//! # Persistence & warm start
//!
//! Islandization runs at runtime — but not *every* runtime:
//! [`store`] (`igcn-store`) persists the complete engine image in a
//! versioned, checksummed binary snapshot (graph, partition, locator
//! statistics, the composed [`core::IslandLayout`], and optionally the
//! prepared model + weights and a default feature matrix), so a
//! restarted serving node **warm-starts**:
//!
//! ```
//! use igcn::core::{Accelerator, ExecConfig, IGcnEngine};
//! use igcn::gnn::{GnnModel, ModelWeights};
//! use igcn::graph::generate::HubIslandConfig;
//! use igcn::store::{from_snapshot, Snapshot};
//!
//! // Cold build once: pays the locator pass + layout composition.
//! let g = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(3);
//! let mut engine = IGcnEngine::builder(g.graph).build()?;
//! let model = GnnModel::gcn(16, 8, 4);
//! let weights = ModelWeights::glorot(&model, 1);
//! engine.prepare(&model, &weights)?;
//! let path = std::env::temp_dir().join("igcn-facade-doc.snap");
//! Snapshot::capture(&engine).write(&path).expect("snapshot writes");
//!
//! // Every later boot skips islandization entirely: checksum + a cheap
//! // structural invariant check, then serve. Bit-identical outputs and
//! // ExecStats to the cold-built engine, at every thread count.
//! let warm = from_snapshot(&path)
//!     .exec_config(ExecConfig::default().with_threads(2))
//!     .build()
//!     .expect("warm boot");
//! assert_eq!(warm.partition().num_islands(), engine.partition().num_islands());
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), igcn::core::CoreError>(())
//! ```
//!
//! **Format versioning & compatibility policy.** A snapshot file is
//! `magic | version | payload length | FNV-1a-64 checksum | payload`.
//! Readers accept exactly [`store::SNAPSHOT_VERSION`]; any
//! layout-affecting change to the wire format bumps the number and
//! older files fail fast with a typed
//! [`store::StoreError::UnsupportedVersion`] (a snapshot is a cache of
//! islandization work — rebuild it from the source graph, e.g. with
//! the `snapshot_tool build` bin). Corruption anywhere in the payload
//! is caught by the checksum before decoding; every other defect
//! (truncation, bad tags, structurally impossible images) is a typed
//! [`store::StoreError`], never a panic.
//!
//! **WAL replay semantics.** [`store::EngineStore`] manages a snapshot
//! plus a write-ahead log of [`core::GraphUpdate`]s:
//! `store.apply_update(&mut engine, update)` appends to the log
//! *before* the in-memory restructuring (rolling the record back if
//! the engine rejects it), and `store.boot(exec_cfg)` replays the log
//! over the warm-started image in append order — arriving at exactly
//! the serving state the process went down with. Replay is **batched**
//! ([`core::IGcnEngine::apply_updates_batched`]): every record applies
//! structurally and the physical layout is recomposed once at the end,
//! so long logs do not pay the O(n + m) layout composition per record
//! (end state pinned identical to per-record replay). A torn final record
//! (crash mid-append) is discarded and reported; the log is paired to
//! its snapshot by checksum, so a checkpoint interrupted between
//! writing the new snapshot and resetting the log can never
//! double-apply updates.
//!
//! **Checkpointing from the serving front-end.**
//! [`serve::ServingEngine::start_with_checkpoint`] accepts a
//! [`serve::CheckpointPolicy`] (every N executed micro-batches and/or
//! on graceful shutdown) and a hook that typically calls
//! [`store::EngineStore::checkpoint`] — folding the WAL back into the
//! snapshot off the request path (the hook runs after riders get
//! their responses, and a panicking hook is contained).
//!
//! `cargo run --release -p igcn-bench --bin snapshot_tool -- bench`
//! measures cold-build vs warm-start boot latency across the five
//! dataset bins and records it in `results/warm_start.json`; on the
//! 50k-node power-law and NELL-sized bins warm boot is ~7–8× faster
//! than re-islandizing. `snapshot_tool build|inspect|verify` create
//! snapshots from dataset bins or real edge-list dumps
//! (`igcn::graph::io::read_edge_list_flexible`), print header
//! metadata, and audit a file (checksum, structural validation,
//! `--deep` cold-rebuild comparison).
//!
//! # Sharded serving
//!
//! Graphs that exceed one engine's memory shard along the structure
//! islandization already discovered ([`shard`] / `igcn-shard`):
//!
//! * **The island-aware cut.** Whole islands are assigned to K shards
//!   by a deterministic greedy pass that groups islands sharing hubs
//!   (minimising the hub-side edge cut — the only cut islandized graphs
//!   have, since islands are closed) under a work-balance cap;
//!   [`shard::ShardingReport`] records the per-shard balance, cut
//!   fraction and hub replication of the chosen assignment.
//!
//! * **The halo / replication contract.** Each shard replicates the
//!   hubs its islands contact (ascending global hub order) and owns a
//!   complete [`core::IGcnEngine`] over that subgraph — independently
//!   servable, snapshot-able, and structurally valid (its partition
//!   passes the full islandization invariants). Per layer, the
//!   coordinator broadcasts the hub XW rows (the halo payload), shards
//!   compute their islands locally, and the coordinator merges the
//!   exported per-island hub contributions. Normalisation scales always
//!   come from *global* degrees (the halo truncates replicated-hub
//!   degrees, so shards never recompute scales locally).
//!
//! * **The determinism guarantee.** Shard-local IDs are
//!   order-isomorphic to the global layout IDs and the merge replays
//!   contributions in the global schedule order — the exact seam the
//!   single engine's thread-parallel path already uses — so outputs
//!   *and* `ExecStats` are **bit-identical** to a single engine at
//!   every shard count and thread count, before and after routed
//!   [`core::GraphUpdate`]s, and after a manifest round trip (pinned by
//!   the conformance suite's shard sweep). `apply_update` restructures
//!   the disturbed region globally, keeps undisturbed islands on their
//!   shard via an affinity pass, and refreshes every shard's halo.
//!
//! * **Manifest format & versioning.** A fleet persists as one
//!   standard snapshot per shard plus the coordinator image and a
//!   [`store::ShardManifest`] (`magic "IGSM" | version | length |
//!   FNV-1a-64 checksum | payload`) listing each member's file name and
//!   snapshot checksum — a swapped or rebuilt snapshot fails the
//!   pairing check before any engine is constructed. Readers accept
//!   exactly [`store::MANIFEST_VERSION`]; older manifests fail fast
//!   with a typed error (a manifest is derived data — re-partition from
//!   the coordinator snapshot). [`shard::ShardedEngine::from_manifest`]
//!   cold-starts the whole fleet with no locator pass anywhere.
//!
//! ```
//! use igcn::core::{Accelerator, IGcnEngine, InferenceRequest};
//! use igcn::gnn::{GnnModel, ModelWeights};
//! use igcn::graph::generate::HubIslandConfig;
//! use igcn::graph::SparseFeatures;
//! use igcn::shard::ShardedEngine;
//!
//! let g = HubIslandConfig::new(400, 16).noise_fraction(0.02).generate(11);
//! let mut single = IGcnEngine::builder(g.graph).build()?;
//! let model = GnnModel::gcn(16, 8, 4);
//! let weights = ModelWeights::glorot(&model, 1);
//! single.prepare(&model, &weights)?;
//!
//! let sharded = ShardedEngine::from_engine(&single, 2).expect("shardable");
//! let request = InferenceRequest::new(SparseFeatures::random(400, 16, 0.2, 3));
//! assert_eq!(
//!     sharded.infer(&request)?.output,
//!     single.infer(&request)?.output, // bit-identical
//! );
//! # Ok::<(), igcn::core::CoreError>(())
//! ```
//!
//! `cargo run --release -p igcn-bench --bin shard_tool -- bench`
//! sweeps shard counts over the dataset bins and records the balance /
//! cut / halo structure in `results/shard_scaling.json`;
//! `shard_tool partition|inspect|verify` build a fleet from a dataset
//! bin or edge-list dump, print manifest metadata, and audit a fleet
//! end to end (cold start + bit-identity against the coordinator
//! engine).
//!
//! # Network serving
//!
//! [`gateway`] (`igcn-gateway`) puts any prepared
//! [`core::accel::Accelerator`] — a single engine, a warm-started
//! snapshot, or a whole [`shard::ShardedEngine`] fleet — on a TCP
//! socket, with **zero network dependencies**: the event loop is the
//! vendored `crates/compat/mio` readiness poller over non-blocking
//! `std::net` sockets.
//!
//! One listener speaks **two wire protocols**, sniffed from the first
//! byte of each connection:
//!
//! * **HTTP/1.1** — `POST /v1/infer` with a JSON body
//!   `{"id": u64, "deadline_ms": u64?, "features": {"rows": .., "cols": ..,
//!   "indptr": [..], "indices": [..], "values": [..]}}`, answering
//!   `200` with the dense output matrix (shortest-round-trip `f32`
//!   encoding, so the JSON round trip is still bit-exact), plus
//!   `GET /healthz`, `GET /stats` and `GET /metrics` for probes and
//!   dashboards. Errors map onto status codes: `429` shed, `504`
//!   deadline expired, `4xx` malformed, `500` backend failure. An
//!   `X-IGCN-Trace` request header carries the request's trace ID (see
//!   *Observability* below); every response echoes it.
//! * **Length-prefixed binary** ([`gateway::wire`]) — `magic | version |
//!   payload length | FNV-1a-64 checksum | trace id | payload` frames
//!   carrying raw IEEE-754 bits, the same framing conventions as
//!   `igcn-store` snapshots. Readers accept exactly
//!   [`gateway::wire::WIRE_VERSION`] (**2** since the trace-id header
//!   field — version-1 frames fail fast with a typed message, per the
//!   same compatibility policy as snapshots); a corrupt or
//!   mis-versioned frame is answered with a typed `Err` frame and the
//!   connection closes. The trace id rides the *header*, outside
//!   checksum coverage, so it is readable even when the payload is
//!   rejected. The magic's first byte (`0x89`) can never begin an HTTP
//!   request, which is what makes the sniff unambiguous.
//!
//! Flow control is explicit and non-blocking at the edge:
//!
//! * **Bounded admission + load shedding** — a full admission queue
//!   ([`gateway::GatewayConfig::admission_capacity`]) or an
//!   EWMA-estimated wait beyond
//!   [`gateway::GatewayConfig::max_estimated_wait`] sheds the request
//!   *immediately* (HTTP `429` / binary `Shed`); IO threads never
//!   block on a saturated backend.
//! * **Deadline cancellation before dispatch** — `deadline_ms` is
//!   re-checked at the moment the dispatcher would hand the request to
//!   the serving tier; an expired request is answered (`504` / binary
//!   `Deadline`) without ever reaching the backend.
//! * **Bounded connection buffers** — each connection's input and
//!   output buffer is capped at
//!   [`gateway::GatewayConfig::max_conn_buffer`]; a peer that floods
//!   pipelined requests or stops draining responses is paused via TCP
//!   backpressure (and a single over-budget request is rejected with
//!   `413` / binary `Err`), so one hostile client cannot grow gateway
//!   memory without bound.
//! * **Graceful drain** — shutdown completes in-flight requests and
//!   flushes their responses before the threads exit.
//!
//! Sizing knobs: `IGCN_IO_THREADS` (poll loops) and
//! `IGCN_WORKER_THREADS` (serving workers behind the queue) override
//! the defaults via [`gateway::GatewayConfig::from_env`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use igcn::core::{Accelerator, IGcnEngine};
//! use igcn::gateway::{Gateway, GatewayConfig, HttpClient, InferReply};
//! use igcn::gnn::{GnnModel, ModelWeights};
//! use igcn::graph::generate::HubIslandConfig;
//! use igcn::graph::SparseFeatures;
//!
//! let g = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(5);
//! let mut engine = IGcnEngine::builder(g.graph).build()?;
//! let model = GnnModel::gcn(16, 8, 4);
//! let weights = ModelWeights::glorot(&model, 1);
//! engine.prepare(&model, &weights)?;
//!
//! let gateway = Gateway::serve(
//!     Arc::new(engine),
//!     "127.0.0.1:0", // port 0: pick any free port
//!     GatewayConfig::from_env(),
//! )?;
//! let mut client = HttpClient::connect(gateway.local_addr())?;
//! let features = SparseFeatures::random(300, 16, 0.2, 9);
//! match client.infer(1, Some(250), &features)? {
//!     InferReply::Output { output, .. } => assert_eq!(output.rows(), 300),
//!     other => panic!("request refused: {other:?}"),
//! }
//! gateway.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! `examples/gateway_client.rs` runs the full loop — boot, serve, query
//! over both protocols, read `/stats` — and
//! `cargo run --release -p igcn-bench --bin gateway_tool` serves a
//! snapshot or shard manifest from the command line (`serve`) or drives
//! a served gateway with an open-loop load generator (`load`),
//! recording RPS and latency percentiles in
//! `results/gateway_load.json`.
//!
//! # Failure modes & recovery
//!
//! Every layer treats faults as first-class inputs: failures surface
//! as typed errors, recovery paths are deterministic, and each one is
//! pinned by failpoint-driven tests ([`fail`] / `igcn-fail`: named
//! failpoints with deterministic `always` / `once` / `nth(N)` /
//! `prob(P,SEED)` triggers and return-error / truncate-write / panic /
//! delay actions — one relaxed atomic load when disabled, so the
//! instrumentation ships in production builds). The registered points
//! are enumerated in `igcn::store::FAILPOINTS` and
//! `igcn::shard::FAILPOINTS`, and
//! `cargo run --release -p igcn-bench --bin chaos_tool` drives seeded
//! campaigns (hundreds of injections, `results/chaos.json`) that
//! require 100% recovery with bit-identical outputs and `ExecStats`.
//!
//! | fault | detected by | surfaces as | recovery | pinned by |
//! |---|---|---|---|---|
//! | corrupt / torn snapshot at boot | checksum + structural validation | — | quarantined to `<snapshot>.quarantine`, boot falls back to `<snapshot>.prev` + WAL replay | `igcn-store` failpoint suite, chaos campaign |
//! | crash mid-checkpoint (rotated but not published) | current snapshot missing | `Err` from the interrupted `save` | boot loads the previous generation; the WAL still pairs with it, so **no acknowledged update is lost** | `store::checkpoint::rotated` / `store::snapshot::publish` plans |
//! | crash mid-WAL-append (torn record) | record length + FNV-1a checksum | torn tail discarded, reported in [`store::BootOutcome`] | replay stops at the tear; the torn update was never acknowledged | tear-at-every-byte-offset sweep in `igcn-store` |
//! | stale WAL after an interrupted reset | snapshot-checksum pairing header | `stale_wal_discarded` in [`store::BootOutcome`] | discarded, never double-applied | `igcn-store` failpoint suite |
//! | engine rejects a logged update | typed [`core::CoreError`] | `Err` from [`store::EngineStore::apply_update`] | the WAL record is rolled back; the log matches memory exactly | `igcn-store` unit tests |
//! | shard panic mid-layer | `catch_unwind` at the fan-out seam | [`core::CoreError::BackendFailed`], [`shard::ShardHealth::Down`] | fleet degrades + fails fast; [`shard::ShardedEngine::heal`] rebuilds only the dead shards, restoring bit-identity | `igcn-shard` failpoint suite, chaos campaign |
//! | wedged serving backend | consecutive micro-batch failure streak | [`core::BackendHealth::Degraded`] from [`serve::ServingEngine::health`] | one successful batch resets the streak; `/healthz` answers `503` meanwhile | `igcn-serve` wedged-backend test |
//! | gateway overload | bounded admission queue + EWMA wait estimate | HTTP `429` / binary `Shed`, health `degraded` | clients retry shed replies under a bounded, **seeded** backoff ([`gateway::RetryPolicy`]) | `igcn-gateway` retry tests |
//! | gateway restarting | transient connect errors (refused/reset/aborted/timed out) | `io::Error` | bounded seeded-backoff reconnect (`connect_with_retry`) | `igcn-gateway` client tests |
//! | malformed gateway reply | response/frame parsers | `io::ErrorKind::InvalidData` | **never retried** — resending into a broken peer is how retry storms start | `malformed_responses_are_never_retried` |
//! | planned restart | [`gateway::Gateway::begin_drain`] | health `draining`, `/healthz` `503`, new work shed | in-flight requests finish; the load balancer rotates traffic away before `shutdown` | `igcn-gateway` health-model test |
//!
//! The live health model ties it together: `/healthz` (HTTP) and the
//! binary `HealthCheck`/`Health` frames report
//! `ready` / `degraded` / `draining` with a human-readable detail
//! string, folding backend health ([`core::accel::Accelerator::health`])
//! with the gateway's own shed-pressure estimate — `200` only when
//! `ready`, so a probe needs no JSON parsing to rotate a node out.
//!
//! # Observability
//!
//! [`obs`] (`igcn-obs`, `crates/compat/telemetry` — vendored,
//! dependency-free) is the workspace's telemetry layer: a
//! process-global metrics registry, RAII stage timing, end-to-end
//! trace IDs, and a flight recorder, all lock-free on the record path.
//!
//! * **Registry.** `obs::counter("name")` / `obs::gauge("name")` /
//!   `obs::histogram("name")` intern `&'static` handles on first use
//!   (atomic increments thereafter — safe from any thread, including
//!   pool workers mid-inference). Histograms bucket values into 64
//!   log₂ bins, so recording is a few atomic ops and snapshots report
//!   p50/p90/p99/max with bit-stable bucket upper bounds.
//! * **Stage spans.** The request path is instrumented with named
//!   stages ([`obs::stage`]): gateway decode, queue wait, dispatch,
//!   layer execute (both the single-engine and the sharded fleet's
//!   local layer compute), halo exchange/merge, WAL append,
//!   checkpoint, response encode. `obs::Span::enter(stage)` times a
//!   scope into `stage_ns/<stage>`; telemetry is **off by default**
//!   and a disabled span is one relaxed atomic load (≤ 5 ns, pinned by
//!   `obs_tool`'s probe), so the spans ship unconditionally —
//!   [`gateway::Gateway::serve`] flips the switch for serving
//!   processes. Instrumentation is *bit-neutral*: outputs and
//!   `ExecStats` are identical on/off (asserted every CI run).
//! * **Trace IDs.** Every request carries a `u64` trace end to end:
//!   clients supply one (`X-IGCN-Trace` header / the binary frame's
//!   header field) or the gateway mints one; every reply — including
//!   shed, deadline and error replies — echoes it, and slow-request
//!   log lines (> 500 ms service) carry it, so one grep follows a
//!   request across layers.
//! * **Flight recorder.** The last [`obs::FLIGHT_CAPACITY`] (256)
//!   completed requests keep a per-stage breakdown
//!   ([`obs::FlightEntry`]: trace ID, protocol, terminal status,
//!   `(stage, ns)` pairs) in a bounded ring — the first thing to read
//!   after a latency incident.
//! * **Scrape endpoints.** `GET /metrics` renders Prometheus text
//!   (every family introduced by a `# HELP` line — register richer
//!   help with `obs::describe` — counters as `igcn_<name>_total`,
//!   gauges as `igcn_<name>`, stage histograms as an `igcn_stage_ns`
//!   summary family, plus per-gateway `igcn_gateway_*` lines
//!   including the live `queue_depth`/`inflight` gauges and the shed
//!   counter split by reason); `GET /stats` serves the same as JSON
//!   with queue depth, per-stage quantiles and per-shard health
//!   ([`core::accel::Accelerator::component_health`] — `/healthz` and
//!   the binary `Health` frame carry the same per-shard detail);
//!   `GET /debug/flight` serves the flight-recorder ring as JSON.
//! * **Trace trees.** Beyond the flat stage histograms, every
//!   inference request roots a hierarchical span tree
//!   ([`obs::trace`]): the gateway's `request` root carries protocol
//!   and request-id tags and parents `gateway_decode_*`,
//!   `queue_wait` and `dispatch` children; the dispatch context rides
//!   [`core::accel::InferenceRequest::trace`] into the backend, where
//!   [`shard::ShardedEngine`] adds per-layer `layer_execute` spans
//!   (tagged with island wavefront counts) with one `shard_execute`
//!   child per shard plus `halo_exchange`/`halo_merge` children, and
//!   the single-engine path adds its own `layer_execute` spans.
//!   Untraced spans stay inert — one branch, no clock read — so the
//!   disabled fast path keeps its ≤ 5 ns budget.
//! * **Tail sampling.** Completed trees are kept only when slow
//!   (total time over `obs::trace::slow_threshold_ns`, default
//!   500 ms, env `IGCN_TRACE_THRESHOLD_MS`) or non-`ok` (failed,
//!   shed, deadline, aborted — a dropped-without-finish root, e.g. a
//!   connection that died, retains as `aborted`), in a bounded ring
//!   of `obs::trace::retention()` trees (default 64, env
//!   `IGCN_TRACE_RETAIN`); in-progress assembly is capped at 512
//!   concurrent traces / 2048 spans per trace, with overflow counted
//!   in `traces_dropped` and per-trace `truncated_spans`.
//! * **Trace export.** `GET /traces` lists retained trees;
//!   `GET /trace/{id}` serves one as Chrome trace-event JSON
//!   ([`obs::trace::RetainedTrace::to_chrome_json`]) loadable in
//!   `chrome://tracing`/Perfetto, with spans tagged `shard=K` on
//!   track `tid = K + 1` so per-shard work lines up visually.
//! * **Structured logging.** [`log`] (`igcn-log`, vendored,
//!   dependency-free) emits single-line JSON records to stderr:
//!   `{"ts_ms", "level", "target", "msg", fields...}`, plus `"trace"`
//!   (16-hex) when a [`log::with_trace`] guard is installed — the
//!   gateway's slow-request warning uses it, so the line correlates
//!   with `GET /trace/{id}` directly. Levels filter on one atomic
//!   compare (`IGCN_LOG=debug|info|warn|error|off`), and each
//!   callsite rate-limits itself (50/s, then one `"suppressed": n`
//!   summary) so a hot error path cannot flood stderr.
//!
//! `cargo run --release -p igcn-bench --bin obs_tool` walks the whole
//! contract — overhead probe, bit-neutrality, trace echo over both
//! protocols, stage coverage, scrape parsing — and records per-stage
//! p50/p99 per protocol in `results/telemetry.json` (1-CPU container:
//! stage *ratios* transfer, absolute nanoseconds do not);
//! `trace_tool` does the same for trace trees (capture, listing,
//! Chrome export shape, per-shard coverage, drain leak-freedom). The
//! chaos campaigns additionally reconcile error counters against
//! their own fault tallies (`shard_contained_panics`,
//! `store_wal_rollbacks`) and assert no counter ever goes backwards
//! across a heal or recovery boot.
//!
//! ## The perf-regression observatory
//!
//! `results/perf_baseline.json` pins reference values for the
//! machine-independent metrics in the committed results files —
//! recovery rates, bit-identity flags, structural partition quality
//! (5% tolerance bands), client/protocol error counts, the
//! disabled-span budget — and `perf_gate` (`igcn_bench::perf`) fails
//! CI when any current value regresses past its tolerance.
//! Wall-clock timings are deliberately not gated: CI re-records
//! `results/*.json` on arbitrary containers, so only portable
//! numbers carry signal. Every verdict appends to
//! `results/perf_history.json` (bounded to the last 200 runs), the
//! trail of what moved and when. To move a baseline deliberately,
//! change `perf_baseline.json` in the same commit as the code that
//! moved the metric, with the why in the gate's `note`.
//!
//! # Migrating from the borrowed engine (pre-builder API)
//!
//! The old engine borrowed its graph and panicked on shape errors:
//!
//! ```text
//! // before:
//! let engine = IGcnEngine::new(&graph, island_cfg, consumer_cfg)?;   // borrows graph
//! let (out, stats) = engine.run(&x, &model, &weights);               // panics on bad shapes
//! ```
//!
//! The engine now owns its graph (`Arc` inside — pass a `CsrGraph` by
//! value or an existing `Arc<CsrGraph>`) and every path returns
//! `Result`:
//!
//! ```text
//! // after:
//! let engine = IGcnEngine::builder(graph)
//!     .island_config(island_cfg)      // optional, defaults preserved
//!     .consumer_config(consumer_cfg)  // optional
//!     .build()?;
//! let (out, stats) = engine.run(&x, &model, &weights)?;
//! ```
//!
//! `incremental_islandize` + `apply_edges` call sites collapse into
//! `engine.apply_update(GraphUpdate::add_edges(added))?`, and
//! `engine.verify(..)` / `engine.account(..)` now return `Result` too.

pub use igcn_baselines as baselines;
pub use igcn_core as core;
pub use igcn_fail as fail;
pub use igcn_gateway as gateway;
pub use igcn_gnn as gnn;
pub use igcn_graph as graph;
pub use igcn_linalg as linalg;
pub use igcn_log as log;
pub use igcn_obs as obs;
pub use igcn_reorder as reorder;
pub use igcn_serve as serve;
pub use igcn_shard as shard;
pub use igcn_sim as sim;
pub use igcn_simd as simd;
pub use igcn_store as store;
