//! # igcn — a reproduction of I-GCN (MICRO 2021)
//!
//! *I-GCN: A Graph Convolutional Network Accelerator with Runtime
//! Locality Enhancement through Islandization*, Geng et al., MICRO 2021.
//!
//! This facade crate re-exports the whole workspace as one coherent
//! public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `igcn-graph` | CSR graphs, synthetic datasets, statistics |
//! | [`linalg`] | `igcn-linalg` | dense/sparse matrices, the four SpMM dataflows |
//! | [`gnn`] | `igcn-gnn` | GCN/GraphSage/GIN models, reference forward pass |
//! | [`core`] | `igcn-core` | **the contribution**: Island Locator + Island Consumer, the owned [`core::IGcnEngine`], and the unified [`core::accel::Accelerator`] serving trait |
//! | [`sim`] | `igcn-sim` | cycle/energy/area models; [`sim::SimBackend`] lifts any simulator into the serving trait |
//! | [`reorder`] | `igcn-reorder` | lightweight reordering baselines + quality metrics |
//! | [`baselines`] | `igcn-baselines` | AWB-GCN, HyGCN, SIGMA, CPU/GPU models — all servable as `Accelerator` backends |
//!
//! # Quick start
//!
//! Build the engine once (it owns its graph behind an `Arc` and is
//! `Send + Sync`), `prepare` a model, then serve requests — one at a
//! time or in batches:
//!
//! ```
//! use igcn::core::accel::{Accelerator, InferenceRequest};
//! use igcn::core::IGcnEngine;
//! use igcn::gnn::{GnnModel, ModelWeights};
//! use igcn::graph::generate::HubIslandConfig;
//! use igcn::graph::SparseFeatures;
//!
//! // A graph with planted hub-and-island structure.
//! let g = HubIslandConfig::new(500, 20).noise_fraction(0.01).generate(42);
//!
//! // Islandize once and build the owned, serving-ready engine.
//! let mut engine = IGcnEngine::builder(g.graph).build()?;
//!
//! // Install the model once...
//! let model = GnnModel::gcn(32, 16, 4);
//! let weights = ModelWeights::glorot(&model, 1);
//! engine.prepare(&model, &weights)?;
//!
//! // ...then serve. `infer_batch` amortises the per-call setup.
//! let requests: Vec<InferenceRequest> = (0..3)
//!     .map(|i| InferenceRequest::new(SparseFeatures::random(500, 32, 0.1, i)).with_id(i))
//!     .collect();
//! let responses = engine.infer_batch(&requests)?;
//!
//! assert_eq!(responses.len(), 3);
//! assert_eq!(responses[0].output.rows(), 500);
//! println!(
//!     "aggregation ops pruned: {:.1}%",
//!     responses[0].report.aggregation_pruning_rate * 100.0
//! );
//! # Ok::<(), igcn::core::CoreError>(())
//! ```
//!
//! Evolving graphs stay inside the same engine:
//! `engine.apply_update(GraphUpdate::add_edges(batch))?` dissolves and
//! re-forms only the islands the new edges touch, then serving
//! continues on the updated graph.
//!
//! Every execution backend — the engine itself, the
//! [`core::CpuReference`] software pass, and (through
//! [`sim::SimBackend`]) the I-GCN timing model plus the AWB-GCN, HyGCN,
//! SIGMA and CPU/GPU platform simulators — implements the same
//! [`core::accel::Accelerator`] trait, so cross-platform harnesses and
//! serving deployments iterate one `Vec<Box<dyn Accelerator>>`.
//!
//! # Migrating from the borrowed engine (pre-builder API)
//!
//! The old engine borrowed its graph and panicked on shape errors:
//!
//! ```text
//! // before:
//! let engine = IGcnEngine::new(&graph, island_cfg, consumer_cfg)?;   // borrows graph
//! let (out, stats) = engine.run(&x, &model, &weights);               // panics on bad shapes
//! ```
//!
//! The engine now owns its graph (`Arc` inside — pass a `CsrGraph` by
//! value or an existing `Arc<CsrGraph>`) and every path returns
//! `Result`:
//!
//! ```text
//! // after:
//! let engine = IGcnEngine::builder(graph)
//!     .island_config(island_cfg)      // optional, defaults preserved
//!     .consumer_config(consumer_cfg)  // optional
//!     .build()?;
//! let (out, stats) = engine.run(&x, &model, &weights)?;
//! ```
//!
//! `incremental_islandize` + `apply_edges` call sites collapse into
//! `engine.apply_update(GraphUpdate::add_edges(added))?`, and
//! `engine.verify(..)` / `engine.account(..)` now return `Result` too.

pub use igcn_baselines as baselines;
pub use igcn_core as core;
pub use igcn_gnn as gnn;
pub use igcn_graph as graph;
pub use igcn_linalg as linalg;
pub use igcn_reorder as reorder;
pub use igcn_sim as sim;
