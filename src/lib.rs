//! # igcn — a reproduction of I-GCN (MICRO 2021)
//!
//! *I-GCN: A Graph Convolutional Network Accelerator with Runtime
//! Locality Enhancement through Islandization*, Geng et al., MICRO 2021.
//!
//! This facade crate re-exports the whole workspace as one coherent
//! public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `igcn-graph` | CSR graphs, synthetic datasets, statistics |
//! | [`linalg`] | `igcn-linalg` | dense/sparse matrices, the four SpMM dataflows |
//! | [`gnn`] | `igcn-gnn` | GCN/GraphSage/GIN models, reference forward pass |
//! | [`core`] | `igcn-core` | **the contribution**: Island Locator + Island Consumer |
//! | [`sim`] | `igcn-sim` | cycle/energy/area models of the accelerator |
//! | [`reorder`] | `igcn-reorder` | lightweight reordering baselines + quality metrics |
//! | [`baselines`] | `igcn-baselines` | AWB-GCN, HyGCN, SIGMA, CPU/GPU models |
//!
//! # Quick start
//!
//! ```
//! use igcn::core::{ConsumerConfig, IGcnEngine, IslandizationConfig};
//! use igcn::gnn::{GnnModel, ModelWeights};
//! use igcn::graph::generate::HubIslandConfig;
//! use igcn::graph::SparseFeatures;
//!
//! // A graph with planted hub-and-island structure.
//! let g = HubIslandConfig::new(500, 20).noise_fraction(0.01).generate(42);
//!
//! // Islandize once, then run GCN inference at island granularity.
//! let engine = IGcnEngine::new(
//!     &g.graph,
//!     IslandizationConfig::default(),
//!     ConsumerConfig::default(),
//! )?;
//! let features = SparseFeatures::random(500, 32, 0.1, 7);
//! let model = GnnModel::gcn(32, 16, 4);
//! let weights = ModelWeights::glorot(&model, 1);
//! let (output, stats) = engine.run(&features, &model, &weights);
//!
//! assert_eq!(output.rows(), 500);
//! println!("aggregation ops pruned: {:.1}%", stats.aggregation_pruning_rate() * 100.0);
//! # Ok::<(), igcn::core::CoreError>(())
//! ```

pub use igcn_baselines as baselines;
pub use igcn_core as core;
pub use igcn_gnn as gnn;
pub use igcn_graph as graph;
pub use igcn_linalg as linalg;
pub use igcn_reorder as reorder;
pub use igcn_sim as sim;
