//! Accelerator shoot-out on one dataset, through the unified serving
//! trait.
//!
//! Binds I-GCN, AWB-GCN, HyGCN, SIGMA and the PyG/DGL software stacks
//! to the Citeseer stand-in as [`Accelerator`] backends — a miniature
//! of the paper's Figure 14(B) on the same API a serving deployment
//! uses.
//!
//! ```sh
//! cargo run --release --example accelerator_comparison
//! ```

use std::sync::Arc;

use igcn::baselines::{AwbGcn, HyGcn, Platform, PlatformKind, Sigma};
use igcn::core::accel::{Accelerator, InferenceRequest};
use igcn::gnn::{GnnKind, GnnModel, ModelConfig, ModelWeights};
use igcn::graph::datasets::Dataset;
use igcn::sim::{HardwareConfig, IGcnAccelerator, SimBackend};

fn main() {
    let dataset = Dataset::Citeseer;
    let data = dataset.generate(42);
    let model = GnnModel::for_dataset(dataset, GnnKind::Gcn, ModelConfig::Algo);
    let weights = ModelWeights::glorot(&model, 7);
    println!(
        "{dataset} / {}: {} nodes, {} edges\n",
        model.label(ModelConfig::Algo),
        data.graph.num_nodes(),
        data.graph.num_undirected_edges()
    );

    let hw = HardwareConfig::paper_default();
    let graph = Arc::new(data.graph);
    let mut platforms: Vec<Box<dyn Accelerator>> = vec![
        Box::new(SimBackend::new(IGcnAccelerator::new(hw), Arc::clone(&graph))),
        Box::new(SimBackend::new(AwbGcn::new(hw), Arc::clone(&graph))),
        Box::new(SimBackend::new(HyGcn::paper_config(), Arc::clone(&graph))),
        Box::new(SimBackend::new(Sigma::paper_config(), Arc::clone(&graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::PygGpuV100), Arc::clone(&graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::DglCpuE5_2683), Arc::clone(&graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::PygCpuE5_2680), Arc::clone(&graph))),
    ];

    let request = InferenceRequest::new(data.features);
    let mut results: Vec<_> = platforms
        .iter_mut()
        .map(|p| {
            p.prepare(&model, &weights).expect("weights match the model");
            (p.name(), p.report(&request).expect("dataset shapes match"))
        })
        .collect();
    results.sort_by(|a, b| a.1.latency_s.partial_cmp(&b.1.latency_s).unwrap());

    let igcn_latency = results
        .iter()
        .find(|(name, _)| name == "I-GCN")
        .map(|(_, r)| r.latency_s)
        .expect("I-GCN present");

    println!(
        "{:<24} {:>14} {:>14} {:>16}",
        "platform", "latency (µs)", "vs I-GCN", "off-chip (MB)"
    );
    for (name, report) in &results {
        println!(
            "{:<24} {:>14.2} {:>13.1}x {:>16.2}",
            name,
            report.latency_us(),
            report.latency_s / igcn_latency,
            report.offchip_bytes as f64 / 1e6
        );
    }
    println!(
        "\nPaper (Figure 14B): I-GCN averages 5.7x over the GCN accelerators, 16x over\n\
         SIGMA, hundreds-to-thousands-x over the software stacks."
    );
}
