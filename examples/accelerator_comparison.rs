//! Accelerator shoot-out on one dataset.
//!
//! Simulates I-GCN against AWB-GCN, HyGCN, SIGMA and the PyG/DGL software
//! stacks on the Citeseer stand-in — a miniature of the paper's
//! Figure 14(B).
//!
//! ```sh
//! cargo run --release --example accelerator_comparison
//! ```

use igcn::baselines::{AwbGcn, HyGcn, Platform, PlatformKind, Sigma};
use igcn::gnn::{GnnKind, GnnModel, ModelConfig};
use igcn::graph::datasets::Dataset;
use igcn::sim::{GcnAccelerator, HardwareConfig, IGcnAccelerator};

fn main() {
    let dataset = Dataset::Citeseer;
    let data = dataset.generate(42);
    let model = GnnModel::for_dataset(dataset, GnnKind::Gcn, ModelConfig::Algo);
    println!(
        "{dataset} / {}: {} nodes, {} edges\n",
        model.label(ModelConfig::Algo),
        data.graph.num_nodes(),
        data.graph.num_undirected_edges()
    );

    let hw = HardwareConfig::paper_default();
    let platforms: Vec<Box<dyn GcnAccelerator>> = vec![
        Box::new(IGcnAccelerator::new(hw)),
        Box::new(AwbGcn::new(hw)),
        Box::new(HyGcn::paper_config()),
        Box::new(Sigma::paper_config()),
        Box::new(Platform::new(PlatformKind::PygGpuV100)),
        Box::new(Platform::new(PlatformKind::DglCpuE5_2683)),
        Box::new(Platform::new(PlatformKind::PygCpuE5_2680)),
    ];

    let mut results: Vec<_> = platforms
        .iter()
        .map(|p| (p.name(), p.simulate(&data.graph, &data.features, &model)))
        .collect();
    results.sort_by(|a, b| a.1.latency_s.partial_cmp(&b.1.latency_s).unwrap());

    let igcn_latency = results
        .iter()
        .find(|(name, _)| name == "I-GCN")
        .map(|(_, r)| r.latency_s)
        .expect("I-GCN present");

    println!(
        "{:<24} {:>14} {:>14} {:>16}",
        "platform", "latency (µs)", "vs I-GCN", "off-chip (MB)"
    );
    for (name, report) in &results {
        println!(
            "{:<24} {:>14.2} {:>13.1}x {:>16.2}",
            name,
            report.latency_us(),
            report.latency_s / igcn_latency,
            report.offchip_bytes as f64 / 1e6
        );
    }
    println!(
        "\nPaper (Figure 14B): I-GCN averages 5.7x over the GCN accelerators, 16x over\n\
         SIGMA, hundreds-to-thousands-x over the software stacks."
    );
}
