//! Network serving end to end: boot a backend, put it on a TCP socket
//! with `igcn::gateway`, and query it over both wire protocols.
//!
//! 1. Build and prepare an engine, then serve it on a loopback port
//!    (`Gateway::serve` with port 0 picks any free one).
//! 2. Query it over HTTP/1.1 (`POST /v1/infer` with a JSON body) and
//!    over the length-prefixed binary framing — both replies are
//!    bit-identical to a direct `Accelerator::infer` call.
//! 3. Send a request with a deadline, probe `GET /healthz`, and read
//!    the gateway counters from `GET /stats`.
//! 4. Shut down gracefully (in-flight requests drain first).
//!
//! Run: `cargo run --release --example gateway_client`

use std::sync::Arc;

use igcn::core::accel::{Accelerator, InferenceRequest};
use igcn::core::IGcnEngine;
use igcn::gateway::{BinaryClient, Gateway, GatewayConfig, HttpClient, InferReply};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::SparseFeatures;

const N: usize = 2_000;
const DIM: usize = 32;

fn main() {
    // 1. A prepared backend. Anything implementing `Accelerator` works
    //    here: this engine, a `Snapshot::warm_engine` boot, or a
    //    `ShardedEngine` fleet from a manifest.
    let g = HubIslandConfig::new(N, 16).noise_fraction(0.02).generate(42);
    let mut engine = IGcnEngine::builder(g.graph).build().expect("loop-free");
    let model = GnnModel::gcn(DIM, 16, 8);
    let weights = ModelWeights::glorot(&model, 1);
    engine.prepare(&model, &weights).expect("weights match the model");

    let features = SparseFeatures::random(N, DIM, 0.05, 7);
    let direct = engine.infer(&InferenceRequest::new(features.clone()).with_id(1)).unwrap();

    // 2. Serve it. `GatewayConfig::from_env` honours IGCN_IO_THREADS
    //    and IGCN_WORKER_THREADS; the defaults are fine here.
    let gateway = Gateway::serve(Arc::new(engine), "127.0.0.1:0", GatewayConfig::from_env())
        .expect("loopback bind");
    let addr = gateway.local_addr();
    println!("gateway listening on {addr}");

    // HTTP/1.1: human-debuggable, curl-able, still bit-exact.
    let mut http = HttpClient::connect(addr).expect("connect");
    match http.infer(1, None, &features).expect("round trip") {
        InferReply::Output { id, output } => {
            assert_eq!(id, 1);
            assert_eq!(output, direct.output, "HTTP reply is bit-identical");
            println!("HTTP  /v1/infer: {} rows, bit-identical to direct infer", output.rows());
        }
        other => panic!("unexpected reply: {other:?}"),
    }

    // Binary framing: raw IEEE-754 bits, FNV-checksummed frames.
    let mut binary = BinaryClient::connect(addr).expect("connect");
    match binary.infer(2, None, &features).expect("round trip") {
        InferReply::Output { id, output } => {
            assert_eq!(id, 2);
            assert_eq!(output, direct.output, "binary reply is bit-identical");
            println!("wire  Infer:     {} rows, bit-identical to direct infer", output.rows());
        }
        other => panic!("unexpected reply: {other:?}"),
    }

    // 3. A deadline-bounded request: 500 ms is plenty here, so it
    //    completes; an expired deadline would come back as
    //    `InferReply::DeadlineExceeded` without touching the backend.
    match binary.infer(3, Some(500), &features).expect("round trip") {
        InferReply::Output { .. } => println!("wire  Infer:     met its 500 ms deadline"),
        InferReply::DeadlineExceeded => println!("wire  Infer:     expired before dispatch"),
        other => panic!("unexpected reply: {other:?}"),
    }

    let (status, _body) = http.get("/healthz").expect("probe");
    assert_eq!(status, 200);
    let (status, stats) = http.get("/stats").expect("probe");
    assert_eq!(status, 200);
    println!("GET   /stats:    {stats}");

    // 4. Graceful shutdown: drains in-flight work, joins every thread.
    gateway.shutdown();
    println!("gateway drained and shut down");
}
