//! Quickstart: islandize a graph and run GCN inference on it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use igcn::core::accel::{Accelerator, InferenceRequest};
use igcn::core::{CoreError, IGcnEngine};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::SparseFeatures;

fn main() -> Result<(), CoreError> {
    // 1. A graph with hub-and-island structure (what real-world graphs
    //    look like: social circles, citation venues, ...).
    let generated = HubIslandConfig::new(1_000, 40)
        .island_size_range(4, 8)
        .island_density(0.8)
        .noise_fraction(0.02)
        .generate(42);
    let graph = generated.graph;
    println!(
        "graph: {} nodes, {} undirected edges",
        graph.num_nodes(),
        graph.num_undirected_edges()
    );

    // 2. Islandize at "runtime" and build the owned engine — it takes the
    //    graph by value (Arc inside) and is Send + Sync, ready to serve.
    let mut engine = IGcnEngine::builder(graph).build()?;
    let partition = engine.partition();
    println!(
        "islandization: {} islands, {} hubs ({:.1}% of nodes), {} inter-hub edges, {} rounds",
        partition.num_islands(),
        partition.num_hubs(),
        partition.hub_fraction() * 100.0,
        partition.inter_hub_edges().len(),
        engine.locator_stats().num_rounds()
    );

    // 3. Prepare a 2-layer GCN once, then serve requests through the
    //    unified Accelerator trait.
    let model = GnnModel::gcn(64, 16, 4);
    let weights = ModelWeights::glorot(&model, 1);
    engine.prepare(&model, &weights)?;

    let request =
        InferenceRequest::new(SparseFeatures::random(engine.graph().num_nodes(), 64, 0.05, 7));
    let response = engine.infer(&request)?;
    println!(
        "inference: {} output rows x {} classes",
        response.output.rows(),
        response.output.cols()
    );
    println!(
        "redundancy removal pruned {:.1}% of aggregation ops ({} scalar ops executed)",
        response.report.aggregation_pruning_rate * 100.0,
        response.report.total_ops
    );

    // 4. Verify against the plain software reference.
    let diff = engine.verify(&request.features, &model, &weights)?;
    println!("max |islandized - reference| = {diff:.2e} (lossless up to fp rounding)");
    assert!(diff < 1e-3);
    Ok(())
}
