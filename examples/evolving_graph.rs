//! Evolving-graph inference: why *runtime* islandization matters.
//!
//! §1 of the paper: offline preprocessing (Rubik, GraphACT, lightweight
//! reorderings) assumes the graph is fixed, but "real-world graphs are
//! frequently updated (e.g., evolving graphs) or generated dynamically".
//! This example simulates a growing social network: every step a batch of
//! new friendships arrives and inference must run on the *new* graph.
//!
//! Three structure-maintenance strategies are compared per step:
//!
//! 1. **I-GCN full re-islandization** — the paper's runtime restructuring,
//!    overlapped with inference on the accelerator (µs-scale);
//! 2. **incremental islandization** — this repository's extension: only
//!    islands touched by the new edges dissolve and re-form;
//! 3. **offline reordering** — a Rabbit pass on the host CPU, whose
//!    measured wall-clock alone dwarfs the whole accelerated inference.
//!
//! ```sh
//! cargo run --release --example evolving_graph
//! ```

use std::time::Instant;

use igcn::core::incremental::{apply_edges, incremental_islandize};
use igcn::core::{ConsumerConfig, IGcnEngine, IslandLocator, IslandizationConfig};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::{CsrGraph, NodeId, SparseFeatures};
use igcn::reorder::{Rabbit, Reorderer};
use igcn::sim::{HardwareConfig, IGcnAccelerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_new_edges(graph: &CsrGraph, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_nodes() as u32;
    let mut edges = Vec::new();
    while edges.len() < count {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !graph.has_edge(NodeId::new(a), NodeId::new(b)) {
            edges.push((a, b));
        }
    }
    edges
}

fn main() {
    let n = 4_000usize;
    let cfg = IslandizationConfig::default();
    let accelerator = IGcnAccelerator::new(HardwareConfig::paper_default());
    let model = GnnModel::gcn(32, 16, 4);
    let weights = ModelWeights::glorot(&model, 1);
    let rabbit = Rabbit::default();

    let mut graph = HubIslandConfig::new(n, n / 30).noise_fraction(0.01).generate(7).graph;
    let (mut partition, _) = IslandLocator::new(&graph, &cfg).run().unwrap();

    println!(
        "step | dissolved | reclassified | incr cycles | full cycles | igcn sim (µs) | rabbit host (µs)"
    );
    for step in 0..6u64 {
        // A batch of 20 new friendships lands.
        let added = random_new_edges(&graph, 20, 1_000 + step);
        let updated = apply_edges(&graph, graph.num_nodes(), &added);

        // Incremental maintenance: only the disturbed neighborhood redoes.
        let incr = incremental_islandize(&updated, &partition, &added, &cfg)
            .expect("incremental update succeeds");
        incr.partition.check_invariants(&updated).expect("still a valid partition");

        // Full re-islandization for comparison.
        let (full_partition, full_stats) = IslandLocator::new(&updated, &cfg).run().unwrap();

        // Inference on the fresh structure (engine re-runs the locator
        // internally; we reuse its verification path).
        let features = SparseFeatures::random(updated.num_nodes(), 32, 0.1, 77 + step);
        let engine = IGcnEngine::new(&updated, cfg, ConsumerConfig::default()).unwrap();
        let stats = engine.account(&features, &model);
        let report = accelerator.report_from_stats(&stats);
        let diff = engine.verify(&features, &model, &weights);
        assert!(diff < 1e-3, "step {step} diverged: {diff}");

        // The offline alternative re-runs reordering on the host.
        let t0 = Instant::now();
        let _ordering = rabbit.reorder(&updated);
        let rabbit_us = t0.elapsed().as_secs_f64() * 1e6;

        println!(
            "{step:>4} | {:>9} | {:>12} | {:>11} | {:>11} | {:>13.2} | {:>16.1}",
            incr.dissolved_islands,
            incr.reclassified_nodes,
            incr.stats.virtual_cycles,
            full_stats.virtual_cycles,
            report.latency_us(),
            rabbit_us
        );

        graph = updated;
        partition = incr.partition;
        let _ = full_partition;
    }
    println!(
        "\nIncremental maintenance re-touches only the disturbed islands (far fewer\n\
         virtual cycles than a full pass), and either way the runtime restructuring\n\
         lives inside the µs-scale inference budget — while the offline reordering\n\
         pass alone costs orders of magnitude more (§1, §4.5)."
    );
}
