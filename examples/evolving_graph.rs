//! Evolving-graph inference: why *runtime* islandization matters.
//!
//! §1 of the paper: offline preprocessing (Rubik, GraphACT, lightweight
//! reorderings) assumes the graph is fixed, but "real-world graphs are
//! frequently updated (e.g., evolving graphs) or generated dynamically".
//! This example simulates a churning social network: every step a batch
//! of new friendships arrives *and a few old ones dissolve*, and
//! inference must run on the new graph. Removals exercise the full
//! maintenance path: endpoint islands dissolve, and hubs starved below
//! the hub floor are demoted and re-classified.
//!
//! Three structure-maintenance strategies are compared per step:
//!
//! 1. **incremental islandization** — `IGcnEngine::apply_update`: only
//!    islands touched by the new edges dissolve and re-form, and the
//!    same engine keeps serving;
//! 2. **full re-islandization** — the paper's from-scratch runtime
//!    restructuring, overlapped with inference on the accelerator
//!    (µs-scale);
//! 3. **offline reordering** — a Rabbit pass on the host CPU, whose
//!    measured wall-clock alone dwarfs the whole accelerated inference.
//!
//! ```sh
//! cargo run --release --example evolving_graph
//! ```

use std::time::Instant;

use igcn::core::accel::{Accelerator, GraphUpdate, InferenceRequest};
use igcn::core::{IGcnEngine, IslandLocator, IslandizationConfig};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::{CsrGraph, NodeId, SparseFeatures};
use igcn::reorder::{Rabbit, Reorderer};
use igcn::sim::{HardwareConfig, IGcnAccelerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_new_edges(graph: &CsrGraph, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_nodes() as u32;
    let mut edges = Vec::new();
    while edges.len() < count {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !graph.has_edge(NodeId::new(a), NodeId::new(b)) {
            edges.push((a, b));
        }
    }
    edges
}

/// Samples `count` distinct existing undirected edges to dissolve.
fn random_existing_edges(graph: &CsrGraph, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let undirected: Vec<(u32, u32)> =
        graph.iter_edges().map(|(u, v)| (u.value(), v.value())).filter(|&(u, v)| u < v).collect();
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < count.min(undirected.len()) {
        picked.insert(undirected[rng.gen_range(0..undirected.len())]);
    }
    picked.into_iter().collect()
}

fn main() {
    let n = 4_000usize;
    let cfg = IslandizationConfig::default();
    let accelerator = IGcnAccelerator::new(HardwareConfig::paper_default());
    let model = GnnModel::gcn(32, 16, 4);
    let weights = ModelWeights::glorot(&model, 1);
    let rabbit = Rabbit::default();

    let graph = HubIslandConfig::new(n, n / 30).noise_fraction(0.01).generate(7).graph;
    let mut engine = IGcnEngine::builder(graph).island_config(cfg).build().unwrap();
    engine.prepare(&model, &weights).unwrap();

    println!(
        "step | dissolved | demoted | reclassified | incr cycles | full cycles | igcn sim (µs) | rabbit host (µs)"
    );
    for step in 0..6u64 {
        // A batch of 20 new friendships lands and 5 old ones dissolve;
        // the serving engine absorbs the churn in place.
        let added = random_new_edges(engine.graph(), 20, 1_000 + step);
        let removed = random_existing_edges(engine.graph(), 5, 2_000 + step);
        let update = engine
            .apply_update(GraphUpdate::add_edges(added).and_remove_edges(removed))
            .expect("incremental update succeeds");
        engine.partition().check_invariants(engine.graph()).expect("still a valid partition");

        // Full re-islandization for comparison.
        let (_, full_stats) = IslandLocator::new(engine.graph(), &cfg).run().unwrap();

        // Inference on the fresh structure through the serving API.
        let features = SparseFeatures::random(engine.graph().num_nodes(), 32, 0.1, 77 + step);
        let request = InferenceRequest::new(features);
        let stats = engine.account(&request.features, &model).unwrap();
        let report = accelerator.report_from_stats(&stats);
        let diff = engine.verify(&request.features, &model, &weights).unwrap();
        assert!(diff < 1e-3, "step {step} diverged: {diff}");

        // The offline alternative re-runs reordering on the host.
        let t0 = Instant::now();
        let _ordering = rabbit.reorder(engine.graph());
        let rabbit_us = t0.elapsed().as_secs_f64() * 1e6;

        println!(
            "{step:>4} | {:>9} | {:>7} | {:>12} | {:>11} | {:>11} | {:>13.2} | {:>16.1}",
            update.dissolved_islands,
            update.demoted_hubs,
            update.reclassified_nodes,
            update.locator_stats.virtual_cycles,
            full_stats.virtual_cycles,
            report.latency_us(),
            rabbit_us
        );
    }
    println!(
        "\nIncremental maintenance re-touches only the disturbed islands (far fewer\n\
         virtual cycles than a full pass), and either way the runtime restructuring\n\
         lives inside the µs-scale inference budget — while the offline reordering\n\
         pass alone costs orders of magnitude more (§1, §4.5)."
    );
}
