//! Citation-network inference: the paper's Cora workload end to end.
//!
//! Generates the Cora stand-in at full published scale, islandizes it,
//! runs GCN-algo inference, prints the adjacency spy plot before/after
//! islandization, and simulates the accelerator latency/energy.
//!
//! ```sh
//! cargo run --release --example citation_inference
//! ```

use igcn::core::IGcnEngine;
use igcn::gnn::{GnnKind, GnnModel, ModelConfig, ModelWeights};
use igcn::graph::datasets::Dataset;
use igcn::graph::stats::DensityGrid;
use igcn::graph::NodeId;
use igcn::sim::{HardwareConfig, IGcnAccelerator};

fn main() {
    let dataset = Dataset::Cora;
    let data = dataset.generate(42);
    println!(
        "{dataset}: {} papers, {} citations, {}-dim bag-of-words features ({} nnz)",
        data.graph.num_nodes(),
        data.graph.num_undirected_edges(),
        data.features.num_cols(),
        data.features.nnz()
    );

    let engine =
        IGcnEngine::builder(data.graph.clone()).build().expect("citation stand-ins are loop-free");

    println!("\nadjacency before islandization:");
    println!("{}", DensityGrid::compute(&data.graph, None, 32).to_ascii());
    println!("after islandization (hub L-shapes + island diagonal):");
    let ordering = engine.partition().ordering_antidiagonal();
    println!("{}", DensityGrid::compute(&data.graph, Some(&ordering), 32).to_ascii());

    let model = GnnModel::for_dataset(dataset, GnnKind::Gcn, ModelConfig::Algo);
    let weights = ModelWeights::glorot(&model, 3);
    let (output, stats) =
        engine.run(&data.features, &model, &weights).expect("dataset shapes match");

    // Classify a few papers.
    for node in [0u32, 1, 2] {
        println!(
            "paper {node}: predicted class {}",
            IGcnEngine::predict_class(&output, NodeId::new(node))
        );
    }
    println!(
        "\npruned {:.1}% of aggregation ops; locator ran {} rounds in {} virtual cycles",
        stats.aggregation_pruning_rate() * 100.0,
        stats.locator.num_rounds(),
        stats.locator.virtual_cycles
    );

    // Accelerator-level projection.
    let report = IGcnAccelerator::new(HardwareConfig::paper_default()).report_from_stats(&stats);
    println!(
        "projected accelerator latency: {:.2} µs at 330 MHz / 4096 MACs (paper: 1.3 µs); \
         energy efficiency {:.2e} graphs/kJ (paper: 7.1e6)",
        report.latency_us(),
        report.graphs_per_kilojoule
    );

    let diff = engine.verify(&data.features, &model, &weights).expect("dataset shapes match");
    println!("verification vs software reference: max diff {diff:.2e}");
}
