//! Persistence & warm start: the full durability loop of a serving
//! node.
//!
//! 1. Cold-build an engine (pays the islandization cost once) and
//!    serve it behind a `ServingEngine` that checkpoints to an
//!    `EngineStore` on shutdown.
//! 2. "Restart": boot a new engine from the snapshot — no locator
//!    pass — and verify it answers bit-identically.
//! 3. Evolve the graph through the WAL-first update path, "crash", and
//!    boot again: the replayed engine matches the live one exactly.
//!
//! Run: `cargo run --release --example warm_start`

use std::sync::Arc;
use std::time::Instant;

use igcn::core::accel::{Accelerator, InferenceRequest};
use igcn::core::{ExecConfig, GraphUpdate, IGcnEngine};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::SparseFeatures;
use igcn::serve::{CheckpointPolicy, ServingConfig, ServingEngine};
use igcn::store::EngineStore;

const N: usize = 4_000;
const DIM: usize = 32;

fn main() {
    let store = EngineStore::at(std::env::temp_dir().join("igcn-warm-start-example.snap"));

    // --- 1. Cold build + serve + checkpoint on shutdown. -------------
    let g = HubIslandConfig::new(N, N / 25).noise_fraction(0.02).generate(7);
    let model = GnnModel::gcn(DIM, 16, 8);
    let weights = ModelWeights::glorot(&model, 1);

    let t0 = Instant::now();
    let mut engine = IGcnEngine::builder(g.graph).build().expect("loop-free graph");
    engine.prepare(&model, &weights).expect("weights match");
    let cold_s = t0.elapsed().as_secs_f64();
    println!("cold build (islandize + layout + prepare): {:.1} ms", cold_s * 1e3);

    let backend = Arc::new(engine);
    let serving = ServingEngine::start_with_checkpoint(
        Arc::<IGcnEngine>::clone(&backend) as Arc<dyn Accelerator>,
        ServingConfig::default(),
        CheckpointPolicy::default().with_every_batches(64).with_on_shutdown(true),
        {
            let store = store.clone();
            let engine = Arc::clone(&backend);
            Arc::new(move || {
                store.checkpoint(&engine).expect("checkpoint writes");
            })
        },
    );
    let request = InferenceRequest::new(SparseFeatures::random(N, DIM, 0.05, 9)).with_id(1);
    let first = serving.submit(request.clone()).expect("accepting").wait().expect("served");
    serving.shutdown(); // graceful: drains, joins, checkpoints
    println!(
        "served request {} and checkpointed {} bytes to {}",
        first.id,
        std::fs::metadata(store.snapshot_path()).map(|m| m.len()).unwrap_or(0),
        store.snapshot_path().display()
    );

    // --- 2. Restart: warm boot skips islandization. -------------------
    let t1 = Instant::now();
    let boot = store.boot(ExecConfig::default()).expect("warm boot");
    let warm_s = t1.elapsed().as_secs_f64();
    println!(
        "warm boot (read + verify + validate): {:.1} ms — {:.1}x faster than cold",
        warm_s * 1e3,
        cold_s / warm_s.max(1e-9)
    );
    let warm_resp = boot.engine.infer(&request).expect("prepared from snapshot");
    assert_eq!(warm_resp.output, first.output, "warm engine must answer bit-identically");
    println!("warm engine output is bit-identical to the pre-restart engine");

    // --- 3. Evolve through the WAL, crash, boot again. ----------------
    let mut live = boot.engine;
    let hub = live.partition().hubs()[0];
    let n = live.graph().num_nodes() as u32;
    let report = store
        .apply_update(
            &mut live,
            GraphUpdate::add_edges(vec![(n, hub)]).with_num_nodes(n as usize + 1),
        )
        .expect("valid update");
    println!(
        "WAL-first update: +1 node onto hub {hub} ({} islands dissolved, log now {} bytes)",
        report.dissolved_islands,
        std::fs::metadata(store.wal_path()).map(|m| m.len()).unwrap_or(0)
    );

    // No checkpoint taken — a "crash" here loses nothing: boot replays
    // the log over the old snapshot.
    let rebooted = store.boot(ExecConfig::default()).expect("boot with WAL replay");
    assert_eq!(rebooted.replayed_updates, 1);
    let x = SparseFeatures::random(live.graph().num_nodes(), DIM, 0.05, 11);
    let a = live.run(&x, &model, &weights).expect("live serves");
    let b = rebooted.engine.run(&x, &model, &weights).expect("rebooted serves");
    assert_eq!(a.0, b.0, "snapshot + WAL replay reconstructs the live engine exactly");
    println!(
        "rebooted engine replayed {} update(s) and matches the live engine bit for bit",
        rebooted.replayed_updates
    );

    std::fs::remove_file(store.snapshot_path()).ok();
    std::fs::remove_file(store.wal_path()).ok();
}
