//! Deterministic sweep tests of the reordering baselines: every
//! algorithm produces a valid permutation, and GCN inference commutes
//! with node relabelling (reordering changes layout, never results).

use igcn::gnn::{reference_forward, GnnModel, ModelWeights};
use igcn::graph::generate::{barabasi_albert, HubIslandConfig};
use igcn::graph::{CsrGraph, NodeId, SparseFeatures};
use igcn::reorder::{figure12_baselines, Identity, RandomOrder, Rcm, Reorderer, SlashBurn};

fn all_reorderers() -> Vec<Box<dyn Reorderer>> {
    let mut v = figure12_baselines();
    v.push(Box::new(SlashBurn::default()));
    v.push(Box::new(Rcm));
    v.push(Box::new(Identity));
    v.push(Box::new(RandomOrder::default()));
    v
}

fn graph_zoo() -> Vec<CsrGraph> {
    let mut graphs = Vec::new();
    for seed in [3u64, 88, 412] {
        graphs.push(barabasi_albert(70, 2, seed));
        graphs.push(barabasi_albert(130, 3, seed + 1));
        graphs.push(HubIslandConfig::new(110, 6).generate(seed + 2).graph);
        graphs.push(HubIslandConfig::new(180, 9).generate(seed + 3).graph);
    }
    graphs
}

#[test]
fn every_reorderer_emits_a_valid_permutation() {
    for graph in graph_zoo() {
        for r in all_reorderers() {
            let p = r.reorder(&graph);
            assert_eq!(p.len(), graph.num_nodes(), "{} wrong length", r.name());
            // Permutation validity is enforced by construction; composing
            // with the inverse must give the identity.
            assert!(p.then(&p.inverse()).is_identity(), "{} not bijective", r.name());
        }
    }
}

#[test]
fn reordering_preserves_graph_shape() {
    for graph in graph_zoo() {
        for r in all_reorderers() {
            let p = r.reorder(&graph);
            let permuted = graph.permute(&p).expect("valid permutation");
            assert_eq!(permuted.num_nodes(), graph.num_nodes());
            assert_eq!(permuted.num_directed_edges(), graph.num_directed_edges());
            assert!(permuted.is_symmetric());
        }
    }
}

#[test]
fn inference_commutes_with_relabelling() {
    // Permute graph + features, run the reference, un-permute: must equal
    // the reference on the original layout.
    let g = HubIslandConfig::new(120, 6).generate(9).graph;
    let x = SparseFeatures::random(120, 8, 0.4, 2);
    let model = GnnModel::gcn(8, 5, 3);
    let w = ModelWeights::glorot(&model, 4);
    let base = reference_forward(&g, &x, &model, &w);

    for r in all_reorderers() {
        let p = r.reorder(&g);
        let pg = g.permute(&p).unwrap();
        let rows: Vec<Vec<(u32, f32)>> = {
            let inv = p.inverse();
            (0..120u32)
                .map(|new| {
                    let old = inv.map(NodeId::new(new));
                    let (cols, vals) = x.row(old);
                    cols.iter().zip(vals).map(|(&c, &v)| (c, v)).collect()
                })
                .collect()
        };
        let px = SparseFeatures::from_rows(120, 8, rows);
        let out = reference_forward(&pg, &px, &model, &w);
        for old in 0..120usize {
            let new = p.map(NodeId::new(old as u32)).index();
            for c in 0..3 {
                let a = base.get(old, c);
                let b = out.get(new, c);
                assert!((a - b).abs() < 1e-4, "{}: node {old} col {c}: {a} vs {b}", r.name());
            }
        }
    }
}
