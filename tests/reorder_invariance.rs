//! Property-based tests of the reordering baselines: every algorithm
//! produces a valid permutation, and GCN inference commutes with node
//! relabelling (reordering changes layout, never results).

use proptest::prelude::*;

use igcn::gnn::{reference_forward, GnnModel, ModelWeights};
use igcn::graph::generate::{barabasi_albert, HubIslandConfig};
use igcn::graph::{CsrGraph, NodeId, SparseFeatures};
use igcn::reorder::{
    figure12_baselines, Identity, RandomOrder, Rcm, Reorderer, SlashBurn,
};

fn all_reorderers() -> Vec<Box<dyn Reorderer>> {
    let mut v = figure12_baselines();
    v.push(Box::new(SlashBurn::default()));
    v.push(Box::new(Rcm));
    v.push(Box::new(Identity));
    v.push(Box::new(RandomOrder::default()));
    v
}

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (10usize..150, 1usize..4, 0u64..500)
            .prop_map(|(n, m, seed)| barabasi_albert(n, m, seed)),
        (30usize..200, 2usize..10, 0u64..500).prop_map(|(n, h, seed)| {
            HubIslandConfig::new(n, h.min(n - 1)).generate(seed).graph
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_reorderer_emits_a_valid_permutation(graph in arb_graph()) {
        for r in all_reorderers() {
            let p = r.reorder(&graph);
            prop_assert_eq!(p.len(), graph.num_nodes(), "{} wrong length", r.name());
            // Permutation validity is enforced by construction; composing
            // with the inverse must give the identity.
            prop_assert!(p.then(&p.inverse()).is_identity(), "{} not bijective", r.name());
        }
    }

    #[test]
    fn reordering_preserves_graph_shape(graph in arb_graph()) {
        for r in all_reorderers() {
            let p = r.reorder(&graph);
            let permuted = graph.permute(&p).expect("valid permutation");
            prop_assert_eq!(permuted.num_nodes(), graph.num_nodes());
            prop_assert_eq!(permuted.num_directed_edges(), graph.num_directed_edges());
            prop_assert!(permuted.is_symmetric());
        }
    }
}

#[test]
fn inference_commutes_with_relabelling() {
    // Permute graph + features, run the reference, un-permute: must equal
    // the reference on the original layout.
    let g = HubIslandConfig::new(120, 6).generate(9).graph;
    let x = SparseFeatures::random(120, 8, 0.4, 2);
    let model = GnnModel::gcn(8, 5, 3);
    let w = ModelWeights::glorot(&model, 4);
    let base = reference_forward(&g, &x, &model, &w);

    for r in all_reorderers() {
        let p = r.reorder(&g);
        let pg = g.permute(&p).unwrap();
        let rows: Vec<Vec<(u32, f32)>> = {
            let inv = p.inverse();
            (0..120u32)
                .map(|new| {
                    let old = inv.map(NodeId::new(new));
                    let (cols, vals) = x.row(old);
                    cols.iter().zip(vals).map(|(&c, &v)| (c, v)).collect()
                })
                .collect()
        };
        let px = SparseFeatures::from_rows(120, 8, rows);
        let out = reference_forward(&pg, &px, &model, &w);
        for old in 0..120usize {
            let new = p.map(NodeId::new(old as u32)).index();
            for c in 0..3 {
                let a = base.get(old, c);
                let b = out.get(new, c);
                assert!(
                    (a - b).abs() < 1e-4,
                    "{}: node {old} col {c}: {a} vs {b}",
                    r.name()
                );
            }
        }
    }
}
