//! Integration: incremental islandization on evolving graphs keeps
//! inference exact and invariants intact across long update sequences.

use igcn::core::incremental::{apply_edges, incremental_islandize};
use igcn::core::{ConsumerConfig, IslandLocator, IslandizationConfig};
use igcn::core::consumer::{IslandConsumer, LayerInput};
use igcn::gnn::{reference_forward, Activation, GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::{CsrGraph, NodeId, SparseFeatures};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_new_edges(graph: &CsrGraph, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_nodes() as u32;
    let mut edges = Vec::new();
    let mut guard = 0;
    while edges.len() < count && guard < count * 100 {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !graph.has_edge(NodeId::new(a), NodeId::new(b)) {
            edges.push((a, b));
        }
    }
    edges
}

/// Runs one islandized GCN layer on `graph` with `partition` and checks it
/// against the software reference.
fn verify_layer(graph: &CsrGraph, partition: &igcn::core::IslandPartition, seed: u64) {
    let n = graph.num_nodes();
    let x = SparseFeatures::random(n, 8, 0.4, seed);
    let model = GnnModel::gcn(8, 4, 4);
    let w = ModelWeights::glorot(&model, seed);
    let norm = model.normalization(graph);
    let consumer = IslandConsumer::new(graph, partition, ConsumerConfig::default());
    let (out, _) =
        consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
    let reference = reference_forward(graph, &x, &model, &w);
    // reference_forward runs two layers; compare against its layer stack
    // instead.
    let layers = igcn::gnn::reference_forward_layers(graph, &x, &model, &w);
    assert!(
        out.max_abs_diff(&layers[0]) < 1e-3,
        "incrementally maintained partition produced wrong results"
    );
    let _ = reference;
}

#[test]
fn long_update_sequence_stays_exact() {
    let cfg = IslandizationConfig::default();
    let mut graph = HubIslandConfig::new(600, 24).noise_fraction(0.01).generate(3).graph;
    let (mut partition, _) = IslandLocator::new(&graph, &cfg).run().unwrap();
    for step in 0..8u64 {
        let added = random_new_edges(&graph, 8, 500 + step);
        let updated = apply_edges(&graph, graph.num_nodes(), &added);
        let result = incremental_islandize(&updated, &partition, &added, &cfg).unwrap();
        result.partition.check_invariants(&updated).unwrap();
        verify_layer(&updated, &result.partition, 900 + step);
        graph = updated;
        partition = result.partition;
    }
}

#[test]
fn incremental_touches_less_than_full_rerun() {
    let cfg = IslandizationConfig::default();
    let graph = HubIslandConfig::new(2_000, 80).noise_fraction(0.005).generate(5).graph;
    let (partition, full_stats) = IslandLocator::new(&graph, &cfg).run().unwrap();
    let added = random_new_edges(&graph, 6, 77);
    let updated = apply_edges(&graph, graph.num_nodes(), &added);
    let result = incremental_islandize(&updated, &partition, &added, &cfg).unwrap();
    assert!(
        result.stats.adjacency_words_read < full_stats.adjacency_words_read,
        "incremental pass must stream less adjacency than the original full pass \
         ({} vs {})",
        result.stats.adjacency_words_read,
        full_stats.adjacency_words_read
    );
    assert!(result.reclassified_nodes < graph.num_nodes() / 4);
}

#[test]
fn growing_network_with_new_nodes() {
    let cfg = IslandizationConfig::default();
    let mut graph = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(9).graph;
    let (mut partition, _) = IslandLocator::new(&graph, &cfg).run().unwrap();
    for step in 0..4u64 {
        // Three new nodes arrive, wired to an existing hub and each other.
        let n = graph.num_nodes() as u32;
        let hub = partition.hubs()[step as usize % partition.num_hubs()];
        let added = vec![(n, hub), (n + 1, n), (n + 2, n), (n + 1, n + 2)];
        let updated = apply_edges(&graph, n as usize + 3, &added);
        let result = incremental_islandize(&updated, &partition, &added, &cfg).unwrap();
        result.partition.check_invariants(&updated).unwrap();
        assert_eq!(result.partition.num_nodes(), n as usize + 3);
        graph = updated;
        partition = result.partition;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_equals_invariants_of_full_rerun(
        n in 50usize..300,
        hubs in 2usize..12,
        batch in 1usize..12,
        seed in 0u64..500,
    ) {
        let cfg = IslandizationConfig::default();
        let graph = HubIslandConfig::new(n, hubs.min(n - 1))
            .noise_fraction(0.02)
            .generate(seed)
            .graph;
        let (partition, _) = IslandLocator::new(&graph, &cfg).run().unwrap();
        let added = random_new_edges(&graph, batch, seed ^ 0xABCD);
        let updated = apply_edges(&graph, graph.num_nodes(), &added);
        let incr = incremental_islandize(&updated, &partition, &added, &cfg).unwrap();
        incr.partition.check_invariants(&updated).unwrap();
        // A full re-run also satisfies the invariants; both are valid
        // partitions of the same graph (they may differ in detail).
        let (full, _) = IslandLocator::new(&updated, &cfg).run().unwrap();
        full.check_invariants(&updated).unwrap();
        prop_assert_eq!(
            incr.partition.num_hubs() + incr.partition.num_island_nodes(),
            updated.num_nodes()
        );
    }
}
