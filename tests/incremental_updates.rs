//! Integration: incremental islandization on evolving graphs keeps
//! inference exact and invariants intact across long update sequences,
//! both through the free functions and through the serving engine's
//! `apply_update`.

use igcn::core::accel::{Accelerator, GraphUpdate, InferenceRequest};
use igcn::core::incremental::{apply_edges, incremental_islandize};
use igcn::core::{IGcnEngine, IslandLocator, IslandizationConfig};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::{CsrGraph, NodeId, SparseFeatures};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_new_edges(graph: &CsrGraph, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_nodes() as u32;
    let mut edges = Vec::new();
    let mut guard = 0;
    while edges.len() < count && guard < count * 100 {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !graph.has_edge(NodeId::new(a), NodeId::new(b)) {
            edges.push((a, b));
        }
    }
    edges
}

#[test]
fn long_update_sequence_stays_exact() {
    let mut engine =
        IGcnEngine::builder(HubIslandConfig::new(600, 24).noise_fraction(0.01).generate(3).graph)
            .build()
            .unwrap();
    let model = GnnModel::gcn(8, 4, 4);
    let weights = ModelWeights::glorot(&model, 1);
    engine.prepare(&model, &weights).unwrap();
    for step in 0..8u64 {
        let added = random_new_edges(engine.graph(), 8, 500 + step);
        engine.apply_update(GraphUpdate::add_edges(added)).unwrap();
        engine.partition().check_invariants(engine.graph()).unwrap();
        // The incrementally maintained structure must still be lossless.
        let x = SparseFeatures::random(engine.graph().num_nodes(), 8, 0.4, 900 + step);
        let diff = engine.verify(&x, &model, &weights).unwrap();
        assert!(diff < 1e-3, "step {step}: diverged by {diff}");
        // And the serving path keeps answering on the updated graph.
        let response = engine.infer(&InferenceRequest::new(x).with_id(step)).unwrap();
        assert_eq!(response.output.rows(), engine.graph().num_nodes());
    }
}

#[test]
fn incremental_touches_less_than_full_rerun() {
    let cfg = IslandizationConfig::default();
    let graph = HubIslandConfig::new(2_000, 80).noise_fraction(0.005).generate(5).graph;
    let (partition, full_stats) = IslandLocator::new(&graph, &cfg).run().unwrap();
    let added = random_new_edges(&graph, 6, 77);
    let updated = apply_edges(&graph, graph.num_nodes(), &added).unwrap();
    let result = incremental_islandize(&updated, &partition, &added, &cfg).unwrap();
    assert!(
        result.stats.adjacency_words_read < full_stats.adjacency_words_read,
        "incremental pass must stream less adjacency than the original full pass \
         ({} vs {})",
        result.stats.adjacency_words_read,
        full_stats.adjacency_words_read
    );
    assert!(result.reclassified_nodes < graph.num_nodes() / 4);
}

#[test]
fn engine_update_touches_less_than_full_rerun() {
    let cfg = IslandizationConfig::default();
    let mut engine = IGcnEngine::builder(
        HubIslandConfig::new(2_000, 80).noise_fraction(0.005).generate(6).graph,
    )
    .island_config(cfg)
    .build()
    .unwrap();
    let full_words = engine.locator_stats().adjacency_words_read;
    let added = random_new_edges(engine.graph(), 6, 78);
    let report = engine.apply_update(GraphUpdate::add_edges(added)).unwrap();
    assert!(
        report.locator_stats.adjacency_words_read < full_words,
        "apply_update must stream less adjacency than the build-time pass ({} vs {})",
        report.locator_stats.adjacency_words_read,
        full_words
    );
    assert!(report.reclassified_nodes < engine.graph().num_nodes() / 4);
}

#[test]
fn growing_network_with_new_nodes() {
    let mut engine =
        IGcnEngine::builder(HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(9).graph)
            .build()
            .unwrap();
    for step in 0..4u64 {
        // Three new nodes arrive, wired to an existing hub and each other.
        let n = engine.graph().num_nodes() as u32;
        let hub = engine.partition().hubs()[step as usize % engine.partition().num_hubs()];
        let update = GraphUpdate::add_edges(vec![(n, hub), (n + 1, n), (n + 2, n), (n + 1, n + 2)])
            .with_num_nodes(n as usize + 3);
        let report = engine.apply_update(update).unwrap();
        engine.partition().check_invariants(engine.graph()).unwrap();
        assert_eq!(report.num_nodes, n as usize + 3);
        assert_eq!(engine.partition().num_nodes(), n as usize + 3);
    }
}

#[test]
fn incremental_equals_invariants_of_full_rerun() {
    // Deterministic sweep standing in for the original property test:
    // varied sizes, hub counts, batch sizes and seeds.
    let cases = [
        (50usize, 2usize, 1usize, 13u64),
        (80, 4, 3, 101),
        (120, 6, 5, 227),
        (160, 8, 7, 331),
        (200, 10, 9, 401),
        (240, 11, 11, 17),
        (300, 12, 2, 499),
        (90, 3, 12, 77),
    ];
    for (n, hubs, batch, seed) in cases {
        let cfg = IslandizationConfig::default();
        let graph =
            HubIslandConfig::new(n, hubs.min(n - 1)).noise_fraction(0.02).generate(seed).graph;
        let (partition, _) = IslandLocator::new(&graph, &cfg).run().unwrap();
        let added = random_new_edges(&graph, batch, seed ^ 0xABCD);
        let updated = apply_edges(&graph, graph.num_nodes(), &added).unwrap();
        let incr = incremental_islandize(&updated, &partition, &added, &cfg).unwrap();
        incr.partition.check_invariants(&updated).unwrap();
        // A full re-run also satisfies the invariants; both are valid
        // partitions of the same graph (they may differ in detail).
        let (full, _) = IslandLocator::new(&updated, &cfg).run().unwrap();
        full.check_invariants(&updated).unwrap();
        assert_eq!(
            incr.partition.num_hubs() + incr.partition.num_island_nodes(),
            updated.num_nodes(),
            "case (n={n}, hubs={hubs}, batch={batch}, seed={seed})"
        );
    }
}
