//! Deterministic sweep tests of the islandization invariants.
//!
//! For a spread of graphs (random, power-law, planted-structure) and
//! locator configurations, the partition must classify every node
//! exactly once, respect `c_max`, keep islands closed, and cover every
//! edge exactly once — and the whole pipeline must stay lossless.

use igcn::core::{
    islandize, ConsumerConfig, CoreError, IGcnEngine, IslandLocator, IslandizationConfig,
    ThresholdInit,
};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::{barabasi_albert, erdos_renyi, HubIslandConfig};
use igcn::graph::CsrGraph;
use igcn::graph::SparseFeatures;

/// A diverse, deterministic graph zoo: Erdős–Rényi soups (no community
/// structure, possibly disconnected), preferential-attachment power
/// laws, and planted hub-island structure at several noise levels.
fn graph_zoo() -> Vec<CsrGraph> {
    let mut graphs = Vec::new();
    for seed in [1u64, 42, 777] {
        graphs.push(erdos_renyi(60, 120, seed));
        graphs.push(erdos_renyi(13, 20, seed + 1));
        graphs.push(barabasi_albert(90, 3, seed + 2));
        for noise in [0.0, 0.1, 0.25] {
            graphs
                .push(HubIslandConfig::new(150, 8).noise_fraction(noise).generate(seed + 3).graph);
        }
    }
    // Degenerate corners: a single node, and an edgeless scatter.
    graphs.push(erdos_renyi(1, 0, 9));
    graphs.push(erdos_renyi(40, 0, 10));
    graphs
}

fn config_zoo() -> Vec<IslandizationConfig> {
    vec![
        IslandizationConfig::default(),
        IslandizationConfig::default().with_c_max(4).with_engines(2),
        IslandizationConfig::default()
            .with_c_max(16)
            .with_engines(8)
            .with_lanes(2)
            .with_threshold_init(ThresholdInit::Absolute(3)),
        IslandizationConfig::default()
            .with_c_max(33)
            .with_engines(1)
            .with_threshold_init(ThresholdInit::Absolute(50)),
    ]
}

#[test]
fn partition_invariants_hold() {
    for graph in graph_zoo() {
        for cfg in config_zoo() {
            let (partition, _) = IslandLocator::new(&graph, &cfg).run().expect("converges");
            partition.check_invariants(&graph).expect("invariants");
            assert_eq!(partition.num_hubs() + partition.num_island_nodes(), graph.num_nodes());
            assert!((partition.outlier_fraction(&graph) - 0.0).abs() < 1e-12);
        }
    }
}

#[test]
fn islandization_is_deterministic() {
    for graph in graph_zoo() {
        let cfg = IslandizationConfig::default();
        let a = islandize(&graph, &cfg);
        let b = islandize(&graph, &cfg);
        assert_eq!(a, b);
    }
}

#[test]
fn execution_lossless_on_arbitrary_graphs() {
    for (i, graph) in graph_zoo().into_iter().enumerate() {
        let k = 2 + (i % 6); // sweep the pre-aggregation window 2..=7
        if graph.num_directed_edges() == 0 {
            // The zoo's degenerate corners: the engine refuses edgeless
            // graphs with a typed error instead of executing vacuously.
            assert!(matches!(
                IGcnEngine::builder(graph).build(),
                Err(CoreError::EmptyGraph { .. })
            ));
            continue;
        }
        let engine = IGcnEngine::builder(graph)
            .consumer_config(ConsumerConfig::default().with_k(k))
            .build()
            .expect("generated graphs are loop-free");
        let n = engine.graph_arc().num_nodes();
        let x = SparseFeatures::random(n, 6, 0.5, i as u64);
        let model = GnnModel::gcn(6, 4, 3);
        let w = ModelWeights::glorot(&model, i as u64);
        let diff = engine.verify(&x, &model, &w).unwrap();
        assert!(diff < 1e-3, "diverged by {diff} with k={k}");
    }
}

#[test]
fn account_equals_run_for_any_config() {
    for (i, graph) in graph_zoo().into_iter().enumerate() {
        let k = 2 + (i % 4);
        let pes = 1 + (i % 7);
        if graph.num_directed_edges() == 0 {
            continue; // engine construction rejects edgeless graphs
        }
        let engine = IGcnEngine::builder(graph)
            .consumer_config(ConsumerConfig::default().with_k(k).with_pes(pes))
            .build()
            .expect("loop-free");
        let n = engine.graph_arc().num_nodes();
        let x = SparseFeatures::random(n, 5, 0.4, 77);
        let model = GnnModel::gcn(5, 3, 2);
        let w = ModelWeights::glorot(&model, 5);
        let (_, run_stats) = engine.run(&x, &model, &w).unwrap();
        let account_stats = engine.account(&x, &model).unwrap();
        assert_eq!(run_stats, account_stats);
    }
}

#[test]
fn window_ops_never_exceed_unpruned_and_ablation_is_neutral() {
    for graph in graph_zoo() {
        if graph.num_directed_edges() == 0 {
            continue; // engine construction rejects edgeless graphs
        }
        let engine = IGcnEngine::builder(graph.clone()).build().expect("loop-free");
        let n = graph.num_nodes();
        let x = SparseFeatures::random(n, 4, 0.5, 3);
        let model = GnnModel::gcn(4, 3, 2);
        let stats = engine.account(&x, &model).unwrap();
        for layer in &stats.layers {
            // Window decisions alone never beat the unpruned count; only
            // eager pre-aggregation amortisation can push the *total* over
            // on structureless graphs (the documented negative-pruning
            // corner the paper's dense islands avoid).
            assert!(
                layer.aggregation.executed_vector_adds + layer.aggregation.executed_vector_subs
                    <= layer.aggregation.unpruned_vector_ops
            );
        }
        // With redundancy removal off, execution is exactly the unpruned
        // schedule.
        let ablation = IGcnEngine::builder(graph)
            .consumer_config(ConsumerConfig::default().with_redundancy_removal(false))
            .build()
            .expect("loop-free");
        let ab_stats = ablation.account(&x, &model).unwrap();
        for layer in &ab_stats.layers {
            assert_eq!(
                layer.aggregation.executed_vector_ops(),
                layer.aggregation.unpruned_vector_ops
            );
        }
    }
}
