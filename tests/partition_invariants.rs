//! Property-based tests of the islandization invariants.
//!
//! For arbitrary graphs (random, power-law, planted-structure) and
//! arbitrary locator configurations, the partition must classify every
//! node exactly once, respect `c_max`, keep islands closed, and cover
//! every edge exactly once — and the whole pipeline must stay lossless.

use proptest::prelude::*;

use igcn::core::{
    islandize, ConsumerConfig, IGcnEngine, IslandLocator, IslandizationConfig, ThresholdInit,
};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::{barabasi_albert, erdos_renyi, HubIslandConfig};
use igcn::graph::{CsrGraph, SparseFeatures};

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        // Erdős–Rényi: no community structure (adversarial input).
        (10usize..200, 1usize..6, 0u64..1000).prop_map(|(n, d, seed)| {
            erdos_renyi(n, n * d / 2, seed)
        }),
        // Preferential attachment: power-law, no planted islands.
        (10usize..150, 1usize..4, 0u64..1000).prop_map(|(n, m, seed)| {
            barabasi_albert(n, m, seed)
        }),
        // Planted hub-island structure with varying noise.
        (30usize..250, 2usize..12, 0u64..1000, 0u32..30).prop_map(|(n, h, seed, noise)| {
            HubIslandConfig::new(n, h.min(n - 1))
                .noise_fraction(noise as f64 / 100.0)
                .generate(seed)
                .graph
        }),
        // Sparse random edge soups (possibly disconnected, isolated nodes).
        (1usize..60, 0usize..80, 0u64..1000).prop_map(|(n, m, seed)| {
            erdos_renyi(n, m, seed)
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = IslandizationConfig> {
    (2usize..40, 1usize..16, 1usize..8, 1u32..64).prop_map(|(c_max, engines, lanes, th)| {
        IslandizationConfig::default()
            .with_c_max(c_max)
            .with_engines(engines)
            .with_lanes(lanes)
            .with_threshold_init(ThresholdInit::Absolute(th))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_invariants_hold(graph in arb_graph(), cfg in arb_config()) {
        let (partition, _) = IslandLocator::new(&graph, &cfg).run().expect("converges");
        partition.check_invariants(&graph).expect("invariants");
        prop_assert_eq!(
            partition.num_hubs() + partition.num_island_nodes(),
            graph.num_nodes()
        );
        prop_assert!((partition.outlier_fraction(&graph) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn islandization_is_deterministic(graph in arb_graph()) {
        let cfg = IslandizationConfig::default();
        let a = islandize(&graph, &cfg);
        let b = islandize(&graph, &cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn execution_lossless_on_arbitrary_graphs(
        graph in arb_graph(),
        k in 2usize..8,
        seed in 0u64..100,
    ) {
        let engine = IGcnEngine::new(
            &graph,
            IslandizationConfig::default(),
            ConsumerConfig::default().with_k(k),
        ).expect("generated graphs are loop-free");
        let n = graph.num_nodes();
        let x = SparseFeatures::random(n, 6, 0.5, seed);
        let model = GnnModel::gcn(6, 4, 3);
        let w = ModelWeights::glorot(&model, seed);
        let diff = engine.verify(&x, &model, &w);
        prop_assert!(diff < 1e-3, "diverged by {} with k={}", diff, k);
    }

    #[test]
    fn account_equals_run_for_any_config(
        graph in arb_graph(),
        k in 2usize..6,
        pes in 1usize..8,
    ) {
        let engine = IGcnEngine::new(
            &graph,
            IslandizationConfig::default(),
            ConsumerConfig::default().with_k(k).with_pes(pes),
        ).expect("loop-free");
        let n = graph.num_nodes();
        let x = SparseFeatures::random(n, 5, 0.4, 77);
        let model = GnnModel::gcn(5, 3, 2);
        let w = ModelWeights::glorot(&model, 5);
        let (_, run_stats) = engine.run(&x, &model, &w);
        let account_stats = engine.account(&x, &model);
        prop_assert_eq!(run_stats, account_stats);
    }

    #[test]
    fn window_ops_never_exceed_unpruned_and_ablation_is_neutral(graph in arb_graph()) {
        let engine = IGcnEngine::new(
            &graph,
            IslandizationConfig::default(),
            ConsumerConfig::default(),
        ).expect("loop-free");
        let n = graph.num_nodes();
        let x = SparseFeatures::random(n, 4, 0.5, 3);
        let model = GnnModel::gcn(4, 3, 2);
        let stats = engine.account(&x, &model);
        for layer in &stats.layers {
            // Window decisions alone never beat the unpruned count; only
            // eager pre-aggregation amortisation can push the *total* over
            // on structureless graphs (the documented negative-pruning
            // corner the paper's dense islands avoid).
            prop_assert!(
                layer.aggregation.executed_vector_adds
                    + layer.aggregation.executed_vector_subs
                    <= layer.aggregation.unpruned_vector_ops
            );
        }
        // With redundancy removal off, execution is exactly the unpruned
        // schedule.
        let ablation = IGcnEngine::new(
            &graph,
            IslandizationConfig::default(),
            ConsumerConfig::default().with_redundancy_removal(false),
        ).expect("loop-free");
        let ab_stats = ablation.account(&x, &model);
        for layer in &ab_stats.layers {
            prop_assert_eq!(
                layer.aggregation.executed_vector_ops(),
                layer.aggregation.unpruned_vector_ops
            );
        }
    }
}
