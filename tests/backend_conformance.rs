//! Backend conformance: every `Accelerator` implementation, one graph,
//! one contract.
//!
//! All backends are prepared with the same model on the same small
//! hub-island graph and must (a) answer with the same output shape,
//! (b) agree with the `igcn-gnn` reference forward pass within
//! floating-point tolerance, (c) echo request ids and preserve batch
//! order, and (d) be `Send + Sync` so they can serve from an `Arc`.

use std::sync::Arc;

use igcn::baselines::{AwbGcn, HyGcn, Platform, PlatformKind, Sigma};
use igcn::core::accel::{Accelerator, InferenceRequest};
use igcn::core::{CoreError, CpuReference, ExecConfig, IGcnEngine};
use igcn::gnn::{reference_forward, GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::{CsrGraph, SparseFeatures};
use igcn::serve::{ServingConfig, ServingEngine};
use igcn::sim::{HardwareConfig, IGcnAccelerator, SimBackend};

const N: usize = 250;
const FEATURE_DIM: usize = 16;
const CLASSES: usize = 5;

fn test_graph() -> Arc<CsrGraph> {
    let g = HubIslandConfig::new(N, 10).noise_fraction(0.02).generate(31);
    Arc::new(g.graph)
}

fn test_model() -> (GnnModel, ModelWeights) {
    let model = GnnModel::gcn(FEATURE_DIM, 8, CLASSES);
    let weights = ModelWeights::glorot(&model, 5);
    (model, weights)
}

/// Every backend in the workspace, prepared over `graph`; the engine is
/// built with `exec_cfg` so the whole suite can sweep thread counts.
fn all_backends_with(graph: &Arc<CsrGraph>, exec_cfg: ExecConfig) -> Vec<Box<dyn Accelerator>> {
    let hw = HardwareConfig::paper_default();
    let engine = IGcnEngine::builder(Arc::clone(graph))
        .exec_config(exec_cfg)
        .build()
        .expect("conformance graph is loop-free");
    vec![
        Box::new(engine),
        Box::new(CpuReference::new(Arc::clone(graph))),
        Box::new(SimBackend::new(IGcnAccelerator::new(hw), Arc::clone(graph))),
        Box::new(SimBackend::new(AwbGcn::new(hw), Arc::clone(graph))),
        Box::new(SimBackend::new(HyGcn::paper_config(), Arc::clone(graph))),
        Box::new(SimBackend::new(Sigma::paper_config(), Arc::clone(graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::PygCpuE5_2680), Arc::clone(graph))),
    ]
}

/// Every backend with the default (sequential) execution configuration.
fn all_backends(graph: &Arc<CsrGraph>) -> Vec<Box<dyn Accelerator>> {
    all_backends_with(graph, ExecConfig::default())
}

#[test]
fn every_backend_agrees_with_the_reference() {
    let graph = test_graph();
    let (model, weights) = test_model();
    let x = SparseFeatures::random(N, FEATURE_DIM, 0.3, 77);
    let expected = reference_forward(&graph, &x, &model, &weights);
    let request = InferenceRequest::new(x).with_id(42);

    let mut names = Vec::new();
    for mut backend in all_backends(&graph) {
        backend.prepare(&model, &weights).expect("conformance weights match");
        let response = backend.infer(&request).expect("prepared backend answers");
        let name = backend.name();
        assert_eq!(response.id, 42, "{name}: request id not echoed");
        assert_eq!(
            (response.output.rows(), response.output.cols()),
            (N, CLASSES),
            "{name}: wrong output shape"
        );
        let diff = response.output.max_abs_diff(&expected);
        assert!(diff < 1e-3, "{name}: diverges from reference by {diff}");
        assert_eq!(response.report.backend, name, "{name}: report names another backend");
        assert!(response.report.total_ops > 0, "{name}: empty cost report");
        names.push(name);
    }
    // The acceptance list: I-GCN, reference, AWB-GCN, HyGCN, SIGMA (+
    // the timing model and a software platform).
    for required in ["I-GCN", "CPU-reference", "AWB-GCN", "HyGCN", "SIGMA"] {
        assert!(
            names.iter().any(|n| n == required),
            "backend {required} missing from the conformance sweep (got {names:?})"
        );
    }
    assert!(names.len() >= 5, "fewer than five backends conform");
}

#[test]
fn infer_batch_is_ordered_and_matches_single_infer() {
    let graph = test_graph();
    let (model, weights) = test_model();
    let requests: Vec<InferenceRequest> = (0..4)
        .map(|i| {
            InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.25, 300 + i)).with_id(i)
        })
        .collect();
    for mut backend in all_backends(&graph) {
        backend.prepare(&model, &weights).expect("conformance weights match");
        let batched = backend.infer_batch(&requests).expect("batch answers");
        assert_eq!(batched.len(), requests.len(), "{}: batch length", backend.name());
        for (request, response) in requests.iter().zip(&batched) {
            assert_eq!(request.id, response.id, "{}: batch order lost", backend.name());
            let solo = backend.infer(request).expect("prepared backend answers");
            assert_eq!(
                solo.output,
                response.output,
                "{}: batched result differs from single infer",
                backend.name()
            );
        }
    }
}

#[test]
fn report_does_no_numeric_work_but_prices_the_request() {
    let graph = test_graph();
    let (model, weights) = test_model();
    let request = InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.3, 9));
    for mut backend in all_backends(&graph) {
        backend.prepare(&model, &weights).expect("conformance weights match");
        let report = backend.report(&request).expect("prepared backend prices");
        assert!(report.total_ops > 0, "{}: zero-op report", backend.name());
        assert_eq!(report.backend, backend.name());
    }
}

#[test]
fn unprepared_backends_refuse_and_bad_shapes_are_errors() {
    let graph = test_graph();
    let (model, weights) = test_model();
    let good = InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.3, 1));
    let wrong_rows = InferenceRequest::new(SparseFeatures::random(N / 2, FEATURE_DIM, 0.3, 1));
    let wrong_cols = InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM + 3, 0.3, 1));
    for mut backend in all_backends(&graph) {
        let name = backend.name();
        assert!(
            matches!(backend.infer(&good), Err(CoreError::NotPrepared { .. })),
            "{name}: must refuse before prepare"
        );
        backend.prepare(&model, &weights).expect("conformance weights match");
        assert!(
            matches!(backend.infer(&wrong_rows), Err(CoreError::ShapeMismatch { .. })),
            "{name}: must reject wrong feature rows"
        );
        assert!(
            matches!(backend.infer(&wrong_cols), Err(CoreError::ShapeMismatch { .. })),
            "{name}: must reject wrong feature width"
        );
    }
}

#[test]
fn thread_count_never_changes_any_backend_output() {
    // The parallel-execution determinism contract: for every backend,
    // the same graph + weights + requests produce bit-identical outputs
    // whether the I-GCN engine runs with 1, 2 or 8 threads (the other
    // backends have no thread knob and must simply stay identical).
    let graph = test_graph();
    let (model, weights) = test_model();
    let requests: Vec<InferenceRequest> = (0..3)
        .map(|i| {
            InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.3, 600 + i)).with_id(i)
        })
        .collect();

    let mut baseline: Option<Vec<Vec<igcn::linalg::DenseMatrix>>> = None;
    for threads in [1usize, 2, 8] {
        let exec_cfg = ExecConfig::default().with_threads(threads);
        let mut per_backend = Vec::new();
        for mut backend in all_backends_with(&graph, exec_cfg) {
            backend.prepare(&model, &weights).expect("conformance weights match");
            let solo = backend.infer(&requests[0]).expect("prepared backend answers");
            let batched = backend.infer_batch(&requests).expect("batch answers");
            assert_eq!(
                solo.output,
                batched[0].output,
                "{}: batch vs single diverges at {threads} threads",
                backend.name()
            );
            per_backend.push(batched.into_iter().map(|r| r.output).collect::<Vec<_>>());
        }
        match &baseline {
            None => baseline = Some(per_backend),
            Some(reference) => {
                for (b, (exp, got)) in reference.iter().zip(&per_backend).enumerate() {
                    for (i, (e, g)) in exp.iter().zip(got).enumerate() {
                        assert_eq!(
                            e, g,
                            "backend #{b} request {i}: output changed at {threads} threads"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn hot_path_thread_sweep_is_bit_identical() {
    // The PR-3 contract, post-PR-6: the physical schedule-order layout
    // *is* the execution path (the legacy index-indirect path was
    // retired; the consumer oracle in the hotpath unit tests still pins
    // bit-identity at layer granularity). Outputs AND the layer/locator
    // statistics must be invariant at 1, 2 and 8 threads on both the
    // direct (`run`) and serving (`infer_batch`) paths, and the *full*
    // ExecStats (occupancy included) must be deterministic across
    // repeated runs at each fixed thread count.
    let graph = test_graph();
    let (model, weights) = test_model();
    let x = SparseFeatures::random(N, FEATURE_DIM, 0.3, 91);
    let requests: Vec<InferenceRequest> = (0..3)
        .map(|i| {
            InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.25, 700 + i)).with_id(i)
        })
        .collect();

    let mut output_baseline: Option<(igcn::linalg::DenseMatrix, Vec<igcn::linalg::DenseMatrix>)> =
        None;
    let mut layer_stats_baseline: Option<igcn::core::ExecStats> = None;
    for threads in [1usize, 2, 8] {
        let exec_cfg = ExecConfig::default().with_threads(threads);
        let mut engine = IGcnEngine::builder(Arc::clone(&graph))
            .exec_config(exec_cfg)
            .build()
            .expect("conformance graph is loop-free");
        engine.prepare(&model, &weights).expect("conformance weights match");
        let ctx = format!("threads={threads}");
        let (out, stats) = engine.run(&x, &model, &weights).expect("direct run");
        let (out2, stats2) = engine.run(&x, &model, &weights).expect("repeat run");
        assert_eq!(out, out2, "{ctx}: repeated run output diverged");
        assert_eq!(stats, stats2, "{ctx}: repeated run ExecStats diverged");
        let batched: Vec<_> = engine
            .infer_batch(&requests)
            .expect("batch answers")
            .into_iter()
            .map(|r| r.output)
            .collect();
        match &output_baseline {
            None => output_baseline = Some((out, batched)),
            Some((ref_out, ref_batched)) => {
                assert_eq!(&out, ref_out, "{ctx}: run output diverged");
                assert_eq!(&batched, ref_batched, "{ctx}: batched outputs diverged");
            }
        }
        match &layer_stats_baseline {
            None => layer_stats_baseline = Some(stats),
            Some(reference) => {
                assert_eq!(stats.layers, reference.layers, "{ctx}: layer stats diverged");
                assert_eq!(stats.locator, reference.locator, "{ctx}: locator stats diverged");
            }
        }
    }
}

#[test]
fn simd_scalar_fallback_sweep_is_bit_identical() {
    // The PR-7 contract: the SIMD kernels (AVX2/NEON when detected) and
    // the portable scalar fallback produce bit-identical outputs AND
    // `ExecStats`, across thread counts and shard counts. The fallback
    // is pinned at runtime with the `igcn::simd::force_scalar` test
    // hook; the flag is process-global, which is safe to flip here
    // precisely *because* of the equality this test asserts — any other
    // test running concurrently computes the same bits either way.
    use igcn::shard::ShardedEngine;

    struct ScalarGuard;
    impl ScalarGuard {
        fn pin() -> Self {
            igcn::simd::force_scalar(true);
            ScalarGuard
        }
    }
    impl Drop for ScalarGuard {
        fn drop(&mut self) {
            igcn::simd::force_scalar(false);
        }
    }

    let graph = test_graph();
    let (model, weights) = test_model();
    let x = SparseFeatures::random(N, FEATURE_DIM, 0.3, 83);
    const SHARDS: [usize; 3] = [1, 2, 4];

    for threads in [1usize, 2, 8] {
        let exec_cfg = ExecConfig::default().with_threads(threads);
        let mut engine =
            IGcnEngine::builder(Arc::clone(&graph)).exec_config(exec_cfg).build().unwrap();
        engine.prepare(&model, &weights).unwrap();

        // Native (detected) backend reference, single-engine + sharded.
        let (native_out, native_stats) = engine.run(&x, &model, &weights).unwrap();
        let native_sharded: Vec<_> = SHARDS
            .iter()
            .map(|&s| {
                ShardedEngine::from_engine(&engine, s)
                    .expect("conformance graph shards")
                    .run(&x, &model, &weights)
                    .unwrap()
            })
            .collect();

        // Same engine, scalar kernels pinned.
        let _guard = ScalarGuard::pin();
        assert!(igcn::simd::scalar_forced(), "test hook did not engage");
        let ctx = format!("threads={threads}");
        let (scalar_out, scalar_stats) = engine.run(&x, &model, &weights).unwrap();
        assert_eq!(scalar_out, native_out, "{ctx}: scalar fallback changed the output");
        assert_eq!(scalar_stats, native_stats, "{ctx}: scalar fallback changed ExecStats");
        for (&shards, native) in SHARDS.iter().zip(&native_sharded) {
            let sctx = format!("{ctx} shards={shards}");
            let sharded = ShardedEngine::from_engine(&engine, shards).unwrap();
            let (out, stats) = sharded.run(&x, &model, &weights).unwrap();
            assert_eq!(out, native.0, "{sctx}: scalar fallback changed the output");
            assert_eq!(stats, native.1, "{sctx}: scalar fallback changed ExecStats");
        }
    }
}

#[test]
fn layout_survives_graph_updates() {
    // `apply_update` recomposes the physical layout; the post-update
    // engine must still agree with the software reference on the
    // updated graph, stay bit-identical across thread counts, and keep
    // its partition invariants.
    let graph = test_graph();
    let (model, weights) = test_model();
    let mut engine = IGcnEngine::builder(Arc::clone(&graph)).build().unwrap();
    engine.prepare(&model, &weights).unwrap();

    let n = graph.num_nodes() as u32;
    let update =
        igcn::core::GraphUpdate::add_edges(vec![(n, 0), (n + 1, n)]).with_num_nodes(n as usize + 2);
    engine.apply_update(update).unwrap();

    let x = SparseFeatures::random(n as usize + 2, FEATURE_DIM, 0.3, 17);
    let diff = engine.verify(&x, &model, &weights).unwrap();
    assert!(diff < 1e-3, "post-update engine diverges from reference by {diff}");
    let (out1, stats1) = engine.run(&x, &model, &weights).unwrap();
    engine.set_exec_config(ExecConfig::default().with_threads(4));
    let (out4, stats4) = engine.run(&x, &model, &weights).unwrap();
    assert_eq!(out1, out4, "post-update outputs diverged across thread counts");
    assert_eq!(stats1.layers, stats4.layers, "post-update layer stats diverged");
    assert_eq!(stats1.locator, stats4.locator, "post-update locator stats diverged");
    engine.layout().partition().check_invariants(engine.layout().graph()).unwrap();
}

#[test]
fn snapshot_round_trip_is_bit_identical_across_threads() {
    // The PR-4 contract: an engine loaded via `from_snapshot` is the
    // *same* engine — outputs AND the complete `ExecStats` are
    // bit-identical to the cold-built original at every thread count,
    // and the equality must survive WAL-replayed `GraphUpdate`s.
    let graph = test_graph();
    let (model, weights) = test_model();
    let x = SparseFeatures::random(N, FEATURE_DIM, 0.3, 55);
    let requests: Vec<InferenceRequest> = (0..3)
        .map(|i| {
            InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.25, 800 + i)).with_id(i)
        })
        .collect();

    // One snapshot captured from a plainly-configured cold engine: the
    // exec config is a runtime knob and must not be baked into the
    // image.
    let mut cold_origin = IGcnEngine::builder(Arc::clone(&graph)).build().unwrap();
    cold_origin.prepare(&model, &weights).unwrap();
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("igcn-conformance-{}.snap", std::process::id()));
    igcn::store::Snapshot::capture(&cold_origin).write(&snap_path).unwrap();

    for threads in [1usize, 2, 8] {
        let exec_cfg = ExecConfig::default().with_threads(threads);
        let mut cold =
            IGcnEngine::builder(Arc::clone(&graph)).exec_config(exec_cfg).build().unwrap();
        cold.prepare(&model, &weights).unwrap();
        let warm = igcn::store::from_snapshot(&snap_path).exec_config(exec_cfg).build().unwrap();
        let ctx = format!("threads={threads}");

        let (cold_out, cold_stats) = cold.run(&x, &model, &weights).unwrap();
        let (warm_out, warm_stats) = warm.run(&x, &model, &weights).unwrap();
        assert_eq!(warm_out, cold_out, "{ctx}: warm run output diverged");
        assert_eq!(warm_stats, cold_stats, "{ctx}: warm run stats diverged");

        let cold_batch = cold.infer_batch(&requests).unwrap();
        let warm_batch = warm.infer_batch(&requests).unwrap();
        for (a, b) in cold_batch.iter().zip(&warm_batch) {
            assert_eq!(a.id, b.id);
            assert_eq!(b.output, a.output, "{ctx}: warm batch output diverged");
            assert_eq!(b.report, a.report, "{ctx}: warm batch report diverged");
        }
    }
    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn snapshot_boot_after_wal_replay_matches_live_engine() {
    // EngineStore round trip: snapshot + WAL-first updates, then a boot
    // that replays the log must serve bit-identically to the live
    // engine that never restarted — at 1 and 8 threads.
    let graph = test_graph();
    let (model, weights) = test_model();
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("igcn-conformance-wal-{}.snap", std::process::id()));
    let store = igcn::store::EngineStore::at(&snap_path);

    let mut live = IGcnEngine::builder(Arc::clone(&graph)).build().unwrap();
    live.prepare(&model, &weights).unwrap();
    store.checkpoint(&live).unwrap();

    // Structural churn through the WAL: growth onto a hub, an edge
    // between existing nodes, and a removal that dissolves an island.
    let n = graph.num_nodes() as u32;
    let hub = live.partition().hubs()[0];
    store
        .apply_update(
            &mut live,
            igcn::core::GraphUpdate::add_edges(vec![(n, hub), (n + 1, n)])
                .with_num_nodes(n as usize + 2),
        )
        .unwrap();
    let island = live.partition().islands().iter().find(|i| i.len() >= 2).unwrap();
    let a = island.nodes[0];
    let b = *live
        .graph()
        .neighbors(igcn::graph::NodeId::new(a))
        .iter()
        .find(|&&nb| nb != a)
        .expect("island node has a neighbor");
    store.apply_update(&mut live, igcn::core::GraphUpdate::remove_edges(vec![(a, b)])).unwrap();

    let x = SparseFeatures::random(live.graph().num_nodes(), FEATURE_DIM, 0.3, 77);
    let (live_out, live_stats) = live.run(&x, &model, &weights).unwrap();
    for threads in [1usize, 8] {
        let exec_cfg = ExecConfig::default().with_threads(threads);
        let boot = store.boot(exec_cfg).unwrap();
        assert_eq!(boot.replayed_updates, 2);
        assert!(boot.prepared, "snapshot carried the prepared model");
        let ctx = format!("threads={threads}");
        let (boot_out, boot_stats) = boot.engine.run(&x, &model, &weights).unwrap();
        assert_eq!(boot_out, live_out, "{ctx}: booted output diverged after WAL replay");
        // The occupancy model reflects the configured worker count
        // by design; everything else is invariant across the sweep.
        assert_eq!(boot_stats.layers, live_stats.layers, "{ctx}: layer stats diverged");
        assert_eq!(boot_stats.locator, live_stats.locator, "{ctx}: locator stats diverged");
        if threads == 1 {
            assert_eq!(boot_stats, live_stats, "{ctx}: full stats diverged at live config");
        }
    }
    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(store.wal_path()).ok();
}

#[test]
fn sharded_engine_is_bit_identical_across_shards_and_threads() {
    // The PR-5 contract: a `ShardedEngine` is a *distributed execution
    // of the same computation DAG* — outputs AND the complete
    // `ExecStats` are bit-identical to the single-engine reference for
    // {1, 2, 4} shards at every tested thread count, on a citation bin
    // and a power-law bin, including after routed `apply_update`s and
    // after a manifest save/load round-trip.
    use igcn::shard::ShardedEngine;

    let cora = igcn::graph::datasets::Dataset::Cora.generate_scaled(0.12, 41);
    let pl_n = 900;
    let powerlaw = igcn::graph::generate::barabasi_albert(pl_n, 6, 42);
    let bins: Vec<(&str, Arc<CsrGraph>, usize)> = vec![
        ("citation", Arc::new(cora.graph), cora.features.num_cols()),
        ("powerlaw", Arc::new(powerlaw), 24),
    ];

    for (bin, graph, feature_dim) in bins {
        let n = graph.num_nodes();
        let model = GnnModel::gcn(feature_dim, 8, 4);
        let weights = ModelWeights::glorot(&model, 7);
        let x = SparseFeatures::random(n, feature_dim, 0.05, 99);
        let requests: Vec<InferenceRequest> = (0..2)
            .map(|i| {
                InferenceRequest::new(SparseFeatures::random(n, feature_dim, 0.05, 900 + i))
                    .with_id(i)
            })
            .collect();

        for threads in [1usize, 2] {
            let exec_cfg = ExecConfig::default().with_threads(threads);
            let mut reference = IGcnEngine::builder(Arc::clone(&graph))
                .exec_config(exec_cfg)
                .build()
                .expect("conformance bins are loop-free");
            reference.prepare(&model, &weights).unwrap();
            let (ref_out, ref_stats) = reference.run(&x, &model, &weights).unwrap();
            let ref_batch = reference.infer_batch(&requests).unwrap();

            for shards in [1usize, 2, 4] {
                let ctx = format!("{bin} shards={shards} threads={threads}");
                let sharded =
                    ShardedEngine::from_engine(&reference, shards).expect("conformance bins shard");
                assert_eq!(sharded.num_shards(), shards, "{ctx}");
                let (out, stats) = sharded.run(&x, &model, &weights).unwrap();
                assert_eq!(out, ref_out, "{ctx}: run output diverged");
                assert_eq!(stats, ref_stats, "{ctx}: run stats diverged");
                let batch = sharded.infer_batch(&requests).unwrap();
                for (a, b) in ref_batch.iter().zip(&batch) {
                    assert_eq!(a.id, b.id, "{ctx}");
                    assert_eq!(b.output, a.output, "{ctx}: batch output diverged");
                }
            }
        }

        // Routed updates: growth onto a hub plus an island-dissolving
        // removal, applied through both paths, then the sweep again.
        let mut reference = IGcnEngine::builder(Arc::clone(&graph)).build().unwrap();
        reference.prepare(&model, &weights).unwrap();
        let mut sharded = ShardedEngine::from_engine(&reference, 2).unwrap();
        let n0 = reference.graph().num_nodes() as u32;
        let hub = reference.partition().hubs()[0];
        let growth = igcn::core::GraphUpdate::add_edges(vec![(n0, hub), (n0 + 1, n0)])
            .with_num_nodes(n0 as usize + 2);
        reference.apply_update(growth.clone()).unwrap();
        sharded.apply_update(growth).unwrap();
        // Any island node with an incident edge works (the islands of
        // sparse citation bins can all be small, so don't assume a
        // 2-node island exists).
        let (a, b) = reference
            .partition()
            .islands()
            .iter()
            .flat_map(|i| i.nodes.iter())
            .find_map(|&v| {
                reference
                    .graph()
                    .neighbors(igcn::graph::NodeId::new(v))
                    .iter()
                    .find(|&&nb| nb != v)
                    .map(|&nb| (v, nb))
            })
            .expect("some island node has a neighbor");
        let removal = igcn::core::GraphUpdate::remove_edges(vec![(a, b)]);
        reference.apply_update(removal.clone()).unwrap();
        sharded.apply_update(removal).unwrap();

        let x2 = SparseFeatures::random(reference.graph().num_nodes(), feature_dim, 0.05, 101);
        let (ref_out, ref_stats) = reference.run(&x2, &model, &weights).unwrap();
        let (out, stats) = sharded.run(&x2, &model, &weights).unwrap();
        assert_eq!(out, ref_out, "{bin}: post-update output diverged");
        assert_eq!(stats, ref_stats, "{bin}: post-update stats diverged");

        // Manifest round trip: the cold-started fleet must still match.
        let dir = std::env::temp_dir()
            .join(format!("igcn-conformance-shard-{}-{bin}", std::process::id()));
        let manifest = sharded.save_manifest(&dir, "fleet").unwrap();
        for threads in [1usize, 2] {
            let booted = ShardedEngine::from_manifest(
                &manifest,
                ExecConfig::default().with_threads(threads),
            )
            .unwrap();
            let (out, stats) = booted.run(&x2, &model, &weights).unwrap();
            let ctx = format!("{bin} booted threads={threads}");
            assert_eq!(out, ref_out, "{ctx}: output diverged after manifest round trip");
            assert_eq!(stats.layers, ref_stats.layers, "{ctx}: layer stats diverged");
            assert_eq!(stats.locator, ref_stats.locator, "{ctx}: locator stats diverged");
            if threads == 1 {
                assert_eq!(stats, ref_stats, "{ctx}: full stats diverged");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn serving_engine_is_order_stable_and_shuts_down_cleanly() {
    // Concurrent submitters hammer one ServingEngine; every ticket must
    // come back with its own request's id and the exact output a direct
    // infer produces, then shutdown must drain cleanly.
    let graph = test_graph();
    let (model, weights) = test_model();
    let mut engine = IGcnEngine::builder(Arc::clone(&graph))
        .exec_config(ExecConfig::default().with_threads(2))
        .build()
        .unwrap();
    engine.prepare(&model, &weights).unwrap();
    let backend: Arc<dyn Accelerator> = Arc::new(engine);
    let serving = Arc::new(ServingEngine::start(
        Arc::clone(&backend),
        ServingConfig::default().with_workers(2).with_max_batch(4),
    ));

    let submitters: Vec<_> = (0..4u64)
        .map(|t| {
            let serving = Arc::clone(&serving);
            let backend = Arc::clone(&backend);
            std::thread::spawn(move || {
                for i in 0..5u64 {
                    let id = t * 100 + i;
                    let request =
                        InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.25, id))
                            .with_id(id);
                    let expected = backend.infer(&request).expect("direct infer");
                    let response = serving
                        .submit(request)
                        .expect("accepting while running")
                        .wait()
                        .expect("served");
                    assert_eq!(response.id, id, "response correlated to the wrong request");
                    assert_eq!(response.output, expected.output, "served output diverges");
                }
            })
        })
        .collect();
    for handle in submitters {
        handle.join().expect("submitter panicked");
    }
    assert_eq!(serving.completed(), 20);
    assert_eq!(serving.pending(), 0);
    let serving = Arc::into_inner(serving).expect("all submitters dropped their handles");
    serving.shutdown(); // must join without hanging
}

#[test]
fn backends_are_send_sync_and_shareable() {
    // Compile-time assertions: the acceptance criterion that the owned
    // engine (and every other backend) can cross threads inside an Arc.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IGcnEngine>();
    assert_send_sync::<CpuReference>();
    assert_send_sync::<SimBackend<IGcnAccelerator>>();
    assert_send_sync::<SimBackend<AwbGcn>>();
    assert_send_sync::<SimBackend<HyGcn>>();
    assert_send_sync::<SimBackend<Sigma>>();
    assert_send_sync::<SimBackend<Platform>>();
    assert_send_sync::<Box<dyn Accelerator>>();

    // And a runtime smoke test: serve the same prepared engine from two
    // threads through an Arc.
    let graph = test_graph();
    let (model, weights) = test_model();
    let mut engine = IGcnEngine::builder(Arc::clone(&graph)).build().unwrap();
    engine.prepare(&model, &weights).unwrap();
    let shared: Arc<dyn Accelerator> = Arc::new(engine);
    let handles: Vec<_> = (0..2)
        .map(|t| {
            let backend = Arc::clone(&shared);
            std::thread::spawn(move || {
                let request =
                    InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.3, 50 + t))
                        .with_id(t);
                let response = backend.infer(&request).expect("shared engine serves");
                assert_eq!(response.id, t);
                assert_eq!(response.output.rows(), N);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("serving thread panicked");
    }
}
