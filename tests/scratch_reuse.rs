//! Scratch-reuse regression: repeated `infer` calls on the physical
//! layout must not grow the heap.
//!
//! The engine pools its [`LayerScratch`] arenas, the schedule-order
//! feature buffer and the ping-pong activation matrices, so after the
//! first (warm-up) request every later request reuses steady-state
//! buffers: live heap bytes return to the pre-call level and the bytes
//! allocated per call are constant — no per-layer heap growth.
//!
//! The test instruments the global allocator, which is why it lives in
//! its own integration-test binary with a single `#[test]` (no
//! concurrent tests polluting the counters).
//!
//! [`LayerScratch`]: igcn::core::LayerScratch

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, AtomicU64, Ordering};
use std::sync::Arc;

use igcn::core::accel::{Accelerator, InferenceRequest};
use igcn::core::{ExecConfig, IGcnEngine};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::SparseFeatures;

/// Counts cumulative allocated bytes and live (outstanding) bytes.
struct CountingAllocator;

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::SeqCst);
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::SeqCst);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::SeqCst);
        LIVE_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn repeated_infer_calls_do_not_grow_the_heap() {
    const N: usize = 400;
    const FEATURE_DIM: usize = 16;
    let g = HubIslandConfig::new(N, 16).noise_fraction(0.02).generate(23);
    let graph = Arc::new(g.graph);
    let model = GnnModel::gcn(FEATURE_DIM, 8, 4);
    let weights = ModelWeights::glorot(&model, 3);
    let mut engine = IGcnEngine::builder(Arc::clone(&graph)).build().expect("loop-free graph");
    engine.prepare(&model, &weights).expect("weights match");
    let request = InferenceRequest::new(SparseFeatures::random(N, FEATURE_DIM, 0.3, 5));

    // First call: arenas and pools grow to their steady-state size.
    let first_start = ALLOCATED_BYTES.load(Ordering::SeqCst);
    let warm = engine.infer(&request).expect("prepared engine");
    let first_call_bytes = ALLOCATED_BYTES.load(Ordering::SeqCst) - first_start;
    drop(warm);
    // One more warm-up: lets every lazily-grown buffer reach its final
    // capacity before measurement.
    drop(engine.infer(&request).expect("prepared engine"));

    // Steady state: live bytes must return to the pre-call level after
    // every request (zero heap growth), and the bytes allocated per
    // call must be constant call over call (no per-layer accumulation).
    // (Preallocated so the measurement loop's own bookkeeping never
    // allocates inside the measured window.)
    let mut per_call = Vec::with_capacity(8);
    let live_before = LIVE_BYTES.load(Ordering::SeqCst);
    for i in 0..5 {
        let start = ALLOCATED_BYTES.load(Ordering::SeqCst);
        let response = engine.infer(&request).expect("prepared engine");
        assert_eq!(response.output.rows(), N);
        drop(response);
        per_call.push(ALLOCATED_BYTES.load(Ordering::SeqCst) - start);
        assert_eq!(
            LIVE_BYTES.load(Ordering::SeqCst),
            live_before,
            "call {i}: live heap bytes grew across infer calls"
        );
    }
    assert!(
        per_call.windows(2).all(|w| w[0] == w[1]),
        "per-call allocation must be constant at steady state, got {per_call:?}"
    );
    // The steady-state per-call allocation (response payload + transient
    // bookkeeping) must be well below the cold first call, which paid
    // for the arenas.
    assert!(
        per_call[0] < first_call_bytes,
        "steady-state calls ({} B) should allocate less than the cold call ({} B)",
        per_call[0],
        first_call_bytes
    );

    // The multi-thread island path: workers write island rows straight
    // into the shared output slab and hub contributions into the pooled
    // slab, so repeated parallel infers must not grow the live heap
    // either. (Per-call *totals* are not compared here — dynamic island
    // claiming makes the number of worker arenas grown per call
    // schedule-dependent — but every transient buffer must be returned:
    // live bytes pin steady state.)
    engine.set_exec_config(ExecConfig::default().with_threads(2));
    // Warm-up: spawn-once pool worker stacks, pooled arenas, slab growth.
    drop(engine.infer(&request).expect("prepared engine"));
    drop(engine.infer(&request).expect("prepared engine"));
    let live_before_parallel = LIVE_BYTES.load(Ordering::SeqCst);
    for i in 0..5 {
        let response = engine.infer(&request).expect("prepared engine");
        assert_eq!(response.output.rows(), N);
        drop(response);
        assert_eq!(
            LIVE_BYTES.load(Ordering::SeqCst),
            live_before_parallel,
            "parallel call {i}: live heap bytes grew across infer calls"
        );
    }
}
