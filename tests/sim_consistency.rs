//! Integration: the accelerator and baseline models produce mutually
//! consistent shapes — the orderings the paper's evaluation reports.

use igcn::baselines::{AwbGcn, HyGcn, Platform, PlatformKind, Sigma};
use igcn::gnn::{GnnKind, GnnModel, ModelConfig};
use igcn::graph::datasets::Dataset;
use igcn::sim::{GcnAccelerator, HardwareConfig, IGcnAccelerator};

fn cora() -> (igcn::graph::CsrGraph, igcn::graph::SparseFeatures, GnnModel) {
    let d = Dataset::Cora.generate_scaled(0.5, 42);
    let m = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
    (d.graph, d.features, m)
}

#[test]
fn igcn_beats_awb_beats_software() {
    let (g, x, m) = cora();
    let hw = HardwareConfig::paper_default();
    let ours = IGcnAccelerator::new(hw).simulate(&g, &x, &m);
    let awb = AwbGcn::new(hw).simulate(&g, &x, &m);
    let cpu = Platform::new(PlatformKind::PygCpuE5_2680).simulate(&g, &x, &m);
    let gpu = Platform::new(PlatformKind::PygGpuV100).simulate(&g, &x, &m);

    assert!(
        ours.latency_s < awb.latency_s,
        "I-GCN ({}) must beat AWB-GCN ({})",
        ours.latency_us(),
        awb.latency_us()
    );
    assert!(awb.latency_s < gpu.latency_s, "accelerators must beat GPUs");
    assert!(gpu.latency_s < cpu.latency_s, "GPUs must beat CPUs");
    // Order-of-magnitude bands of Figure 14(B): CPU speedup in the
    // thousands, GPU in the hundreds.
    let cpu_speedup = ours.speedup_over(&cpu);
    let gpu_speedup = ours.speedup_over(&gpu);
    assert!(cpu_speedup > 500.0, "CPU speedup {cpu_speedup} below band");
    assert!(gpu_speedup > 20.0, "GPU speedup {gpu_speedup} below band");
}

#[test]
fn igcn_traffic_lowest() {
    let (g, x, m) = cora();
    let hw = HardwareConfig::paper_default();
    let ours = IGcnAccelerator::new(hw).simulate(&g, &x, &m);
    let awb = AwbGcn::new(hw).simulate(&g, &x, &m);
    let hygcn = HyGcn::paper_config().simulate(&g, &x, &m);
    assert!(
        ours.offchip_bytes < awb.offchip_bytes,
        "Figure 14(A): I-GCN traffic ({}) must undercut AWB-GCN ({})",
        ours.offchip_bytes,
        awb.offchip_bytes
    );
    assert!(ours.offchip_bytes < hygcn.offchip_bytes);
}

#[test]
fn microsecond_band_on_citation_graphs() {
    // Table 2: citation graphs run in single-digit to tens of µs.
    let (g, x, m) = cora();
    let ours = IGcnAccelerator::new(HardwareConfig::paper_default()).simulate(&g, &x, &m);
    assert!(
        ours.latency_us() < 100.0,
        "Cora-scale inference should be tens of µs at most, got {}",
        ours.latency_us()
    );
}

#[test]
fn sigma_slower_than_gcn_accelerators() {
    let (g, x, m) = cora();
    let hw = HardwareConfig::paper_default();
    let ours = IGcnAccelerator::new(hw).simulate(&g, &x, &m);
    let sigma = Sigma::paper_config().simulate(&g, &x, &m);
    let ratio = ours.speedup_over(&sigma);
    assert!(ratio > 2.0, "SIGMA should trail I-GCN clearly, got {ratio}x");
}

#[test]
fn energy_efficiency_tracks_latency() {
    let (g, x, m) = cora();
    let hw = HardwareConfig::paper_default();
    let ours = IGcnAccelerator::new(hw).simulate(&g, &x, &m);
    let awb = AwbGcn::new(hw).simulate(&g, &x, &m);
    assert!(
        ours.graphs_per_kilojoule > awb.graphs_per_kilojoule,
        "Table 2: I-GCN EE must exceed AWB-GCN EE"
    );
}

#[test]
fn weak_communities_shrink_the_win() {
    // §4.6.2: the speedup over AWB-GCN is smallest on Reddit because its
    // component structure is weak. Compare the I-GCN/AWB ratio between a
    // strongly and a weakly clustered graph of the same size.
    use igcn::graph::generate::HubIslandConfig;
    use igcn::graph::SparseFeatures;
    let hw = HardwareConfig::paper_default();
    let model = GnnModel::gcn(32, 16, 4);
    let mut ratios = Vec::new();
    for noise in [0.0, 0.35] {
        let g =
            HubIslandConfig::new(4_000, 160).noise_fraction(noise).island_density(0.5).generate(5);
        let x = SparseFeatures::random(4_000, 32, 0.1, 6);
        let ours = IGcnAccelerator::new(hw).simulate(&g.graph, &x, &model);
        let awb = AwbGcn::new(hw).simulate(&g.graph, &x, &model);
        ratios.push(ours.speedup_over(&awb));
    }
    assert!(
        ratios[0] > ratios[1] * 0.95,
        "strong communities ({}) should help I-GCN at least as much as weak ones ({})",
        ratios[0],
        ratios[1]
    );
}
