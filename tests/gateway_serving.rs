//! End-to-end gateway serving: both wire protocols against both boot
//! paths, plus the gateway's flow-control contracts.
//!
//! * **Bit-identity** — an inference answered over HTTP/1.1 and over
//!   the binary framing must be bit-identical to a direct
//!   [`Accelerator::infer`] call on the same backend, whether that
//!   backend was warm-started from a single-engine snapshot or
//!   cold-started as a sharded fleet from a [`ShardManifest`].
//! * **Deadline cancellation** — a request whose deadline expires
//!   while it waits in the admission queue is answered 504 / binary
//!   `Deadline` and is *never dispatched* to the serving tier (the
//!   `dispatched` counter proves it).
//! * **Shed, not block** — when the worker, the serving queue, the
//!   dispatcher and the admission queue are all occupied, a new
//!   request is refused immediately (HTTP 429 / binary `Shed`)
//!   instead of blocking the IO thread.
//! * **Graceful drain** — `Gateway::shutdown` waits for in-flight
//!   requests to complete and flushes their responses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use igcn_core::accel::{Accelerator, ExecReport, InferenceRequest, InferenceResponse};
use igcn_core::{CoreError, ExecConfig, IGcnEngine};
use igcn_gateway::{BinaryClient, Gateway, GatewayConfig, HttpClient, InferReply};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::generate::HubIslandConfig;
use igcn_graph::SparseFeatures;
use igcn_serve::ServingConfig;
use igcn_shard::ShardedEngine;
use igcn_store::Snapshot;

const N: usize = 220;
const DIM: usize = 12;

fn prepared_engine() -> IGcnEngine {
    let data = HubIslandConfig::new(N, 9).noise_fraction(0.02).generate(31);
    let mut engine =
        IGcnEngine::builder(data.graph).build().expect("generated graphs are loop-free");
    let model = GnnModel::gcn(DIM, 8, 6);
    let weights = ModelWeights::glorot(&model, 7);
    engine.prepare(&model, &weights).expect("weights match the model");
    engine
}

fn features(seed: u64) -> SparseFeatures {
    SparseFeatures::random(N, DIM, 0.25, seed)
}

/// A scratch directory under the target-adjacent tmp, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("igcn-gwtest-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs the two clients against `gateway` and asserts both replies are
/// bit-identical to `direct`.
fn assert_both_protocols_match(gateway: &Gateway, direct: &InferenceResponse, seed: u64) {
    let addr = gateway.local_addr();
    let mut http = HttpClient::connect(addr).expect("http connect");
    match http.infer(direct.id, None, &features(seed)).expect("http infer") {
        InferReply::Output { id, output } => {
            assert_eq!(id, direct.id);
            assert_eq!(output, direct.output, "HTTP reply must be bit-identical");
        }
        other => panic!("expected an output over HTTP, got {other:?}"),
    }
    let mut binary = BinaryClient::connect(addr).expect("binary connect");
    match binary.infer(direct.id, None, &features(seed)).expect("binary infer") {
        InferReply::Output { id, output } => {
            assert_eq!(id, direct.id);
            assert_eq!(output, direct.output, "binary reply must be bit-identical");
        }
        other => panic!("expected an output over the wire, got {other:?}"),
    }
}

#[test]
fn snapshot_booted_backend_serves_both_protocols_bit_identically() {
    let dir = TempDir::new("snap");
    let engine = prepared_engine();
    let snap_path = dir.0.join("engine.snap");
    Snapshot::capture(&engine).write_with_checksum(&snap_path).expect("snapshot writes");

    // Boot the serving backend from the snapshot alone.
    let warmed = Snapshot::read(&snap_path)
        .expect("snapshot reads")
        .warm_engine(ExecConfig::default())
        .expect("warm boot");
    let direct = warmed.infer(&InferenceRequest::new(features(101)).with_id(5)).expect("prepared");

    let gateway = Gateway::serve(Arc::new(warmed), "127.0.0.1:0", GatewayConfig::default())
        .expect("gateway binds");
    assert_both_protocols_match(&gateway, &direct, 101);
    let stats = gateway.stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.dispatched, 2);
    gateway.shutdown();
}

#[test]
fn manifest_booted_fleet_serves_both_protocols_bit_identically() {
    let dir = TempDir::new("fleet");
    let engine = prepared_engine();
    let direct = engine.infer(&InferenceRequest::new(features(202)).with_id(9)).expect("prepared");

    // Partition into a 3-shard fleet, persist it, cold-start from the
    // manifest alone, and serve the fleet through the gateway.
    let sharded = ShardedEngine::from_engine(&engine, 3).expect("partitions");
    let manifest = sharded.save_manifest(&dir.0, "fleet").expect("manifest writes");
    drop(sharded);
    let fleet =
        ShardedEngine::from_manifest(&manifest, ExecConfig::default()).expect("fleet boots");

    let gateway = Gateway::serve(Arc::new(fleet), "127.0.0.1:0", GatewayConfig::default())
        .expect("gateway binds");
    assert_both_protocols_match(&gateway, &direct, 202);
    assert_eq!(gateway.stats().completed, 2);
    gateway.shutdown();
}

/// An `Accelerator` whose `infer` blocks until the gate opens —
/// deterministic worker occupancy for the flow-control tests.
struct GatedBackend {
    inner: IGcnEngine,
    open: Mutex<bool>,
    cv: Condvar,
    infer_calls: AtomicU64,
}

impl GatedBackend {
    fn new(inner: IGcnEngine) -> Arc<GatedBackend> {
        Arc::new(GatedBackend {
            inner,
            open: Mutex::new(false),
            cv: Condvar::new(),
            infer_calls: AtomicU64::new(0),
        })
    }

    fn open_gate(&self) {
        *self.open.lock().expect("gate lock") = true;
        self.cv.notify_all();
    }

    fn wait_for_gate(&self) {
        let mut open = self.open.lock().expect("gate lock");
        while !*open {
            open = self.cv.wait(open).expect("gate lock");
        }
    }
}

impl Accelerator for GatedBackend {
    fn name(&self) -> String {
        format!("gated({})", self.inner.name())
    }

    fn graph(&self) -> &igcn_graph::CsrGraph {
        self.inner.graph()
    }

    fn prepare(&mut self, model: &GnnModel, weights: &ModelWeights) -> Result<(), CoreError> {
        self.inner.prepare(model, weights)
    }

    fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
        self.infer_calls.fetch_add(1, Ordering::SeqCst);
        self.wait_for_gate();
        self.inner.infer(request)
    }

    fn report(&self, request: &InferenceRequest) -> Result<ExecReport, CoreError> {
        self.inner.report(request)
    }
}

/// A serving tier with exactly one slot everywhere: one worker, a
/// one-deep serving queue, micro-batches of one.
fn single_slot_serving() -> ServingConfig {
    ServingConfig {
        num_workers: 1,
        queue_capacity: 1,
        max_batch: 1,
        max_wait: Duration::from_millis(1),
        ..ServingConfig::default()
    }
}

/// Sends one binary inference on its own thread and returns the reply.
fn spawn_infer(
    addr: std::net::SocketAddr,
    id: u64,
    deadline_ms: Option<u64>,
    seed: u64,
) -> std::thread::JoinHandle<InferReply> {
    std::thread::spawn(move || {
        let mut client = BinaryClient::connect(addr).expect("binary connect");
        client.infer(id, deadline_ms, &features(seed)).expect("wire round-trip")
    })
}

#[test]
fn expired_deadlines_are_answered_without_dispatch() {
    let backend = GatedBackend::new(prepared_engine());
    let cfg = GatewayConfig::default().with_serving(single_slot_serving());
    let gateway = Gateway::serve(
        Arc::<GatedBackend>::clone(&backend) as Arc<dyn Accelerator>,
        "127.0.0.1:0",
        cfg,
    )
    .expect("gateway binds");
    let addr = gateway.local_addr();
    let settle = Duration::from_millis(150);

    // Occupy every stage in order: A blocks in the worker, B fills the
    // one-deep serving queue, C parks the dispatcher inside a blocking
    // `submit`. D then sits in the admission queue with a deadline that
    // expires long before the dispatcher could reach it.
    let a = spawn_infer(addr, 1, None, 301);
    while backend.infer_calls.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let b = spawn_infer(addr, 2, None, 302);
    std::thread::sleep(settle);
    let c = spawn_infer(addr, 3, None, 303);
    std::thread::sleep(settle);
    let d = spawn_infer(addr, 4, Some(50), 304);

    // Let D's deadline lapse while the pipeline is still wedged, then
    // release the backend.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        gateway.stats().dispatched,
        2,
        "only the worker's and the queued request may be dispatched while the gate is shut"
    );
    backend.open_gate();

    for handle in [a, b, c] {
        match handle.join().expect("client thread") {
            InferReply::Output { .. } => {}
            other => panic!("expected an output, got {other:?}"),
        }
    }
    match d.join().expect("client thread") {
        InferReply::DeadlineExceeded => {}
        other => panic!("expected a deadline reply, got {other:?}"),
    }

    let stats = gateway.stats();
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.deadline_expired, 1, "exactly one request expired in the admission queue");
    assert_eq!(stats.dispatched, 3, "the expired request never reached the serving tier");
    assert_eq!(stats.completed, 3);
    assert_eq!(backend.infer_calls.load(Ordering::SeqCst), 3, "the backend never saw request D");
    gateway.shutdown();
}

#[test]
fn saturated_gateway_sheds_immediately_instead_of_blocking() {
    let backend = GatedBackend::new(prepared_engine());
    let cfg = GatewayConfig::default()
        .with_serving(single_slot_serving())
        .with_admission_capacity(1)
        .with_max_estimated_wait(Duration::from_secs(3600));
    let gateway = Gateway::serve(
        Arc::<GatedBackend>::clone(&backend) as Arc<dyn Accelerator>,
        "127.0.0.1:0",
        cfg,
    )
    .expect("gateway binds");
    let addr = gateway.local_addr();
    let settle = Duration::from_millis(150);

    // Wedge the whole pipeline: worker, serving queue, dispatcher, and
    // the one-slot admission queue.
    let blocked: Vec<_> = (0..4)
        .map(|i| {
            let handle = spawn_infer(addr, 10 + i, None, 400 + i);
            if i == 0 {
                while backend.infer_calls.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
            } else {
                std::thread::sleep(settle);
            }
            handle
        })
        .collect();

    // A full system answers instantly on both protocols — shed, not
    // queued behind the wedge.
    let t0 = Instant::now();
    let mut binary = BinaryClient::connect(addr).expect("binary connect");
    match binary.infer(99, None, &features(500)).expect("wire round-trip") {
        InferReply::Shed => {}
        other => panic!("expected a binary shed, got {other:?}"),
    }
    let mut http = HttpClient::connect(addr).expect("http connect");
    match http.infer(98, None, &features(501)).expect("http round-trip") {
        InferReply::Shed => {}
        other => panic!("expected an HTTP 429, got {other:?}"),
    }
    let shed_latency = t0.elapsed();
    assert!(
        shed_latency < Duration::from_secs(2),
        "shedding must not wait for the wedged pipeline (took {shed_latency:?})"
    );
    assert_eq!(gateway.stats().shed, 2);

    backend.open_gate();
    for handle in blocked {
        match handle.join().expect("client thread") {
            InferReply::Output { .. } => {}
            other => panic!("expected an output after the gate opened, got {other:?}"),
        }
    }
    assert_eq!(gateway.stats().completed, 4);
    gateway.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let backend = GatedBackend::new(prepared_engine());
    let direct_engine = prepared_engine();
    let direct =
        direct_engine.infer(&InferenceRequest::new(features(600)).with_id(77)).expect("prepared");
    let cfg = GatewayConfig::default().with_serving(single_slot_serving());
    let gateway = Gateway::serve(
        Arc::<GatedBackend>::clone(&backend) as Arc<dyn Accelerator>,
        "127.0.0.1:0",
        cfg,
    )
    .expect("gateway binds");
    let addr = gateway.local_addr();

    // One request wedged in the worker, then shut down while it is
    // still running; open the gate shortly after so the drain has
    // something to wait for.
    let client = spawn_infer(addr, 77, None, 600);
    while backend.infer_calls.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let opener = {
        let backend = Arc::clone(&backend);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(250));
            backend.open_gate();
        })
    };
    gateway.shutdown(); // blocks until the in-flight response is flushed

    match client.join().expect("client thread") {
        InferReply::Output { id, output } => {
            assert_eq!(id, 77);
            assert_eq!(output, direct.output, "drained reply must still be bit-identical");
        }
        other => panic!("expected the drained output, got {other:?}"),
    }
    opener.join().expect("opener thread");
}
