//! Trace-tree integrity under sharded load.
//!
//! The contracts pinned here (the tentpole invariants of the
//! hierarchical tracing layer):
//!
//! * a traced sharded inference assembles one tree whose every child
//!   points at a live parent — no orphans, no dangling parent ids;
//! * the per-shard `shard_execute` spans cover all K shards in every
//!   layer;
//! * concurrent traced requests keep their trees disjoint and leak
//!   nothing: once all requests drain, no in-progress assembly
//!   remains;
//! * the tail sampler never exceeds its retention budget, evicting
//!   oldest-first.
//!
//! The trace store is process-global, so every test serialises on one
//! mutex and resets the store before it runs.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, MutexGuard};

use igcn::core::{Accelerator, IGcnEngine, InferenceRequest};
use igcn::gnn::{GnnModel, ModelWeights};
use igcn::graph::generate::HubIslandConfig;
use igcn::graph::SparseFeatures;
use igcn::obs::trace;
use igcn::shard::ShardedEngine;

const DIM: usize = 12;
const SHARDS: usize = 4;
const LAYERS: usize = 2; // GnnModel::gcn is two layers

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn fleet(seed: u64) -> ShardedEngine {
    let g = HubIslandConfig::new(300, 10).noise_fraction(0.03).generate(seed);
    let mut engine = IGcnEngine::builder(g.graph).build().expect("generated graphs are loop-free");
    let model = GnnModel::gcn(DIM, 9, 5);
    let weights = ModelWeights::glorot(&model, seed + 1);
    engine.prepare(&model, &weights).expect("weights match the model");
    ShardedEngine::from_engine(&engine, SHARDS).expect("fleet partitions")
}

/// Runs one traced inference and returns its retained tree.
fn traced_infer(fleet: &ShardedEngine, trace_id: u64, seed: u64) -> trace::RetainedTrace {
    let x = SparseFeatures::random(fleet.graph().num_nodes(), DIM, 0.3, seed);
    let mut root = trace::root_span(trace_id, "request");
    assert!(root.is_live(), "enabled + nonzero id must root a trace");
    root.tag("protocol", "test");
    let request = InferenceRequest::new(x).with_id(trace_id).with_trace(root.ctx());
    fleet.infer(&request).expect("fleet serves");
    root.finish("ok");
    trace::retained_trace(trace_id).expect("zero threshold retains every trace")
}

/// Asserts the structural invariants of one sharded-inference tree.
fn assert_tree_integrity(tree: &trace::RetainedTrace) {
    assert_eq!(tree.status, "ok");
    assert_eq!(tree.truncated_spans, 0, "a single inference must not truncate");
    let ids: BTreeSet<u64> = tree.spans.iter().map(|s| s.span_id).collect();
    assert_eq!(ids.len(), tree.spans.len(), "span ids must be unique");
    let roots = tree.spans.iter().filter(|s| s.parent_id == 0).count();
    assert_eq!(roots, 1, "exactly one root span");
    for span in &tree.spans {
        assert!(
            span.parent_id == 0 || ids.contains(&span.parent_id),
            "span {} ({}) has dangling parent {}",
            span.span_id,
            span.name,
            span.parent_id
        );
    }
    // Per-layer skeleton: each layer_execute parents K shard spans
    // covering every shard index, plus halo exchange and merge.
    let layers: Vec<&trace::SpanRecord> =
        tree.spans.iter().filter(|s| s.name == "layer_execute").collect();
    assert_eq!(layers.len(), LAYERS, "one layer_execute span per layer");
    for layer in &layers {
        let shards: BTreeSet<u64> = tree
            .spans
            .iter()
            .filter(|s| s.name == "shard_execute" && s.parent_id == layer.span_id)
            .filter_map(|s| {
                s.tags.iter().find(|(k, _)| *k == "shard").and_then(|(_, v)| v.parse().ok())
            })
            .collect();
        assert_eq!(
            shards,
            (0..SHARDS as u64).collect::<BTreeSet<_>>(),
            "layer {} must cover all {SHARDS} shards",
            layer.span_id
        );
        for name in ["halo_exchange", "halo_merge"] {
            assert!(
                tree.spans.iter().any(|s| s.name == name && s.parent_id == layer.span_id),
                "layer {} is missing its {name} child",
                layer.span_id
            );
        }
        assert!(
            layer.tags.iter().any(|(k, _)| *k == "waves"),
            "layer spans must carry the island wavefront count"
        );
    }
}

#[test]
fn sharded_inference_assembles_a_complete_tree() {
    let _s = serial();
    igcn::obs::set_enabled(true);
    trace::set_slow_threshold_ns(0);
    trace::set_retention(64);
    trace::reset_traces();

    let fleet = fleet(21);
    let tree = traced_infer(&fleet, 0x7E57_0001, 5);
    assert_tree_integrity(&tree);
    assert_eq!(trace::in_progress_count(), 0, "finished trace must leave assembly");
    igcn::obs::set_enabled(false);
}

#[test]
fn concurrent_traced_requests_stay_disjoint_and_leak_free() {
    let _s = serial();
    igcn::obs::set_enabled(true);
    trace::set_slow_threshold_ns(0);
    trace::set_retention(64);
    trace::reset_traces();

    let fleet = Arc::new(fleet(22));
    let threads = 4u64;
    let per_thread = 5u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || {
                for k in 0..per_thread {
                    let id = 0xC0_0000 + t * 100 + k;
                    let tree = traced_infer(&fleet, id, t * 31 + k);
                    assert_tree_integrity(&tree);
                    assert_eq!(tree.trace_id, id, "trees must not cross-contaminate");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("traced load must not panic");
    }
    assert_eq!(trace::in_progress_count(), 0, "drained load must leak no in-progress traces");
    assert_eq!(trace::retained_count(), (threads * per_thread) as usize);
    igcn::obs::set_enabled(false);
}

#[test]
fn tail_sampler_never_exceeds_its_retention_budget() {
    let _s = serial();
    igcn::obs::set_enabled(true);
    trace::set_slow_threshold_ns(0);
    trace::set_retention(8);
    trace::reset_traces();

    let fleet = fleet(23);
    for k in 0..20u64 {
        let _ = traced_infer(&fleet, 0xBEEF_0000 + k, k);
        assert!(trace::retained_count() <= 8, "retention budget violated mid-load");
    }
    assert_eq!(trace::retained_count(), 8, "ring holds exactly its budget after 20 traces");
    // Oldest evicted first: only the last 8 ids survive.
    for k in 0..20u64 {
        let id = 0xBEEF_0000 + k;
        assert_eq!(trace::retained_trace(id).is_some(), k >= 12, "trace {k} eviction order");
    }
    trace::set_retention(64);
    igcn::obs::set_enabled(false);
}

#[test]
fn fast_requests_are_discarded_and_errored_kept_under_a_real_threshold() {
    let _s = serial();
    igcn::obs::set_enabled(true);
    // A threshold no local inference will cross: fast + ok ⇒ discard.
    trace::set_slow_threshold_ns(u64::MAX);
    trace::set_retention(64);
    trace::reset_traces();

    let fleet = fleet(24);
    let x = SparseFeatures::random(fleet.graph().num_nodes(), DIM, 0.3, 9);
    let root = trace::root_span(0xFA57, "request");
    let request = InferenceRequest::new(x).with_id(1).with_trace(root.ctx());
    fleet.infer(&request).expect("fleet serves");
    root.finish("ok");
    assert!(
        trace::retained_trace(0xFA57).is_none(),
        "a fast ok request must not be retained (flat counters only)"
    );

    // An errored request is kept regardless of speed.
    let failed = trace::root_span(0xFA58, "request");
    failed.finish("failed");
    let kept = trace::retained_trace(0xFA58).expect("errored traces always retain");
    assert_eq!(kept.status, "failed");

    assert_eq!(trace::in_progress_count(), 0);
    trace::set_slow_threshold_ns(0);
    igcn::obs::set_enabled(false);
}
