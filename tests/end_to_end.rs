//! Integration: islandized inference equals the software reference on
//! every dataset stand-in and every model family, through both the
//! direct engine API and the unified Accelerator serving trait.

use igcn::core::accel::{Accelerator, InferenceRequest};
use igcn::core::IGcnEngine;
use igcn::gnn::{GnnKind, GnnModel, ModelConfig, ModelWeights};
use igcn::graph::datasets::Dataset;

fn scale_for(dataset: Dataset) -> f64 {
    match dataset {
        Dataset::Cora | Dataset::Citeseer => 0.15,
        Dataset::Pubmed => 0.03,
        Dataset::Nell => 0.01,
        Dataset::Reddit => 0.002,
    }
}

#[test]
fn all_datasets_all_models_match_reference() {
    for dataset in Dataset::ALL {
        let data = dataset.generate_scaled(scale_for(dataset), 42);
        let engine = IGcnEngine::builder(data.graph.clone())
            .build()
            .expect("dataset stand-ins are loop-free");
        engine.partition().check_invariants(&data.graph).expect("partition invariants");
        for kind in [GnnKind::Gcn, GnnKind::GraphSage, GnnKind::Gin] {
            // Tiny hidden widths keep the reference pass affordable
            // (feature widths are the published ones, up to 61k for NELL).
            let spec = data.spec;
            let model = match kind {
                GnnKind::Gcn => GnnModel::gcn(spec.feature_dim, 8, spec.num_classes.min(8)),
                GnnKind::GraphSage => {
                    GnnModel::graphsage(spec.feature_dim, 8, spec.num_classes.min(8))
                }
                GnnKind::Gin => GnnModel::gin(spec.feature_dim, 8, spec.num_classes.min(8), 0.1),
            };
            let weights = ModelWeights::glorot(&model, 7);
            let diff = engine.verify(&data.features, &model, &weights).unwrap();
            // Compare relative to the output magnitude: GIN's unnormalised
            // sum aggregation over hundreds of neighbors (dense Reddit
            // stand-in) produces large values whose FP reassociation noise
            // is large in absolute terms but tiny relatively.
            let reference =
                igcn::gnn::reference_forward(&data.graph, &data.features, &model, &weights);
            let scale = reference.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
            assert!(
                diff / scale < 1e-4,
                "{dataset}/{kind}: islandized output diverges by {diff} (relative {})",
                diff / scale
            );
        }
    }
}

#[test]
fn serving_trait_matches_direct_engine_on_datasets() {
    for dataset in [Dataset::Cora, Dataset::Citeseer] {
        let data = dataset.generate_scaled(scale_for(dataset), 11);
        let spec = data.spec;
        let model = GnnModel::gcn(spec.feature_dim, 8, spec.num_classes.min(8));
        let weights = ModelWeights::glorot(&model, 3);
        let mut engine = IGcnEngine::builder(data.graph.clone()).build().unwrap();
        engine.prepare(&model, &weights).unwrap();

        let response =
            engine.infer(&InferenceRequest::new(data.features.clone()).with_id(1)).unwrap();
        let (direct, _) = engine.run(&data.features, &model, &weights).unwrap();
        assert_eq!(response.output, direct, "{dataset}: trait path diverged");
        assert!(response.report.aggregation_pruning_rate > 0.0);

        let report = engine.report(&InferenceRequest::new(data.features.clone())).unwrap();
        assert_eq!(report.total_ops, response.report.total_ops);
        assert_eq!(report.offchip_bytes, response.report.offchip_bytes);
    }
}

#[test]
fn pruning_rates_in_paper_band_on_all_datasets() {
    // Figure 10 reports 29–46% aggregation pruning; synthetic stand-ins
    // should land in a generous band around it, and overall pruning must
    // be positive but bounded by the aggregation share.
    for dataset in Dataset::ALL {
        let data = dataset.generate_scaled(scale_for(dataset) * 2.0, 11);
        let engine = IGcnEngine::builder(data.graph.clone()).build().unwrap();
        let model = GnnModel::for_dataset(dataset, GnnKind::Gcn, ModelConfig::Algo);
        let stats = engine.account(&data.features, &model).unwrap();
        let agg = stats.aggregation_pruning_rate();
        assert!(
            (0.05..0.7).contains(&agg),
            "{dataset}: aggregation pruning {agg} outside plausible band"
        );
        let overall = stats.overall_pruning_rate();
        assert!(overall > 0.0 && overall < agg, "{dataset}: overall {overall} vs agg {agg}");
    }
}

#[test]
fn hub_fraction_small_on_structured_graphs() {
    // "hubs are normally a small fraction of the entire graph" (§3.1.1).
    for dataset in [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed] {
        let data = dataset.generate_scaled(0.1, 5);
        let engine = IGcnEngine::builder(data.graph).build().unwrap();
        let frac = engine.partition().hub_fraction();
        assert!(frac < 0.4, "{dataset}: hub fraction {frac} too large");
    }
}

#[test]
fn multi_layer_configs_run_hy_width() {
    let data = Dataset::Cora.generate_scaled(0.1, 3);
    let engine = IGcnEngine::builder(data.graph).build().unwrap();
    let model = GnnModel::gcn(data.spec.feature_dim, 128, data.spec.num_classes);
    let weights = ModelWeights::glorot(&model, 9);
    let (out, stats) = engine.run(&data.features, &model, &weights).unwrap();
    assert_eq!(out.cols(), data.spec.num_classes);
    assert_eq!(stats.layers.len(), 2);
    assert_eq!(stats.layers[0].feature_width, 128);
}
