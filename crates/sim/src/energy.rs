//! The energy model behind Table 2's energy-efficiency column.

use serde::{Deserialize, Serialize};

/// Energy constants for the FPGA platform.
///
/// Calibrated to the ~100 W board envelope implied by Table 2
/// (e.g. Cora GCN-algo: 1.3 µs at 7.1·10⁶ graphs/kJ ⇒ ≈108 W): fp32 MAC
/// on a 14 nm FPGA ≈ 12.5 pJ, DDR4 access ≈ 35 pJ/byte at the pins plus
/// controller, ~30 W static for the full shell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per scalar MAC/add (joules).
    pub op_energy_j: f64,
    /// Energy per off-chip byte (joules).
    pub dram_energy_j_per_byte: f64,
    /// Energy per on-chip SRAM byte touched (joules).
    pub sram_energy_j_per_byte: f64,
    /// Static (leakage + shell) power in watts.
    pub static_power_w: f64,
}

impl EnergyModel {
    /// The calibrated FPGA model described above.
    pub fn fpga_default() -> Self {
        EnergyModel {
            op_energy_j: 12.5e-12,
            dram_energy_j_per_byte: 35e-12,
            sram_energy_j_per_byte: 1.2e-12,
            static_power_w: 30.0,
        }
    }

    /// Total energy of a run in joules.
    ///
    /// `sram_bytes` may be approximated as a small multiple of the op
    /// count (each op reads two operands and writes one word through
    /// on-chip buffers).
    pub fn energy_joules(&self, ops: u64, dram_bytes: u64, sram_bytes: u64, seconds: f64) -> f64 {
        ops as f64 * self.op_energy_j
            + dram_bytes as f64 * self.dram_energy_j_per_byte
            + sram_bytes as f64 * self.sram_energy_j_per_byte
            + seconds * self.static_power_w
    }

    /// Table 2's energy-efficiency metric: graphs per kilojoule.
    pub fn graphs_per_kilojoule(&self, energy_j: f64) -> f64 {
        if energy_j <= 0.0 {
            0.0
        } else {
            1.0 / (energy_j / 1000.0)
        }
    }

    /// Implied average power of a run (watts).
    pub fn average_power_w(&self, energy_j: f64, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            energy_j / seconds
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::fpga_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_components_add() {
        let m = EnergyModel {
            op_energy_j: 1.0,
            dram_energy_j_per_byte: 2.0,
            sram_energy_j_per_byte: 0.5,
            static_power_w: 10.0,
        };
        let e = m.energy_joules(3, 4, 2, 0.5);
        assert!((e - (3.0 + 8.0 + 1.0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn graphs_per_kj_inverse() {
        let m = EnergyModel::fpga_default();
        let ee = m.graphs_per_kilojoule(1e-4);
        assert!((ee - 1e7).abs() / 1e7 < 1e-9);
        assert_eq!(m.graphs_per_kilojoule(0.0), 0.0);
    }

    #[test]
    fn default_power_envelope_plausible() {
        // A fully-busy second: 4096 MACs at 330 MHz plus full DDR4 traffic
        // should land in the 40–150 W band the calibration targets.
        let m = EnergyModel::fpga_default();
        let ops = (4096u64) * 330_000_000;
        let bytes = 76_800_000_000u64;
        let sram = ops * 12;
        let e = m.energy_joules(ops, bytes, sram, 1.0);
        let p = m.average_power_w(e, 1.0);
        assert!(p > 40.0 && p < 150.0, "implied power {p} W outside the calibration band");
    }
}
