//! The simulated-backend adapter: any dataflow-level simulator behind
//! the unified serving trait.
//!
//! The platform models in this workspace ([`crate::IGcnAccelerator`]
//! and the AWB-GCN / HyGCN / SIGMA / CPU-GPU models of
//! `igcn-baselines`) implement [`GcnAccelerator`] — a stateless
//! "simulate one inference on this graph" interface that the figure
//! harnesses iterate. [`SimBackend`] lifts any of them into the owned,
//! graph-bound [`Accelerator`] serving API: it pins the graph, installs
//! a model via `prepare`, answers `infer` with the numerically exact
//! reference output (the dataflow models differ in *schedule*, not
//! arithmetic) plus the simulator's cost report, and answers `report`
//! from the timing model alone.

use std::sync::Arc;

use igcn_core::accel::{
    validate_request, validate_weights, Accelerator, ExecReport, InferenceRequest,
    InferenceResponse,
};
use igcn_core::CoreError;
use igcn_gnn::{reference_forward, GnnModel, ModelWeights};
use igcn_graph::CsrGraph;

use crate::report::{GcnAccelerator, SimReport};

impl SimReport {
    /// Converts a simulator report into the backend-agnostic
    /// [`ExecReport`].
    pub fn to_exec_report(&self) -> ExecReport {
        ExecReport {
            backend: self.name.clone(),
            total_ops: self.total_ops,
            offchip_bytes: self.offchip_bytes,
            cycles: self.cycles,
            latency_s: self.latency_s,
            energy_j: self.energy_j,
            aggregation_pruning_rate: 0.0,
            worker_busy_cycles: Vec::new(),
            utilisation: self.worker_utilisation,
        }
    }
}

/// A [`GcnAccelerator`] simulator bound to one graph and served through
/// the [`Accelerator`] trait.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use igcn_core::accel::{Accelerator, InferenceRequest};
/// use igcn_gnn::{GnnModel, ModelWeights};
/// use igcn_graph::generate::HubIslandConfig;
/// use igcn_graph::SparseFeatures;
/// use igcn_sim::{HardwareConfig, IGcnAccelerator, SimBackend};
///
/// let g = HubIslandConfig::new(200, 8).generate(1);
/// let mut backend = SimBackend::new(
///     IGcnAccelerator::new(HardwareConfig::paper_default()),
///     Arc::new(g.graph),
/// );
/// let model = GnnModel::gcn(16, 8, 3);
/// let weights = ModelWeights::glorot(&model, 2);
/// backend.prepare(&model, &weights)?;
/// let report = backend.report(&InferenceRequest::new(
///     SparseFeatures::random(200, 16, 0.2, 3),
/// ))?;
/// assert!(report.latency_s > 0.0);
/// # Ok::<(), igcn_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimBackend<S> {
    sim: S,
    graph: Arc<CsrGraph>,
    prepared: Option<(GnnModel, ModelWeights)>,
}

impl<S: GcnAccelerator> SimBackend<S> {
    /// Binds `sim` to `graph`.
    pub fn new(sim: S, graph: Arc<CsrGraph>) -> Self {
        SimBackend { sim, graph, prepared: None }
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &S {
        &self.sim
    }

    fn prepared(&self) -> Result<&(GnnModel, ModelWeights), CoreError> {
        self.prepared.as_ref().ok_or_else(|| CoreError::NotPrepared { backend: self.sim.name() })
    }
}

impl<S: GcnAccelerator + Send + Sync> Accelerator for SimBackend<S> {
    fn name(&self) -> String {
        self.sim.name()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn prepare(&mut self, model: &GnnModel, weights: &ModelWeights) -> Result<(), CoreError> {
        validate_weights(model, weights)?;
        self.prepared = Some((model.clone(), weights.clone()));
        Ok(())
    }

    fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
        let (model, weights) = self.prepared()?;
        validate_request(&self.graph, model, request)?;
        let output = reference_forward(&self.graph, &request.features, model, weights);
        let report = self.sim.simulate(&self.graph, &request.features, model).to_exec_report();
        Ok(InferenceResponse { id: request.id, output, report })
    }

    fn report(&self, request: &InferenceRequest) -> Result<ExecReport, CoreError> {
        let (model, _) = self.prepared()?;
        validate_request(&self.graph, model, request)?;
        Ok(self.sim.simulate(&self.graph, &request.features, model).to_exec_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HardwareConfig, IGcnAccelerator};
    use igcn_graph::generate::HubIslandConfig;
    use igcn_graph::SparseFeatures;

    fn backend() -> SimBackend<IGcnAccelerator> {
        let g = HubIslandConfig::new(150, 6).noise_fraction(0.0).generate(2);
        SimBackend::new(IGcnAccelerator::new(HardwareConfig::paper_default()), Arc::new(g.graph))
    }

    #[test]
    fn infer_yields_reference_output_and_sim_report() {
        let mut b = backend();
        let model = GnnModel::gcn(12, 8, 4);
        let weights = ModelWeights::glorot(&model, 3);
        b.prepare(&model, &weights).unwrap();
        let x = SparseFeatures::random(150, 12, 0.3, 4);
        let resp = b.infer(&InferenceRequest::new(x.clone()).with_id(5)).unwrap();
        assert_eq!(resp.id, 5);
        assert_eq!(resp.output, reference_forward(b.graph(), &x, &model, &weights));
        assert_eq!(resp.report.backend, "I-GCN");
        assert!(resp.report.latency_s > 0.0);
        assert!(resp.report.cycles > 0);
    }

    #[test]
    fn report_requires_prepare() {
        let b = backend();
        let x = SparseFeatures::random(150, 12, 0.3, 4);
        assert!(matches!(b.report(&InferenceRequest::new(x)), Err(CoreError::NotPrepared { .. })));
    }

    #[test]
    fn sim_backend_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimBackend<IGcnAccelerator>>();
    }
}
