//! The I-GCN accelerator timing model.

use igcn_core::{ConsumerConfig, ExecStats, IslandizationConfig};
use igcn_gnn::GnnModel;
use igcn_graph::{CsrGraph, SparseFeatures};

use crate::compute::MacArray;
use crate::energy::EnergyModel;
use crate::hw::HardwareConfig;
use crate::memory::{AccessPattern, DramModel};
use crate::report::{GcnAccelerator, SimReport};

/// Timing/energy model of the full I-GCN accelerator.
///
/// Latency composition (§3.1.1): the Island Locator streams the graph and
/// emits islands *while* the Island Consumer processes them ("I-GCN
/// overlaps graph restructuring and graph processing"), and the stored
/// islands are replayed for deeper layers, so the locator overlaps the
/// whole inference:
///
/// ```text
/// total   = max(locator, Σ layer_i)
/// layer_i = max(compute_i, memory_i)            (decoupled access/execute)
/// locator = Σ_rounds max(hub_detect_r, bfs_r / scan_words)
/// ```
///
/// Within a round, Algorithm 1 runs hub detection, task generation and
/// TP-BFS as concurrent threads (hence the `max`); each TP-BFS engine
/// consumes [`HardwareConfig::bfs_scan_words`] adjacency words per cycle.
///
/// Statistics come from `igcn-core`'s exact accounting
/// (`igcn_core::exec::account_islandized`); islandization itself executes for real.
///
/// # Example
///
/// ```
/// use igcn_gnn::GnnModel;
/// use igcn_graph::generate::HubIslandConfig;
/// use igcn_graph::SparseFeatures;
/// use igcn_sim::{GcnAccelerator, HardwareConfig, IGcnAccelerator};
///
/// let g = HubIslandConfig::new(300, 12).generate(1);
/// let x = SparseFeatures::random(300, 32, 0.1, 2);
/// let model = GnnModel::gcn(32, 16, 4);
/// let acc = IGcnAccelerator::new(HardwareConfig::paper_default());
/// let report = acc.simulate(&g.graph, &x, &model);
/// assert!(report.latency_s > 0.0);
/// assert!(report.offchip_bytes > 0);
/// ```
#[derive(Debug, Clone)]
pub struct IGcnAccelerator {
    hw: HardwareConfig,
    energy: EnergyModel,
    island_cfg: IslandizationConfig,
    consumer_cfg: ConsumerConfig,
}

impl IGcnAccelerator {
    /// Creates the model with default islandization parameters derived
    /// from the hardware configuration (P1/P2 lanes and PE count).
    pub fn new(hw: HardwareConfig) -> Self {
        let island_cfg =
            IslandizationConfig::default().with_engines(hw.tpbfs_engines).with_lanes(hw.hub_lanes);
        let consumer_cfg = ConsumerConfig::default().with_pes(hw.num_pes);
        IGcnAccelerator { hw, energy: EnergyModel::fpga_default(), island_cfg, consumer_cfg }
    }

    /// Overrides the islandization configuration.
    pub fn with_island_config(mut self, cfg: IslandizationConfig) -> Self {
        self.island_cfg = cfg;
        self
    }

    /// Overrides the consumer configuration.
    pub fn with_consumer_config(mut self, cfg: ConsumerConfig) -> Self {
        self.consumer_cfg = cfg;
        self
    }

    /// Overrides the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The hardware configuration.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// Produces a report from already-computed execution statistics
    /// (exposed so callers that ran the engine themselves avoid a
    /// second islandization pass).
    pub fn report_from_stats(&self, stats: &ExecStats) -> SimReport {
        let macs = MacArray::new(&self.hw);
        let dram = DramModel::new(&self.hw);

        // Intra-round thread concurrency + multi-word adjacency beats.
        let scan = self.hw.bfs_scan_words.max(1) as u64;
        let locator_cycles: u64 = stats
            .locator
            .rounds
            .iter()
            .map(|r| r.hub_detect_cycles.max(r.bfs_cycles.div_ceil(scan)))
            .sum();
        let mut layer_cycles: Vec<u64> = Vec::with_capacity(stats.layers.len());
        let mut compute_cycles_total = 0u64;
        let mut memory_cycles_total = 0u64;
        let mut total_ops = 0u64;
        let mut total_bytes = 0u64;
        // Weights and hub caches claim ~20% of SRAM; the rest can hold
        // resident graph data, which does not cost streaming time
        // (§4.6.1's "can be partially or even completely stored on-chip").
        let resident_budget = (self.hw.sram_bytes as f64 * 0.8) as u64;
        for layer in &stats.layers {
            let ops = layer.total_scalar_ops();
            let compute = macs.cycles_for(ops);
            // Island streams are sequential by construction — that is the
            // entire point of islandization.
            let streaming = crate::memory::effective_streaming_bytes(
                layer.traffic.total_bytes(),
                resident_budget,
            );
            let mem_s = dram.transfer_seconds(streaming, AccessPattern::Sequential);
            let memory = self.hw.seconds_to_cycles(mem_s);
            layer_cycles.push(compute.max(memory));
            compute_cycles_total += compute;
            memory_cycles_total += memory;
            total_ops += ops;
            total_bytes += layer.traffic.total_bytes();
        }
        // The locator overlaps the whole consumer run (islands stream to
        // PEs as found; stored islands replay for deeper layers).
        let consumer_total: u64 = layer_cycles.iter().sum();
        let cycles = locator_cycles.max(consumer_total);
        let latency_s = self.hw.cycles_to_seconds(cycles);

        // Each scalar op moves ~3 words through on-chip buffers.
        let sram_bytes = total_ops * 12;
        let energy_j = self.energy.energy_joules(total_ops, total_bytes, sram_bytes, latency_s);
        SimReport {
            name: "I-GCN".to_string(),
            latency_s,
            cycles,
            compute_cycles: compute_cycles_total,
            memory_cycles: memory_cycles_total,
            locator_cycles,
            offchip_bytes: total_bytes,
            total_ops,
            energy_j,
            graphs_per_kilojoule: self.energy.graphs_per_kilojoule(energy_j),
            // Island-schedule occupancy over the consumer's PE count:
            // how evenly island work units spread across the PEs.
            worker_utilisation: stats.occupancy.utilisation(),
        }
    }
}

impl GcnAccelerator for IGcnAccelerator {
    fn name(&self) -> String {
        "I-GCN".to_string()
    }

    fn simulate(&self, graph: &CsrGraph, features: &SparseFeatures, model: &GnnModel) -> SimReport {
        // The borrowed accounting path: islandize + account without
        // copying the graph into an owned engine.
        let stats = igcn_core::exec::account_islandized(
            graph,
            self.island_cfg,
            self.consumer_cfg,
            features,
            model,
        )
        .expect("graph must be loop-free and feature shapes must match");
        self.report_from_stats(&stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::HubIslandConfig;

    fn simulate(n: usize) -> SimReport {
        let g = HubIslandConfig::new(n, (n / 25).max(2)).generate(3);
        let x = SparseFeatures::random(n, 64, 0.05, 4);
        let model = GnnModel::gcn(64, 16, 4);
        IGcnAccelerator::new(HardwareConfig::paper_default()).simulate(&g.graph, &x, &model)
    }

    #[test]
    fn report_fields_populated() {
        let r = simulate(400);
        assert_eq!(r.name, "I-GCN");
        assert!(r.latency_s > 0.0);
        assert!(r.cycles > 0);
        assert!(r.total_ops > 0);
        assert!(r.energy_j > 0.0);
        assert!(r.graphs_per_kilojoule > 0.0);
        // PE occupancy of the island schedule: a real distribution, not
        // the no-model placeholder, and still a valid fraction.
        assert!(r.worker_utilisation > 0.0 && r.worker_utilisation <= 1.0);
        assert!(r.worker_utilisation < 1.0, "island sizes vary; PEs cannot be perfectly even");
    }

    #[test]
    fn bigger_graphs_take_longer() {
        let small = simulate(200);
        let large = simulate(1600);
        assert!(large.latency_s > small.latency_s);
        assert!(large.offchip_bytes > small.offchip_bytes);
    }

    #[test]
    fn locator_overlaps_first_layer() {
        // Total cycles must never exceed locator + all layer cycles, and
        // must be at least the locator alone.
        let r = simulate(400);
        assert!(r.cycles >= r.locator_cycles);
    }

    #[test]
    fn microsecond_scale_for_small_graphs() {
        // The headline claim: µs-level inference for citation-scale
        // graphs.
        let r = simulate(400);
        assert!(
            r.latency_us() < 1000.0,
            "small graph latency should be well under a millisecond, got {} µs",
            r.latency_us()
        );
    }
}
