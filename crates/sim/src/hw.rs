//! Hardware configuration shared by all accelerator models.

use serde::{Deserialize, Serialize};

/// Parameters of the modelled hardware platform.
///
/// Defaults reproduce the paper's evaluation setup (§4.6, "Fairness of
/// evaluation"): 4096 floating-point MACs at 330 MHz on a Stratix 10 SX
/// with quad-channel DDR4 (the board AWB-GCN used), 64 TP-BFS engines and
/// 16 hub-detection lanes.
///
/// # Example
///
/// ```
/// use igcn_sim::HardwareConfig;
///
/// let hw = HardwareConfig::paper_default();
/// assert_eq!(hw.num_macs, 4096);
/// assert_eq!(hw.frequency_hz, 330_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Number of MAC units (shared by combination and aggregation).
    pub num_macs: usize,
    /// Core clock frequency in Hz.
    pub frequency_hz: u64,
    /// Peak off-chip bandwidth in bytes per second.
    pub dram_bandwidth: f64,
    /// Effective DRAM efficiency for the mostly-sequential streams of
    /// island processing (0–1).
    pub dram_efficiency: f64,
    /// On-chip SRAM capacity in bytes (Stratix 10 SX 2800: ~28.6 MB of
    /// M20K).
    pub sram_bytes: u64,
    /// Number of TP-BFS engines (`P2`).
    pub tpbfs_engines: usize,
    /// Number of hub-detection FIFO lanes (`P1`).
    pub hub_lanes: usize,
    /// Number of consumer PEs.
    pub num_pes: usize,
    /// Sustained MAC utilization of the consumer pipeline (I-GCN's
    /// fine-grained island pipelining keeps this near 1).
    pub mac_utilization: f64,
    /// Adjacency words a TP-BFS engine consumes per cycle: a 256-bit
    /// memory beat delivers eight u32 neighbor IDs; 4 is a conservative
    /// sustained rate after alignment losses.
    pub bfs_scan_words: usize,
}

impl HardwareConfig {
    /// The configuration the paper evaluates.
    pub fn paper_default() -> Self {
        HardwareConfig {
            num_macs: 4096,
            frequency_hz: 330_000_000,
            dram_bandwidth: 76.8e9, // 4 × DDR4-2400 channels
            dram_efficiency: 0.80,
            sram_bytes: 28 << 20,
            tpbfs_engines: 64,
            hub_lanes: 16,
            num_pes: 8,
            mac_utilization: 0.95,
            bfs_scan_words: 4,
        }
    }

    /// Seconds per clock cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.frequency_hz as f64
    }

    /// Effective off-chip bandwidth in bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.dram_bandwidth * self.dram_efficiency
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_time()
    }

    /// Converts seconds to (rounded-up) cycles.
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.frequency_hz as f64).ceil() as u64
    }
}

impl Default for HardwareConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let hw = HardwareConfig::paper_default();
        assert_eq!(hw.num_macs, 4096);
        assert_eq!(hw.tpbfs_engines, 64);
        assert!((hw.cycle_time() - 3.0303e-9).abs() < 1e-12);
    }

    #[test]
    fn cycle_second_roundtrip() {
        let hw = HardwareConfig::paper_default();
        let s = hw.cycles_to_seconds(330_000_000);
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(hw.seconds_to_cycles(1.0), 330_000_000);
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let hw = HardwareConfig::paper_default();
        assert!(hw.effective_bandwidth() < hw.dram_bandwidth);
    }
}
