//! Simulation reports and the accelerator trait shared with the baselines.

use serde::{Deserialize, Serialize};

use igcn_gnn::GnnModel;
use igcn_graph::{CsrGraph, SparseFeatures};

/// The result of simulating one inference on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Platform name (e.g. `"I-GCN"`, `"AWB-GCN"`).
    pub name: String,
    /// End-to-end inference latency in seconds.
    pub latency_s: f64,
    /// Total clock cycles (0 for platforms modelled without a clock).
    pub cycles: u64,
    /// Cycles attributable to compute.
    pub compute_cycles: u64,
    /// Cycles attributable to off-chip transfers (overlap-adjusted
    /// portions may exceed `cycles`).
    pub memory_cycles: u64,
    /// Cycles spent by the Island Locator (0 for baselines).
    pub locator_cycles: u64,
    /// Total off-chip traffic in bytes.
    pub offchip_bytes: u64,
    /// Scalar operations executed.
    pub total_ops: u64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Table 2's energy-efficiency metric.
    pub graphs_per_kilojoule: f64,
    /// Parallel worker/PE utilisation in `[0, 1]` of the modelled
    /// island schedule (1.0 for platforms without an occupancy model).
    pub worker_utilisation: f64,
}

impl SimReport {
    /// Latency in microseconds (the unit Table 2 reports).
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }

    /// Speedup of `self` over `other` (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &SimReport) -> f64 {
        other.latency_s / self.latency_s
    }
}

/// A platform that can run GCN inference under simulation.
///
/// Implemented by [`crate::IGcnAccelerator`] and by every baseline in
/// `igcn-baselines` (AWB-GCN, HyGCN, SIGMA, CPU/GPU platform models), so
/// the cross-platform harnesses of Figure 14 iterate one trait object
/// list.
pub trait GcnAccelerator {
    /// Platform name as reported in result tables.
    fn name(&self) -> String;

    /// Simulates one full-model inference.
    fn simulate(&self, graph: &CsrGraph, features: &SparseFeatures, model: &GnnModel) -> SimReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latency: f64) -> SimReport {
        SimReport {
            name: "x".to_string(),
            latency_s: latency,
            cycles: 0,
            compute_cycles: 0,
            memory_cycles: 0,
            locator_cycles: 0,
            offchip_bytes: 0,
            total_ops: 0,
            energy_j: 0.0,
            graphs_per_kilojoule: 0.0,
            worker_utilisation: 1.0,
        }
    }

    #[test]
    fn latency_units() {
        assert!((report(1.3e-6).latency_us() - 1.3).abs() < 1e-9);
    }

    #[test]
    fn speedup_direction() {
        let fast = report(1e-6);
        let slow = report(1e-3);
        assert!((fast.speedup_over(&slow) - 1000.0).abs() < 1e-6);
        assert!(slow.speedup_over(&fast) < 1.0);
    }
}
