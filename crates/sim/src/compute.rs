//! The MAC-array compute model.

use serde::{Deserialize, Serialize};

use crate::hw::HardwareConfig;

/// Roofline model of the shared MAC array: `cycles = ops / (macs · util)`.
///
/// The same array executes combination MACs and aggregation vector
/// adds/subtracts (the PE "reuses the same MAC units", §3.3.1), so a
/// single op pool is the right abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacArray {
    num_macs: usize,
    utilization: f64,
}

impl MacArray {
    /// Creates the array from a hardware configuration.
    pub fn new(hw: &HardwareConfig) -> Self {
        MacArray { num_macs: hw.num_macs, utilization: hw.mac_utilization }
    }

    /// Creates the array with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_macs == 0` or utilization is not in `(0, 1]`.
    pub fn with_params(num_macs: usize, utilization: f64) -> Self {
        assert!(num_macs > 0, "at least one MAC is required");
        assert!(utilization > 0.0 && utilization <= 1.0, "utilization must be in (0, 1]");
        MacArray { num_macs, utilization }
    }

    /// Cycles to execute `ops` scalar operations.
    pub fn cycles_for(&self, ops: u64) -> u64 {
        let effective = self.num_macs as f64 * self.utilization;
        (ops as f64 / effective).ceil() as u64
    }

    /// Peak scalar operations per cycle (after utilization derating).
    pub fn ops_per_cycle(&self) -> f64 {
        self.num_macs as f64 * self.utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_round_up() {
        let m = MacArray::with_params(100, 1.0);
        assert_eq!(m.cycles_for(100), 1);
        assert_eq!(m.cycles_for(101), 2);
        assert_eq!(m.cycles_for(0), 0);
    }

    #[test]
    fn utilization_derates() {
        let m = MacArray::with_params(100, 0.5);
        assert_eq!(m.cycles_for(100), 2);
        assert!((m.ops_per_cycle() - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn invalid_utilization_panics() {
        let _ = MacArray::with_params(10, 1.5);
    }
}
