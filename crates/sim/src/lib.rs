//! Cycle-approximate hardware model of the I-GCN accelerator.
//!
//! The paper evaluates I-GCN on a Stratix 10 SX FPGA with 4096 fp32 MAC
//! units at 330 MHz and 64 TP-BFS engines. This crate converts the exact
//! operation/traffic statistics produced by `igcn-core` into time, energy
//! and area under that hardware model:
//!
//! * [`hw::HardwareConfig`] — MACs, frequency, DRAM bandwidth, SRAM
//!   capacity (defaults match §4.6's "fairness of evaluation" setup);
//! * [`compute::MacArray`] / [`memory::DramModel`] — the two roofline
//!   resources; phase latency is `max(compute, memory)` with the Island
//!   Locator overlapped against the first layer (§3.1.1);
//! * [`energy::EnergyModel`] — per-op/per-byte/static energy constants
//!   calibrated to the ~100 W board envelope implied by Table 2;
//! * [`area::AreaModel`] — per-component ALM costs reproducing the
//!   Figure 11 breakdown (Island Locator ≈ 34%, Island Consumer ≈ 66%);
//! * [`accelerator::IGcnAccelerator`] — ties everything together and
//!   implements the [`report::GcnAccelerator`] trait shared with the
//!   baseline simulators in `igcn-baselines`;
//! * [`backend::SimBackend`] — binds any [`report::GcnAccelerator`] to a
//!   graph and serves it through the unified
//!   [`igcn_core::accel::Accelerator`] trait.
//!
//! Absolute numbers are model outputs, not testbed measurements; the
//! reproduction targets are the *shapes* (who wins, by what factor, where
//! crossovers fall). See EXPERIMENTS.md for paper-vs-model tables.

pub mod accelerator;
pub mod area;
pub mod backend;
pub mod compute;
pub mod energy;
pub mod hw;
pub mod memory;
pub mod report;

pub use accelerator::IGcnAccelerator;
pub use area::{AreaBreakdown, AreaModel};
pub use backend::SimBackend;
pub use compute::MacArray;
pub use energy::EnergyModel;
pub use hw::HardwareConfig;
pub use memory::DramModel;
pub use report::{GcnAccelerator, SimReport};
