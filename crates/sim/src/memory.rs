//! The off-chip memory model.

use serde::{Deserialize, Serialize};

use crate::hw::HardwareConfig;

/// Access-pattern class of a transfer, determining achievable bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Long unit-stride bursts (feature streaming of an island, weight
    /// loads): near-peak bandwidth.
    Sequential,
    /// Short scattered bursts (random row gathers of PULL aggregation,
    /// scattered partial-result updates of PUSH): heavily derated.
    Random,
}

/// Bandwidth model with per-pattern efficiency.
///
/// The locality argument of the whole paper lives here: islandization
/// turns the random gathers of PULL/PUSH into sequential island-sized
/// streams, so I-GCN's traffic rides the `Sequential` curve while the
/// baselines pay the `Random` derating for part of theirs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    peak: f64,
    sequential_efficiency: f64,
    random_efficiency: f64,
}

impl DramModel {
    /// Creates the model from a hardware configuration; random accesses
    /// achieve a quarter of the configured sequential efficiency
    /// (DRAM row-buffer misses on short bursts).
    pub fn new(hw: &HardwareConfig) -> Self {
        DramModel {
            peak: hw.dram_bandwidth,
            sequential_efficiency: hw.dram_efficiency,
            random_efficiency: hw.dram_efficiency * 0.25,
        }
    }

    /// Creates the model with explicit efficiencies.
    ///
    /// # Panics
    ///
    /// Panics if efficiencies are not in `(0, 1]` or peak is not positive.
    pub fn with_params(peak: f64, sequential: f64, random: f64) -> Self {
        assert!(peak > 0.0, "peak bandwidth must be positive");
        assert!(sequential > 0.0 && sequential <= 1.0, "sequential efficiency in (0, 1]");
        assert!(random > 0.0 && random <= 1.0, "random efficiency in (0, 1]");
        DramModel { peak, sequential_efficiency: sequential, random_efficiency: random }
    }

    /// Seconds to transfer `bytes` with the given pattern.
    pub fn transfer_seconds(&self, bytes: u64, pattern: AccessPattern) -> f64 {
        let eff = match pattern {
            AccessPattern::Sequential => self.sequential_efficiency,
            AccessPattern::Random => self.random_efficiency,
        };
        bytes as f64 / (self.peak * eff)
    }

    /// Achievable bandwidth (bytes/second) for a pattern.
    pub fn bandwidth(&self, pattern: AccessPattern) -> f64 {
        match pattern {
            AccessPattern::Sequential => self.peak * self.sequential_efficiency,
            AccessPattern::Random => self.peak * self.random_efficiency,
        }
    }
}

/// Bytes that must actually stream from DRAM during compute, after
/// subtracting what fits in the on-chip residency budget.
///
/// §4.6.1 counts off-chip accesses "assuming that the adjacency matrix and
/// input feature matrix are all stored off-chip", but notes that in
/// practice "these matrices can be partially or even completely stored
/// on-chip". Latency models therefore charge only the *excess* over the
/// residency budget; traffic reports still use the full assumption.
pub fn effective_streaming_bytes(total_bytes: u64, resident_budget: u64) -> u64 {
    total_bytes.saturating_sub(resident_budget)
}

/// A tally of off-chip transfers split by access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficTally {
    /// Bytes moved in sequential streams.
    pub sequential_bytes: u64,
    /// Bytes moved in scattered accesses.
    pub random_bytes: u64,
}

impl TrafficTally {
    /// Adds a sequential transfer.
    pub fn sequential(&mut self, bytes: u64) -> &mut Self {
        self.sequential_bytes += bytes;
        self
    }

    /// Adds a random transfer.
    pub fn random(&mut self, bytes: u64) -> &mut Self {
        self.random_bytes += bytes;
        self
    }

    /// Total bytes either way.
    pub fn total(&self) -> u64 {
        self.sequential_bytes + self.random_bytes
    }

    /// Seconds to drain the tally under `model`.
    pub fn seconds(&self, model: &DramModel) -> f64 {
        model.transfer_seconds(self.sequential_bytes, AccessPattern::Sequential)
            + model.transfer_seconds(self.random_bytes, AccessPattern::Random)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_faster_than_random() {
        let hw = HardwareConfig::paper_default();
        let m = DramModel::new(&hw);
        let s = m.transfer_seconds(1 << 20, AccessPattern::Sequential);
        let r = m.transfer_seconds(1 << 20, AccessPattern::Random);
        assert!(r > 3.0 * s, "random must be far slower, got {s} vs {r}");
    }

    #[test]
    fn transfer_time_linear() {
        let m = DramModel::with_params(100.0, 1.0, 0.5);
        assert!((m.transfer_seconds(200, AccessPattern::Sequential) - 2.0).abs() < 1e-12);
        assert!((m.transfer_seconds(100, AccessPattern::Random) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tally_accumulates_and_times() {
        let m = DramModel::with_params(100.0, 1.0, 0.5);
        let mut t = TrafficTally::default();
        t.sequential(100).random(50);
        assert_eq!(t.total(), 150);
        assert!((t.seconds(&m) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "peak bandwidth")]
    fn invalid_peak_panics() {
        let _ = DramModel::with_params(0.0, 0.5, 0.5);
    }
}
