//! The ALM area model behind Figure 11.
//!
//! The paper normalises LUT/FF/DSP usage to Adaptive Logic Modules (ALMs)
//! and reports the breakdown of an I-GCN with 4K MACs and 64 TP-BFS
//! engines: Island Locator ≈ 34% of the accelerator, Island Consumer
//! ≈ 66%. The per-component constants below are calibrated so the default
//! configuration reproduces that split while remaining parametric in
//! P1/P2/#MACs/#PEs for ablations.

use serde::{Deserialize, Serialize};

use crate::hw::HardwareConfig;

/// Per-component ALM cost constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// ALMs per fp32 MAC (DSP slices normalised to ALMs).
    pub alms_per_mac: f64,
    /// ALMs per TP-BFS engine (FSM + Local Visited Table + island bitmap
    /// buffer + query logic).
    pub alms_per_tpbfs_engine: f64,
    /// ALMs per hub-detection lane (loop-back FIFO + island filter +
    /// comparator).
    pub alms_per_hub_lane: f64,
    /// ALMs per TP-BFS task queue (one per engine).
    pub alms_per_task_queue: f64,
    /// Fixed ALMs of the island-node tables (PR-INT/CR-INT).
    pub island_table_alms: f64,
    /// ALMs per PE for the island collector, scheduler and CASE FSMs.
    pub alms_per_pe_control: f64,
    /// ALMs per PE for its DHUB-PRC bank and XW-cache port logic.
    pub alms_per_pe_cache: f64,
    /// ALMs per ring-network switch (one per PE).
    pub alms_per_ring_switch: f64,
}

impl AreaModel {
    /// The calibrated Stratix-10 model.
    pub fn fpga_default() -> Self {
        AreaModel {
            alms_per_mac: 118.0,
            alms_per_tpbfs_engine: 4200.0,
            alms_per_hub_lane: 2100.0,
            alms_per_task_queue: 950.0,
            island_table_alms: 16_000.0,
            alms_per_pe_control: 5200.0,
            alms_per_pe_cache: 17_500.0,
            alms_per_ring_switch: 2600.0,
        }
    }

    /// Computes the breakdown for a hardware configuration.
    pub fn breakdown(&self, hw: &HardwareConfig) -> AreaBreakdown {
        let hub_detector = self.alms_per_hub_lane * hw.hub_lanes as f64;
        let tpbfs = self.alms_per_tpbfs_engine * hw.tpbfs_engines as f64;
        let task_queues = self.alms_per_task_queue * hw.tpbfs_engines as f64;
        let tables = self.island_table_alms;
        let macs = self.alms_per_mac * hw.num_macs as f64;
        let pe_control = self.alms_per_pe_control * hw.num_pes as f64;
        let pe_caches = self.alms_per_pe_cache * hw.num_pes as f64;
        let ring = self.alms_per_ring_switch * hw.num_pes as f64;
        AreaBreakdown {
            hub_detector_alms: hub_detector,
            tpbfs_engine_alms: tpbfs,
            task_queue_alms: task_queues,
            island_table_alms: tables,
            mac_array_alms: macs,
            pe_control_alms: pe_control,
            pe_cache_alms: pe_caches,
            ring_network_alms: ring,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::fpga_default()
    }
}

/// ALM usage per architectural component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Hub Detector: degree FIFOs, island filters, comparators.
    pub hub_detector_alms: f64,
    /// TP-BFS engines.
    pub tpbfs_engine_alms: f64,
    /// TP-BFS task queues.
    pub task_queue_alms: f64,
    /// PR-INT / CR-INT island-node tables.
    pub island_table_alms: f64,
    /// The MAC array (DSPs normalised to ALMs).
    pub mac_array_alms: f64,
    /// Island Collector, scheduler and CASE FSMs.
    pub pe_control_alms: f64,
    /// DHUB-PRC banks and HUB XW cache port logic.
    pub pe_cache_alms: f64,
    /// Ring-network switches with in-network reduction.
    pub ring_network_alms: f64,
}

impl AreaBreakdown {
    /// ALMs of the Island Locator (hub detector + TP-BFS + queues +
    /// tables).
    pub fn locator_alms(&self) -> f64 {
        self.hub_detector_alms
            + self.tpbfs_engine_alms
            + self.task_queue_alms
            + self.island_table_alms
    }

    /// ALMs of the Island Consumer (MACs + PE control + caches + ring).
    pub fn consumer_alms(&self) -> f64 {
        self.mac_array_alms + self.pe_control_alms + self.pe_cache_alms + self.ring_network_alms
    }

    /// Total accelerator ALMs.
    pub fn total_alms(&self) -> f64 {
        self.locator_alms() + self.consumer_alms()
    }

    /// Island Locator share of the accelerator (Figure 11 reports ≈ 0.34).
    pub fn locator_fraction(&self) -> f64 {
        self.locator_alms() / self.total_alms()
    }

    /// `(component name, ALMs)` rows for table rendering.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("Hub Detector (FIFOs + filters)", self.hub_detector_alms),
            ("TP-BFS engines", self.tpbfs_engine_alms),
            ("TP-BFS task queues", self.task_queue_alms),
            ("Island node tables (PR/CR-INT)", self.island_table_alms),
            ("MAC array", self.mac_array_alms),
            ("PE control + scheduler", self.pe_control_alms),
            ("DHUB-PRC + XW caches", self.pe_cache_alms),
            ("Ring network", self.ring_network_alms),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_split_matches_figure_11() {
        let b = AreaModel::fpga_default().breakdown(&HardwareConfig::paper_default());
        let frac = b.locator_fraction();
        assert!(
            (frac - 0.34).abs() < 0.05,
            "locator fraction {frac} should be near the paper's 34%"
        );
    }

    #[test]
    fn components_sum() {
        let b = AreaModel::fpga_default().breakdown(&HardwareConfig::paper_default());
        let sum: f64 = b.rows().iter().map(|(_, a)| a).sum();
        assert!((sum - b.total_alms()).abs() < 1e-6);
    }

    #[test]
    fn more_engines_grow_locator_share() {
        let model = AreaModel::fpga_default();
        let hw = HardwareConfig::paper_default();
        let small = model.breakdown(&HardwareConfig { tpbfs_engines: 16, ..hw });
        let large = model.breakdown(&HardwareConfig { tpbfs_engines: 128, ..hw });
        assert!(large.locator_fraction() > small.locator_fraction());
    }
}
