//! Deterministic weight initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use igcn_linalg::DenseMatrix;

use crate::model::GnnModel;

/// The weight matrices of a model, one per layer.
///
/// Initialised with Glorot-uniform, seeded for reproducibility — inference
/// accelerators do not train, they consume fixed weights, so any
/// well-scaled deterministic initialisation exercises the same compute.
///
/// # Example
///
/// ```
/// use igcn_gnn::{GnnModel, ModelWeights};
///
/// let model = GnnModel::gcn(64, 16, 4);
/// let w = ModelWeights::glorot(&model, 7);
/// assert_eq!(w.layer(0).rows(), 64);
/// assert_eq!(w.layer(1).cols(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWeights {
    layers: Vec<DenseMatrix>,
}

impl ModelWeights {
    /// Glorot-uniform initialisation: each entry uniform in `±sqrt(6/(fan_in+fan_out))`.
    pub fn glorot(model: &GnnModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = model
            .layers()
            .iter()
            .map(|layer| {
                let bound = (6.0 / (layer.in_dim + layer.out_dim) as f64).sqrt() as f32;
                let data = (0..layer.in_dim * layer.out_dim)
                    .map(|_| rng.gen_range(-bound..bound))
                    .collect();
                DenseMatrix::from_vec(layer.in_dim, layer.out_dim, data)
            })
            .collect();
        ModelWeights { layers }
    }

    /// Builds weights from explicit matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not chain (`layer i` columns must equal
    /// `layer i+1` rows).
    pub fn from_matrices(layers: Vec<DenseMatrix>) -> Self {
        for pair in layers.windows(2) {
            assert_eq!(pair[0].cols(), pair[1].rows(), "weight shapes do not chain between layers");
        }
        ModelWeights { layers }
    }

    /// Weight matrix of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer(&self, i: usize) -> &DenseMatrix {
        &self.layers[i]
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter count.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|w| w.rows() * w.cols()).sum()
    }

    /// Total bytes occupied by parameters (fp32).
    pub fn parameter_bytes(&self) -> usize {
        self.num_parameters() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_shapes_follow_model() {
        let m = GnnModel::gin(32, 16, 4, 0.1);
        let w = ModelWeights::glorot(&m, 1);
        assert_eq!(w.num_layers(), 3);
        assert_eq!(w.layer(0).rows(), 32);
        assert_eq!(w.layer(0).cols(), 16);
        assert_eq!(w.layer(2).cols(), 4);
        assert_eq!(w.num_parameters(), 32 * 16 + 16 * 16 + 16 * 4);
    }

    #[test]
    fn glorot_deterministic() {
        let m = GnnModel::gcn(8, 4, 2);
        assert_eq!(ModelWeights::glorot(&m, 5), ModelWeights::glorot(&m, 5));
        assert_ne!(ModelWeights::glorot(&m, 5), ModelWeights::glorot(&m, 6));
    }

    #[test]
    fn glorot_is_bounded() {
        let m = GnnModel::gcn(10, 10, 10);
        let w = ModelWeights::glorot(&m, 2);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(w.layer(0).as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn mismatched_chain_panics() {
        let _ =
            ModelWeights::from_matrices(vec![DenseMatrix::zeros(4, 3), DenseMatrix::zeros(5, 2)]);
    }

    #[test]
    fn parameter_bytes() {
        let m = GnnModel::gcn(4, 2, 2);
        let w = ModelWeights::glorot(&m, 0);
        assert_eq!(w.parameter_bytes(), (4 * 2 + 2 * 2) * 4);
    }
}
