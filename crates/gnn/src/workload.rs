//! Exact workload accounting for a (graph, model) pair.
//!
//! Every latency, traffic and energy model in the reproduction starts from
//! these counts. The combination of layer 0 is *sparsity-aware*
//! (`nnz(X) · hidden` MACs, not `n · f · hidden`), matching how AWB-GCN and
//! I-GCN exploit input-feature sparsity — this is what makes the
//! aggregation phase account for ~23% of total operations on average
//! (§4.3), rather than a negligible sliver.

use serde::{Deserialize, Serialize};

use igcn_graph::{CsrGraph, SparseFeatures};

use crate::model::GnnModel;

/// Operation and byte counts for one GraphCONV layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// MACs in the combination `X·W` (sparsity-aware on layer 0).
    pub combination_macs: u64,
    /// Scalar accumulate ops in the aggregation `Ã·(XW)`, counting the
    /// implicit self-loop: `(directed_edges + n) · out_dim`.
    pub aggregation_ops: u64,
    /// Bytes of input features read from off-chip (fp32 values plus u32
    /// indices for the sparse layer-0 input).
    pub feature_bytes: u64,
    /// Bytes of adjacency read (u32 column indices + row pointers).
    pub adjacency_bytes: u64,
    /// Bytes of weights read.
    pub weight_bytes: u64,
    /// Bytes of output features written.
    pub output_bytes: u64,
}

impl LayerWorkload {
    /// Total scalar operations.
    pub fn total_ops(&self) -> u64 {
        self.combination_macs + self.aggregation_ops
    }

    /// Total off-chip bytes assuming single-touch transfers.
    pub fn total_bytes(&self) -> u64 {
        self.feature_bytes + self.adjacency_bytes + self.weight_bytes + self.output_bytes
    }
}

/// Workload of a full model on a graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelWorkload {
    layers: Vec<LayerWorkload>,
}

impl ModelWorkload {
    /// Computes the workload of `model` over `graph` with input `features`.
    pub fn compute(graph: &CsrGraph, features: &SparseFeatures, model: &GnnModel) -> Self {
        const F32: u64 = 4;
        const U32: u64 = 4;
        let n = graph.num_nodes() as u64;
        let edges = graph.num_directed_edges() as u64;
        let mut layers = Vec::with_capacity(model.num_layers());
        for (i, layer) in model.layers().iter().enumerate() {
            let out = layer.out_dim as u64;
            let in_dim = layer.in_dim as u64;
            let combination_macs =
                if i == 0 { features.nnz() as u64 * out } else { n * in_dim * out };
            let aggregation_ops = (edges + n) * out;
            let feature_bytes =
                if i == 0 { features.nnz() as u64 * (F32 + U32) } else { n * in_dim * F32 };
            let adjacency_bytes = edges * U32 + (n + 1) * U32;
            let weight_bytes = in_dim * out * F32;
            let output_bytes = n * out * F32;
            layers.push(LayerWorkload {
                combination_macs,
                aggregation_ops,
                feature_bytes,
                adjacency_bytes,
                weight_bytes,
                output_bytes,
            });
        }
        ModelWorkload { layers }
    }

    /// Per-layer workloads.
    pub fn layers(&self) -> &[LayerWorkload] {
        &self.layers
    }

    /// Total MACs in all combinations.
    pub fn combination_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.combination_macs).sum()
    }

    /// Total aggregation ops.
    pub fn aggregation_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.aggregation_ops).sum()
    }

    /// Total scalar operations.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.total_ops()).sum()
    }

    /// Total single-touch off-chip bytes.
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.total_bytes()).sum()
    }

    /// Fraction of all operations spent in aggregation — the paper reports
    /// ~23% on average for combination-first execution (§4.3).
    pub fn aggregation_fraction(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            self.aggregation_ops() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::datasets::Dataset;

    #[test]
    fn layer0_is_sparsity_aware() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let x = SparseFeatures::from_rows(
            4,
            100,
            vec![vec![(0, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)], vec![(3, 1.0)]],
        );
        let model = GnnModel::gcn(100, 8, 2);
        let w = ModelWorkload::compute(&g, &x, &model);
        // 4 nnz * 8 out channels, NOT 4*100*8.
        assert_eq!(w.layers()[0].combination_macs, 4 * 8);
        // Layer 1 is dense: 4 nodes * 8 in * 2 out.
        assert_eq!(w.layers()[1].combination_macs, 4 * 8 * 2);
    }

    #[test]
    fn aggregation_counts_self_loops() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1)]).unwrap();
        let x = SparseFeatures::random(3, 4, 0.5, 1);
        let model = GnnModel::gcn(4, 2, 2);
        let w = ModelWorkload::compute(&g, &x, &model);
        // (2 directed edges + 3 self) * 2 out channels.
        assert_eq!(w.layers()[0].aggregation_ops, 5 * 2);
    }

    #[test]
    fn cora_aggregation_fraction_near_paper() {
        // The paper says aggregation ≈ 23% of ops on average for
        // combination-first; Cora-like statistics should land in a
        // 5%–50% band (it varies per dataset).
        let d = Dataset::Cora.generate_scaled(0.25, 3);
        let model = GnnModel::for_dataset(
            Dataset::Cora,
            crate::model::GnnKind::Gcn,
            crate::model::ModelConfig::Algo,
        );
        let w = ModelWorkload::compute(&d.graph, &d.features, &model);
        let frac = w.aggregation_fraction();
        assert!(frac > 0.05 && frac < 0.5, "aggregation fraction {frac}");
    }

    #[test]
    fn totals_are_sums() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let x = SparseFeatures::random(3, 4, 0.5, 1);
        let model = GnnModel::gcn(4, 2, 2);
        let w = ModelWorkload::compute(&g, &x, &model);
        assert_eq!(w.total_ops(), w.combination_macs() + w.aggregation_ops());
        assert!(w.total_bytes() > 0);
    }
}
