//! Ground-truth software forward pass.

use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_linalg::spmm::{pull_row_wise, sparse_sparse_dense};
use igcn_linalg::{CsrMatrix, DenseMatrix};

use crate::model::GnnModel;
use crate::weights::ModelWeights;

/// Runs the model forward on plain software kernels:
/// `X_{l+1} = σ(Ã · (X_l · W_l))` with the explicit normalised adjacency.
///
/// This is the correctness oracle every accelerated execution (islandized
/// or baseline) is verified against. The layer order is combination-first
/// (`Ã × (X·W)`), matching §2.2.1.
///
/// # Panics
///
/// Panics if the feature width does not match the first layer, or the
/// weight shapes do not match the model.
///
/// # Example
///
/// ```
/// use igcn_graph::{CsrGraph, SparseFeatures};
/// use igcn_gnn::{reference_forward, GnnModel, ModelWeights};
///
/// let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let x = SparseFeatures::random(4, 8, 0.5, 3);
/// let model = GnnModel::gcn(8, 4, 2);
/// let w = ModelWeights::glorot(&model, 1);
/// let out = reference_forward(&g, &x, &model, &w);
/// assert_eq!(out.rows(), 4);
/// assert_eq!(out.cols(), 2);
/// ```
pub fn reference_forward(
    graph: &CsrGraph,
    features: &SparseFeatures,
    model: &GnnModel,
    weights: &ModelWeights,
) -> DenseMatrix {
    assert_eq!(
        features.num_cols(),
        model.layers()[0].in_dim,
        "feature width does not match the first layer"
    );
    assert_eq!(weights.num_layers(), model.num_layers(), "weight/layer count mismatch");
    let norm = model.normalization(graph);
    let a_tilde = norm.to_explicit_matrix(graph);

    let mut current: Option<DenseMatrix> = None;
    for (i, layer) in model.layers().iter().enumerate() {
        // Combination first: XW.
        let xw = match &current {
            None => {
                let x = CsrMatrix::from(features);
                sparse_sparse_dense(&x, &dense_to_csr(weights.layer(i))).0
            }
            Some(x) => x.matmul(weights.layer(i)),
        };
        // Aggregation: Ã × (XW).
        let (mut aggregated, _) = pull_row_wise(&a_tilde, &xw);
        aggregated.map_inplace(|v| layer.activation.apply(v));
        current = Some(aggregated);
    }
    current.expect("models have at least one layer")
}

/// Per-layer intermediate results of the reference pass, exposed so tests
/// can compare accelerated executions layer by layer
/// (`C-INTERMEDIATE`-style API: callers avoid re-running the full model to
/// inspect one layer).
pub fn reference_forward_layers(
    graph: &CsrGraph,
    features: &SparseFeatures,
    model: &GnnModel,
    weights: &ModelWeights,
) -> Vec<DenseMatrix> {
    let norm = model.normalization(graph);
    let a_tilde = norm.to_explicit_matrix(graph);
    let mut outputs = Vec::with_capacity(model.num_layers());
    let mut current: Option<DenseMatrix> = None;
    for (i, layer) in model.layers().iter().enumerate() {
        let xw = match &current {
            None => {
                let x = CsrMatrix::from(features);
                sparse_sparse_dense(&x, &dense_to_csr(weights.layer(i))).0
            }
            Some(x) => x.matmul(weights.layer(i)),
        };
        let (mut aggregated, _) = pull_row_wise(&a_tilde, &xw);
        aggregated.map_inplace(|v| layer.activation.apply(v));
        outputs.push(aggregated.clone());
        current = Some(aggregated);
    }
    outputs
}

fn dense_to_csr(m: &DenseMatrix) -> CsrMatrix {
    let mut triplets = Vec::new();
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            let v = m.get(r, c);
            if v != 0.0 {
                triplets.push((r as u32, c as u32, v));
            }
        }
    }
    CsrMatrix::from_triplets(m.rows(), m.cols(), &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::NodeId;

    fn setup() -> (CsrGraph, SparseFeatures, GnnModel, ModelWeights) {
        let g =
            CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let x = SparseFeatures::random(5, 6, 0.5, 11);
        let model = GnnModel::gcn(6, 4, 3);
        let w = ModelWeights::glorot(&model, 2);
        (g, x, model, w)
    }

    #[test]
    fn output_shape() {
        let (g, x, model, w) = setup();
        let out = reference_forward(&g, &x, &model, &w);
        assert_eq!(out.rows(), 5);
        assert_eq!(out.cols(), 3);
    }

    #[test]
    fn layers_api_last_equals_forward() {
        let (g, x, model, w) = setup();
        let out = reference_forward(&g, &x, &model, &w);
        let layers = reference_forward_layers(&g, &x, &model, &w);
        assert_eq!(layers.len(), 2);
        assert!(layers[1].max_abs_diff(&out) < 1e-7);
    }

    #[test]
    fn relu_applied_between_layers() {
        let (g, x, model, w) = setup();
        let layers = reference_forward_layers(&g, &x, &model, &w);
        assert!(layers[0].as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn isolated_node_gets_only_self_contribution() {
        // Node 2 is isolated; with symmetric normalisation its output is
        // its own combination scaled by 1/(0+1) = 1.
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1)]).unwrap();
        let x = SparseFeatures::from_rows(
            3,
            2,
            vec![vec![(0, 1.0)], vec![(1, 1.0)], vec![(0, 2.0), (1, 2.0)]],
        );
        let model = GnnModel::gcn(2, 2, 2);
        let w = ModelWeights::from_matrices(vec![
            DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
        ]);
        let out = reference_forward_layers(&g, &x, &model, &w);
        // Layer 0, node 2: XW row = [2, 2]; Ã_22 = 1; ReLU([2,2]) = [2,2].
        assert!((out[0].get(2, 0) - 2.0).abs() < 1e-6);
        assert!((out[0].get(2, 1) - 2.0).abs() < 1e-6);
        let _ = NodeId::new(2);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_feature_width_panics() {
        let (g, _, model, w) = setup();
        let bad = SparseFeatures::random(5, 9, 0.5, 1);
        let _ = reference_forward(&g, &bad, &model, &w);
    }

    #[test]
    fn graphsage_and_gin_run() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let x = SparseFeatures::random(4, 5, 0.6, 4);
        for model in [GnnModel::graphsage(5, 4, 2), GnnModel::gin(5, 4, 2, 0.1)] {
            let w = ModelWeights::glorot(&model, 3);
            let out = reference_forward(&g, &x, &model, &w);
            assert_eq!(out.rows(), 4);
            assert_eq!(out.cols(), 2);
        }
    }
}
