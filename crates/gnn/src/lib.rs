//! GNN models for the I-GCN reproduction.
//!
//! The paper evaluates three models — GCN, GraphSage and GIN — whose
//! forward propagation all reduce to Equation 1, `X' = σ(Ã X W)`, with
//! different normalisations of `Ã`. This crate provides:
//!
//! * [`model::GnnModel`] — layer configurations for the three models in
//!   both the "algo" setting (hidden widths from the original algorithm
//!   papers) and the "Hy" setting (HyGCN's 128 hidden channels);
//! * [`weights::ModelWeights`] — deterministic Glorot-initialised weights;
//! * [`reference`] — a plain software forward pass used as ground truth for
//!   the islandized execution;
//! * [`workload`] — exact operation/traffic accounting per layer, the input
//!   to every latency model and to the Figure 10 overall-pruning numbers.

pub mod model;
pub mod reference;
pub mod weights;
pub mod workload;

pub use model::{Activation, GnnKind, GnnModel, LayerConfig, ModelConfig};
pub use reference::{reference_forward, reference_forward_layers};
pub use weights::ModelWeights;
pub use workload::{LayerWorkload, ModelWorkload};
