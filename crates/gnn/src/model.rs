//! Model and layer configurations.

use serde::{Deserialize, Serialize};

use igcn_graph::datasets::Dataset;
use igcn_graph::CsrGraph;
use igcn_linalg::GcnNormalization;

/// Non-linearity applied after a GraphCONV layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// No activation (used on the final layer; classification margins are
    /// evaluated pre-softmax).
    None,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::None => v,
        }
    }
}

/// Which GNN family a model belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GnnKind {
    /// Graph Convolutional Network (Kipf & Welling), symmetric
    /// normalisation, 2 layers.
    Gcn,
    /// GraphSage with mean aggregator, 2 layers.
    GraphSage,
    /// Graph Isomorphism Network, sum aggregator with `1+ε` self weight,
    /// 3 layers.
    Gin,
}

impl GnnKind {
    /// Short identifier (`"gcn"`, `"gs"`, `"gin"`).
    pub fn id(self) -> &'static str {
        match self {
            GnnKind::Gcn => "gcn",
            GnnKind::GraphSage => "gs",
            GnnKind::Gin => "gin",
        }
    }
}

impl std::fmt::Display for GnnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            GnnKind::Gcn => "GCN",
            GnnKind::GraphSage => "GraphSage",
            GnnKind::Gin => "GIN",
        };
        f.write_str(name)
    }
}

/// Hidden-width convention, following §4.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelConfig {
    /// Hidden widths from the original algorithm papers ("GCN-algo",
    /// "GS-algo"): 16 for the citation graphs, 64 for NELL, 128 for Reddit.
    Algo,
    /// HyGCN's uniform configuration: 128 hidden channels for all datasets
    /// ("GCN-Hy", "GS-Hy").
    Hy,
}

impl ModelConfig {
    /// Hidden width for `dataset` under this convention.
    pub fn hidden_dim(self, dataset: Dataset) -> usize {
        match self {
            ModelConfig::Algo => dataset.spec().hidden_algo,
            ModelConfig::Hy => 128,
        }
    }

    /// Suffix used in the paper's labels (`"algo"` / `"Hy"`).
    pub fn id(self) -> &'static str {
        match self {
            ModelConfig::Algo => "algo",
            ModelConfig::Hy => "Hy",
        }
    }
}

/// One GraphCONV layer: a combination `X·W` from `in_dim` to `out_dim`
/// channels followed by aggregation and an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Output feature width.
    pub out_dim: usize,
    /// Post-layer non-linearity.
    pub activation: Activation,
}

/// A GNN model: a stack of GraphCONV layers plus the aggregation
/// normalisation of its family.
///
/// # Example
///
/// ```
/// use igcn_gnn::GnnModel;
///
/// let m = GnnModel::gcn(1433, 16, 7);
/// assert_eq!(m.num_layers(), 2);
/// assert_eq!(m.layers()[0].out_dim, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnModel {
    kind: GnnKind,
    layers: Vec<LayerConfig>,
    epsilon: f32,
}

impl GnnModel {
    /// Two-layer GCN: `input_dim → hidden → num_classes`.
    pub fn gcn(input_dim: usize, hidden: usize, num_classes: usize) -> Self {
        GnnModel {
            kind: GnnKind::Gcn,
            layers: vec![
                LayerConfig { in_dim: input_dim, out_dim: hidden, activation: Activation::Relu },
                LayerConfig { in_dim: hidden, out_dim: num_classes, activation: Activation::None },
            ],
            epsilon: 0.0,
        }
    }

    /// Two-layer GraphSage (mean aggregator).
    pub fn graphsage(input_dim: usize, hidden: usize, num_classes: usize) -> Self {
        GnnModel { kind: GnnKind::GraphSage, ..GnnModel::gcn(input_dim, hidden, num_classes) }
    }

    /// Three-layer GIN with self-weight `1 + epsilon`.
    pub fn gin(input_dim: usize, hidden: usize, num_classes: usize, epsilon: f32) -> Self {
        GnnModel {
            kind: GnnKind::Gin,
            layers: vec![
                LayerConfig { in_dim: input_dim, out_dim: hidden, activation: Activation::Relu },
                LayerConfig { in_dim: hidden, out_dim: hidden, activation: Activation::Relu },
                LayerConfig { in_dim: hidden, out_dim: num_classes, activation: Activation::None },
            ],
            epsilon,
        }
    }

    /// Builds a model from an explicit layer stack — the
    /// deserialisation twin of [`GnnModel::layers`], for stores that
    /// persist prepared models.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or the layer widths do not chain
    /// (`layer i` output width must equal `layer i+1` input width) —
    /// mirror of [`ModelWeights::from_matrices`]'s contract; validate
    /// upstream when the stack comes from untrusted bytes.
    ///
    /// [`ModelWeights::from_matrices`]: crate::ModelWeights::from_matrices
    pub fn from_layers(kind: GnnKind, layers: Vec<LayerConfig>, epsilon: f32) -> Self {
        assert!(!layers.is_empty(), "models have at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].out_dim, pair[1].in_dim, "layer widths do not chain between layers");
        }
        GnnModel { kind, layers, epsilon }
    }

    /// Builds the model the paper evaluates for `(dataset, kind, config)`:
    /// layer dims from the dataset spec and the hidden-width convention.
    pub fn for_dataset(dataset: Dataset, kind: GnnKind, config: ModelConfig) -> Self {
        let spec = dataset.spec();
        let hidden = config.hidden_dim(dataset);
        match kind {
            GnnKind::Gcn => GnnModel::gcn(spec.feature_dim, hidden, spec.num_classes),
            GnnKind::GraphSage => GnnModel::graphsage(spec.feature_dim, hidden, spec.num_classes),
            GnnKind::Gin => GnnModel::gin(spec.feature_dim, hidden, spec.num_classes, 0.1),
        }
    }

    /// The model family.
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// The layer stack.
    pub fn layers(&self) -> &[LayerConfig] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// GIN's ε (0 for other families).
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// The aggregation normalisation this family applies over `graph`.
    pub fn normalization(&self, graph: &CsrGraph) -> GcnNormalization {
        match self.kind {
            GnnKind::Gcn => GcnNormalization::symmetric(graph),
            GnnKind::GraphSage => GcnNormalization::mean(graph),
            GnnKind::Gin => GcnNormalization::gin(graph, self.epsilon),
        }
    }

    /// Paper-style label, e.g. `"GCN-algo"`.
    pub fn label(&self, config: ModelConfig) -> String {
        format!("{}-{}", self.kind, config.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_shape() {
        let m = GnnModel::gcn(100, 16, 7);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.layers()[0].in_dim, 100);
        assert_eq!(m.layers()[1].out_dim, 7);
        assert_eq!(m.layers()[0].activation, Activation::Relu);
        assert_eq!(m.layers()[1].activation, Activation::None);
    }

    #[test]
    fn gin_has_three_layers() {
        let m = GnnModel::gin(100, 64, 5, 0.1);
        assert_eq!(m.num_layers(), 3);
        assert!((m.epsilon() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn for_dataset_uses_spec() {
        let m = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
        assert_eq!(m.layers()[0].in_dim, 1433);
        assert_eq!(m.layers()[0].out_dim, 16);
        assert_eq!(m.layers()[1].out_dim, 7);
        let m = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Hy);
        assert_eq!(m.layers()[0].out_dim, 128);
    }

    #[test]
    fn labels_match_paper() {
        let m = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
        assert_eq!(m.label(ModelConfig::Algo), "GCN-algo");
        let m = GnnModel::for_dataset(Dataset::Cora, GnnKind::GraphSage, ModelConfig::Hy);
        assert_eq!(m.label(ModelConfig::Hy), "GraphSage-Hy");
    }

    #[test]
    fn activation_apply() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::None.apply(-3.0), -3.0);
    }

    #[test]
    fn normalization_family_dispatch() {
        use igcn_graph::CsrGraph;
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let gcn = GnnModel::gcn(4, 4, 2).normalization(&g);
        let gin = GnnModel::gin(4, 4, 2, 0.5).normalization(&g);
        assert!((gin.self_weight() - 1.5).abs() < 1e-6);
        assert!(gcn.self_weight() == 1.0);
    }
}
