//! Multi-worker serving front-end over any [`Accelerator`] backend.
//!
//! The engine of `igcn-core` is `Send + Sync` and answers
//! `infer`/`infer_batch` from shared references; this crate adds the
//! piece a serving deployment needs on top: a [`ServingEngine`] that
//! puts a **bounded request queue** and a **worker pool** in front of
//! the backend.
//!
//! * [`ServingEngine::submit`] enqueues one request (blocking when the
//!   queue is at capacity — backpressure, not unbounded memory) and
//!   returns a [`Ticket`] the caller later [`Ticket::wait`]s on.
//! * Workers **micro-batch**: each drains up to
//!   [`ServingConfig::max_batch`] queued requests — waiting up to
//!   [`ServingConfig::max_wait`] for stragglers — and answers them with
//!   one [`Accelerator::infer_batch`] call, amortising the backend's
//!   per-call setup exactly like the batched hardware interface.
//! * [`ServingEngine::shutdown`] (and `Drop`) is **graceful**: no new
//!   submissions are accepted, queued requests still complete, workers
//!   join.
//!
//! Combined with `igcn-core`'s `ExecConfig`, this gives two composable
//! parallelism axes: worker-level concurrency across micro-batches
//! here, and island/request fan-out inside the backend.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use igcn_core::accel::{Accelerator, InferenceRequest};
//! use igcn_core::IGcnEngine;
//! use igcn_gnn::{GnnModel, ModelWeights};
//! use igcn_graph::generate::HubIslandConfig;
//! use igcn_graph::SparseFeatures;
//! use igcn_serve::{ServingConfig, ServingEngine};
//!
//! let g = HubIslandConfig::new(200, 8).noise_fraction(0.0).generate(4);
//! let mut engine = IGcnEngine::builder(g.graph).build()?;
//! let model = GnnModel::gcn(16, 8, 3);
//! let weights = ModelWeights::glorot(&model, 2);
//! engine.prepare(&model, &weights)?;
//!
//! let serving = ServingEngine::start(Arc::new(engine), ServingConfig::default());
//! let ticket = serving
//!     .submit(InferenceRequest::new(SparseFeatures::random(200, 16, 0.3, 1)).with_id(7))
//!     .expect("accepting");
//! let response = ticket.wait().expect("backend answers");
//! assert_eq!(response.id, 7);
//! serving.shutdown();
//! # Ok::<(), igcn_core::CoreError>(())
//! ```

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use igcn_core::accel::{Accelerator, InferenceRequest, InferenceResponse};
use igcn_core::{BackendHealth, CoreError};

/// Configuration of the serving front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Worker threads pulling micro-batches off the queue.
    pub num_workers: usize,
    /// Bounded queue capacity; [`ServingEngine::submit`] blocks when the
    /// queue is full (backpressure).
    pub queue_capacity: usize,
    /// Largest micro-batch a worker hands to one `infer_batch` call.
    pub max_batch: usize,
    /// How long a worker holding a non-full micro-batch waits for more
    /// requests before running it anyway.
    pub max_wait: Duration,
    /// Consecutive failed micro-batches (backend errors or contained
    /// panics, with no success in between) after which
    /// [`ServingEngine::health`] reports the tier degraded — the
    /// wedged-backend detector. One successful micro-batch resets the
    /// streak; `0` disables the threshold.
    pub failure_threshold: u32,
}

impl Default for ServingConfig {
    /// Two workers, a 64-deep queue, micro-batches of up to 8 collected
    /// for at most 2 ms.
    fn default() -> Self {
        ServingConfig {
            num_workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            failure_threshold: 3,
        }
    }
}

/// When the serving engine invokes its checkpoint hook (see
/// [`ServingEngine::start_with_checkpoint`]).
///
/// Periodicity is counted in executed micro-batches rather than wall
/// time: it needs no timer thread, it is deterministic under test, and
/// a node that serves nothing writes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Invoke the hook every N executed micro-batches (0 disables the
    /// periodic trigger).
    pub every_batches: u64,
    /// Invoke the hook once more during graceful shutdown, after the
    /// queue has drained and the workers have joined.
    pub on_shutdown: bool,
}

impl Default for CheckpointPolicy {
    /// Shutdown-only checkpointing.
    fn default() -> Self {
        CheckpointPolicy { every_batches: 0, on_shutdown: true }
    }
}

impl CheckpointPolicy {
    /// Sets the periodic trigger.
    pub fn with_every_batches(mut self, every: u64) -> Self {
        self.every_batches = every;
        self
    }

    /// Enables or disables the shutdown trigger.
    pub fn with_on_shutdown(mut self, on: bool) -> Self {
        self.on_shutdown = on;
        self
    }
}

/// The checkpoint callback: typically captures an
/// `Arc<igcn_core::IGcnEngine>` and an `igcn-store` handle and writes a
/// snapshot. Runs on a worker thread (periodic) or the shutting-down
/// thread; panics are contained and counted as failed attempts.
pub type CheckpointHook = Arc<dyn Fn() + Send + Sync>;

impl ServingConfig {
    /// Sets the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        self.num_workers = workers;
        self
    }

    /// Sets the bounded queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.queue_capacity = capacity;
        self
    }

    /// Sets the micro-batch size cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "micro-batches need at least one request");
        self.max_batch = max_batch;
        self
    }

    /// Sets the micro-batch collection window.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the consecutive-failure threshold for
    /// [`ServingEngine::health`] (0 disables it).
    pub fn with_failure_threshold(mut self, threshold: u32) -> Self {
        self.failure_threshold = threshold;
        self
    }
}

/// Errors of the serving front-end.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The backend rejected the request (shape mismatch, not prepared…).
    Backend(CoreError),
    /// The engine is shutting down and accepts no new submissions.
    ShuttingDown,
    /// The backend *panicked* while executing the micro-batch this
    /// request rode in; the worker caught the unwind and stayed alive.
    BackendPanicked,
    /// [`ServingEngine::try_submit`] found the queue at capacity — the
    /// non-blocking admission path's backpressure signal (the gateway
    /// turns it into an HTTP 429 / binary `Shed` frame).
    QueueFull,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backend(e) => write!(f, "backend error: {e}"),
            ServeError::ShuttingDown => write!(f, "serving engine is shutting down"),
            ServeError::BackendPanicked => {
                write!(f, "backend panicked while executing the micro-batch")
            }
            ServeError::QueueFull => write!(f, "serving queue is at capacity"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Backend(e)
    }
}

/// The pending result of one submitted request.
#[derive(Debug)]
enum SlotState {
    Pending,
    Done(Result<InferenceResponse, ServeError>),
}

#[derive(Debug)]
struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot { state: Mutex::new(SlotState::Pending), ready: Condvar::new() })
    }

    fn fulfill(&self, result: Result<InferenceResponse, ServeError>) {
        *self.state.lock().expect("slot lock") = SlotState::Done(result);
        self.ready.notify_all();
    }
}

/// Claim check for one submitted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the request completes and returns its response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backend`] if the backend failed the micro-batch the
    /// request rode in.
    pub fn wait(self) -> Result<InferenceResponse, ServeError> {
        let mut state = self.slot.state.lock().expect("slot lock");
        loop {
            match std::mem::replace(&mut *state, SlotState::Pending) {
                SlotState::Done(result) => return result,
                SlotState::Pending => {
                    state = self.slot.ready.wait(state).expect("slot lock");
                }
            }
        }
    }

    /// Whether the response is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        matches!(*self.slot.state.lock().expect("slot lock"), SlotState::Done(_))
    }

    /// Redeems the ticket without blocking: the response if it is
    /// ready, the ticket itself otherwise (poll again later). The
    /// gateway's IO loops drive pending responses with this — they
    /// must never park on a single request's condvar.
    ///
    /// # Errors
    ///
    /// The `Ok` payload carries the same error cases as
    /// [`Ticket::wait`].
    #[allow(clippy::result_large_err)] // Err *is* the ticket, by design
    pub fn try_take(self) -> Result<Result<InferenceResponse, ServeError>, Ticket> {
        let mut state = self.slot.state.lock().expect("slot lock");
        match std::mem::replace(&mut *state, SlotState::Pending) {
            SlotState::Done(result) => {
                drop(state);
                Ok(result)
            }
            SlotState::Pending => {
                drop(state);
                Err(self)
            }
        }
    }
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<(InferenceRequest, Arc<ResponseSlot>)>,
    shutting_down: bool,
    submitted: u64,
    completed: u64,
    batches_executed: u64,
    checkpoints_taken: u64,
    /// Failed micro-batches since the last success — the wedged-backend
    /// streak that [`ServingEngine::health`] compares against
    /// [`ServingConfig::failure_threshold`].
    consecutive_failures: u64,
}

struct Shared {
    backend: Arc<dyn Accelerator>,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cfg: ServingConfig,
    checkpoint: Option<(CheckpointPolicy, CheckpointHook)>,
}

impl Shared {
    /// Runs the checkpoint hook (off the queue lock), containing panics
    /// — a failing checkpointer must never take a serving worker down —
    /// and counts successful runs.
    fn run_checkpoint(&self) {
        if let Some((_, hook)) = &self.checkpoint {
            let hook = Arc::clone(hook);
            let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || hook())).is_ok();
            if ok {
                self.state.lock().expect("queue lock").checkpoints_taken += 1;
            }
        }
    }
}

/// One consistent snapshot of the serving queue's counters, taken
/// under a single lock acquisition by [`ServingEngine::queue_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests waiting in the queue right now.
    pub depth: usize,
    /// The configured queue capacity.
    pub capacity: usize,
    /// The configured worker count.
    pub workers: usize,
    /// Requests accepted since start.
    pub submitted: u64,
    /// Requests completed since start.
    pub completed: u64,
    /// Micro-batches executed since start.
    pub batches_executed: u64,
    /// Failed micro-batches since the last successful one (the
    /// wedged-backend streak behind [`ServingEngine::health`]).
    pub consecutive_failures: u64,
    /// Whether shutdown has begun.
    pub shutting_down: bool,
}

/// A bounded-queue, multi-worker, micro-batching serving engine over
/// any [`Accelerator`] (see the crate docs for the full lifecycle).
pub struct ServingEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServingEngine {
    /// Spawns the worker pool over a prepared backend.
    pub fn start(backend: Arc<dyn Accelerator>, cfg: ServingConfig) -> Self {
        Self::start_inner(backend, cfg, None)
    }

    /// Spawns the worker pool with a checkpoint hook: `hook` is invoked
    /// every [`CheckpointPolicy::every_batches`] executed micro-batches
    /// and/or once during graceful shutdown (after the queue drains and
    /// the workers join). The hook typically snapshots the served
    /// engine through `igcn-store`.
    pub fn start_with_checkpoint(
        backend: Arc<dyn Accelerator>,
        cfg: ServingConfig,
        policy: CheckpointPolicy,
        hook: CheckpointHook,
    ) -> Self {
        Self::start_inner(backend, cfg, Some((policy, hook)))
    }

    fn start_inner(
        backend: Arc<dyn Accelerator>,
        cfg: ServingConfig,
        checkpoint: Option<(CheckpointPolicy, CheckpointHook)>,
    ) -> Self {
        assert!(cfg.num_workers > 0, "at least one worker is required");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.max_batch > 0, "micro-batches need at least one request");
        let shared = Arc::new(Shared {
            backend,
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(cfg.queue_capacity),
                shutting_down: false,
                submitted: 0,
                completed: 0,
                batches_executed: 0,
                checkpoints_taken: 0,
                consecutive_failures: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cfg,
            checkpoint,
        });
        let workers = (0..cfg.num_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("igcn-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns")
            })
            .collect();
        ServingEngine { shared, workers }
    }

    /// Enqueues one request, blocking while the queue is at capacity,
    /// and returns the [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] after [`ServingEngine::shutdown`]
    /// has begun.
    pub fn submit(&self, request: InferenceRequest) -> Result<Ticket, ServeError> {
        let mut state = self.shared.state.lock().expect("queue lock");
        loop {
            if state.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            if state.queue.len() < self.shared.cfg.queue_capacity {
                break;
            }
            state = self.shared.not_full.wait(state).expect("queue lock");
        }
        let slot = ResponseSlot::new();
        state.queue.push_back((request, Arc::clone(&slot)));
        state.submitted += 1;
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(Ticket { slot })
    }

    /// Enqueues one request without blocking: where [`ServingEngine::submit`]
    /// would wait for space, this returns [`ServeError::QueueFull`] so
    /// the caller can shed load explicitly — the gateway's admission
    /// path.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the queue is at capacity;
    /// [`ServeError::ShuttingDown`] after shutdown has begun.
    pub fn try_submit(&self, request: InferenceRequest) -> Result<Ticket, ServeError> {
        let mut state = self.shared.state.lock().expect("queue lock");
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.cfg.queue_capacity {
            return Err(ServeError::QueueFull);
        }
        let slot = ResponseSlot::new();
        state.queue.push_back((request, Arc::clone(&slot)));
        state.submitted += 1;
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(Ticket { slot })
    }

    /// Enqueues a batch of requests (one ticket per request, in order).
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::submit`]. The only failure mode is shutdown,
    /// which aborts before enqueueing the remaining requests.
    pub fn submit_batch(&self, requests: Vec<InferenceRequest>) -> Result<Vec<Ticket>, ServeError> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Requests waiting in the queue right now.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().expect("queue lock").queue.len()
    }

    /// Requests accepted since start.
    pub fn submitted(&self) -> u64 {
        self.shared.state.lock().expect("queue lock").submitted
    }

    /// Requests completed since start.
    pub fn completed(&self) -> u64 {
        self.shared.state.lock().expect("queue lock").completed
    }

    /// Micro-batches executed since start (≤ completed; smaller means
    /// batching amortised calls).
    pub fn batches_executed(&self) -> u64 {
        self.shared.state.lock().expect("queue lock").batches_executed
    }

    /// Checkpoint hook invocations that completed (periodic +
    /// shutdown), when started with
    /// [`ServingEngine::start_with_checkpoint`].
    pub fn checkpoints_taken(&self) -> u64 {
        self.shared.state.lock().expect("queue lock").checkpoints_taken
    }

    /// One consistent snapshot of the queue counters (single lock
    /// acquisition — the gateway's `/stats` endpoint and its
    /// estimated-wait shedding both read this on the request path).
    pub fn queue_stats(&self) -> QueueStats {
        let state = self.shared.state.lock().expect("queue lock");
        QueueStats {
            depth: state.queue.len(),
            capacity: self.shared.cfg.queue_capacity,
            workers: self.shared.cfg.num_workers,
            submitted: state.submitted,
            completed: state.completed,
            batches_executed: state.batches_executed,
            consecutive_failures: state.consecutive_failures,
            shutting_down: state.shutting_down,
        }
    }

    /// Live health of the serving tier: degraded when the last
    /// [`ServingConfig::failure_threshold`] micro-batches *all* failed
    /// (the backend looks wedged — erroring or panicking on everything
    /// it is handed), otherwise whatever the backend itself reports via
    /// [`Accelerator::health`]. A single successful micro-batch resets
    /// the streak. The gateway folds this into `/healthz`.
    pub fn health(&self) -> BackendHealth {
        let streak = self.shared.state.lock().expect("queue lock").consecutive_failures;
        let threshold = self.shared.cfg.failure_threshold;
        if threshold > 0 && streak >= u64::from(threshold) {
            return BackendHealth::Degraded {
                detail: format!(
                    "{streak} consecutive micro-batch failures (threshold {threshold}): \
                     the backend looks wedged"
                ),
            };
        }
        self.shared.backend.health()
    }

    /// The served backend.
    pub fn backend(&self) -> &Arc<dyn Accelerator> {
        &self.shared.backend
    }

    /// Graceful shutdown: stops accepting submissions, lets the workers
    /// drain every queued request, and joins them. Also performed by
    /// `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.shutting_down = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("serving worker panicked");
        }
        // The queue is drained and no worker is running: a final
        // checkpoint here captures the complete serving state.
        if let Some((policy, _)) = &self.shared.checkpoint {
            if policy.on_shutdown {
                self.shared.run_checkpoint();
            }
        }
    }
}

impl Drop for ServingEngine {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_and_join();
        }
    }
}

impl fmt::Debug for ServingEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingEngine")
            .field("backend", &self.shared.backend.name())
            .field("cfg", &self.shared.cfg)
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("queue lock");
            // Sleep until there is work or the engine drains + shuts down.
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.not_empty.wait(state).expect("queue lock");
            }
            // Micro-batching: hold a non-full batch open for up to
            // `max_wait` so co-arriving requests share one `infer_batch`
            // call. Skipped during shutdown — drain fast.
            if shared.cfg.max_wait > Duration::ZERO {
                let deadline = Instant::now() + shared.cfg.max_wait;
                while state.queue.len() < shared.cfg.max_batch && !state.shutting_down {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) =
                        shared.not_empty.wait_timeout(state, deadline - now).expect("queue lock");
                    state = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let take = state.queue.len().min(shared.cfg.max_batch);
            state.queue.drain(..take).collect::<Vec<_>>()
        };
        shared.not_full.notify_all();
        if batch.is_empty() {
            continue;
        }
        let (requests, slots): (Vec<InferenceRequest>, Vec<Arc<ResponseSlot>>) =
            batch.into_iter().unzip();
        // Catch backend panics: a dead worker would leave every rider's
        // ticket unfulfilled (waiters hang) and poison the join at
        // shutdown. The slots themselves are only written after the call
        // returns, so unwinding cannot leave them half-updated.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.backend.infer_batch(&requests)
        }));
        // Count the batch *before* waking any waiter, so a caller that
        // observed its response never reads a stale completed() count
        // (and health() already reflects the batch its ticket reported).
        let batch_failed = !matches!(&result, Ok(Ok(_)));
        let checkpoint_due = {
            let mut state = shared.state.lock().expect("queue lock");
            state.completed += requests.len() as u64;
            state.batches_executed += 1;
            if batch_failed {
                state.consecutive_failures += 1;
            } else {
                state.consecutive_failures = 0;
            }
            match &shared.checkpoint {
                Some((policy, _)) if policy.every_batches > 0 => {
                    state.batches_executed.is_multiple_of(policy.every_batches)
                }
                _ => false,
            }
        };
        match result {
            Ok(Ok(responses)) => {
                debug_assert_eq!(responses.len(), slots.len());
                for (slot, response) in slots.iter().zip(responses) {
                    slot.fulfill(Ok(response));
                }
            }
            Ok(Err(e)) => {
                // The whole micro-batch failed; every rider learns why.
                for slot in &slots {
                    slot.fulfill(Err(ServeError::Backend(e.clone())));
                }
            }
            Err(_panic) => {
                for slot in &slots {
                    slot.fulfill(Err(ServeError::BackendPanicked));
                }
            }
        }
        // Periodic checkpoint, after the riders have their responses —
        // the snapshot write must never sit on a request's latency.
        if checkpoint_due {
            shared.run_checkpoint();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_core::accel::ExecReport;
    use igcn_core::IGcnEngine;
    use igcn_gnn::{GnnModel, ModelWeights};
    use igcn_graph::generate::HubIslandConfig;
    use igcn_graph::SparseFeatures;

    const N: usize = 180;
    const DIM: usize = 12;

    fn prepared_backend() -> Arc<dyn Accelerator> {
        let g = HubIslandConfig::new(N, 8).noise_fraction(0.02).generate(17);
        let mut engine = IGcnEngine::builder(g.graph).build().unwrap();
        let model = GnnModel::gcn(DIM, 8, 4);
        let weights = ModelWeights::glorot(&model, 3);
        engine.prepare(&model, &weights).unwrap();
        Arc::new(engine)
    }

    fn request(seed: u64) -> InferenceRequest {
        InferenceRequest::new(SparseFeatures::random(N, DIM, 0.3, seed)).with_id(seed)
    }

    #[test]
    fn round_trip_matches_direct_infer() {
        let backend = prepared_backend();
        let serving = ServingEngine::start(Arc::clone(&backend), ServingConfig::default());
        let direct = backend.infer(&request(5)).unwrap();
        let response = serving.submit(request(5)).unwrap().wait().unwrap();
        assert_eq!(response.id, 5);
        assert_eq!(response.output, direct.output);
        serving.shutdown();
    }

    #[test]
    fn submit_batch_preserves_order() {
        let backend = prepared_backend();
        let serving = ServingEngine::start(Arc::clone(&backend), ServingConfig::default());
        let requests: Vec<InferenceRequest> = (0..10).map(request).collect();
        let tickets = serving.submit_batch(requests.clone()).unwrap();
        for (ticket, req) in tickets.into_iter().zip(&requests) {
            let response = ticket.wait().unwrap();
            assert_eq!(response.id, req.id);
            assert_eq!(response.output, backend.infer(req).unwrap().output);
        }
        assert_eq!(serving.completed(), 10);
        serving.shutdown();
    }

    #[test]
    fn micro_batching_amortises_calls() {
        let backend = prepared_backend();
        // One worker with a generous window: co-submitted requests must
        // share infer_batch calls.
        let cfg = ServingConfig::default()
            .with_workers(1)
            .with_max_batch(16)
            .with_max_wait(Duration::from_millis(50));
        let serving = ServingEngine::start(backend, cfg);
        let tickets = serving.submit_batch((0..12).map(request).collect()).unwrap();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(serving.completed(), 12);
        assert!(
            serving.batches_executed() < 12,
            "expected micro-batching, got {} batches for 12 requests",
            serving.batches_executed()
        );
        serving.shutdown();
    }

    #[test]
    fn backend_errors_reach_every_rider() {
        let backend = prepared_backend();
        let serving = ServingEngine::start(backend, ServingConfig::default().with_workers(1));
        // Wrong feature width → the backend rejects the batch.
        let bad = InferenceRequest::new(SparseFeatures::random(N, DIM + 1, 0.3, 9));
        let ticket = serving.submit(bad).unwrap();
        assert!(matches!(ticket.wait(), Err(ServeError::Backend(CoreError::ShapeMismatch { .. }))));
        serving.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let backend = prepared_backend();
        let cfg = ServingConfig::default().with_workers(2).with_max_wait(Duration::ZERO);
        let serving = ServingEngine::start(backend, cfg);
        let tickets = serving.submit_batch((0..20).map(request).collect()).unwrap();
        serving.shutdown(); // must not drop queued work
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait().expect("queued request still answered");
            assert_eq!(response.id, i as u64);
        }
    }

    /// Wraps a backend so every `infer`/`infer_batch` blocks until the
    /// test opens the gate — makes queue-occupancy tests deterministic.
    struct Gated {
        inner: Arc<dyn Accelerator>,
        open: std::sync::Mutex<bool>,
        changed: std::sync::Condvar,
        entered: std::sync::atomic::AtomicUsize,
    }

    impl Gated {
        fn new(inner: Arc<dyn Accelerator>) -> Arc<Self> {
            Arc::new(Gated {
                inner,
                open: std::sync::Mutex::new(false),
                changed: std::sync::Condvar::new(),
                entered: std::sync::atomic::AtomicUsize::new(0),
            })
        }

        fn open_gate(&self) {
            *self.open.lock().unwrap() = true;
            self.changed.notify_all();
        }

        fn wait_entered(&self, n: usize) {
            while self.entered.load(std::sync::atomic::Ordering::SeqCst) < n {
                thread::sleep(Duration::from_millis(1));
            }
        }

        fn block_until_open(&self) {
            self.entered.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.changed.wait(open).unwrap();
            }
        }
    }

    impl Accelerator for Gated {
        fn name(&self) -> String {
            self.inner.name()
        }
        fn graph(&self) -> &igcn_graph::CsrGraph {
            self.inner.graph()
        }
        fn prepare(
            &mut self,
            _: &igcn_gnn::GnnModel,
            _: &igcn_gnn::ModelWeights,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
            self.block_until_open();
            self.inner.infer(request)
        }
        fn infer_batch(
            &self,
            requests: &[InferenceRequest],
        ) -> Result<Vec<InferenceResponse>, CoreError> {
            self.block_until_open();
            self.inner.infer_batch(requests)
        }
        fn report(&self, request: &InferenceRequest) -> Result<ExecReport, CoreError> {
            self.inner.report(request)
        }
    }

    #[test]
    fn try_submit_sheds_instead_of_blocking_and_stats_are_consistent() {
        let gated = Gated::new(prepared_backend());
        let cfg = ServingConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_max_batch(1)
            .with_max_wait(Duration::ZERO);
        let serving = ServingEngine::start(gated.clone() as Arc<dyn Accelerator>, cfg);

        // r1 is picked up by the (gated) worker, r2 occupies the queue.
        let t1 = serving.try_submit(request(1)).unwrap();
        gated.wait_entered(1);
        let t2 = serving.try_submit(request(2)).unwrap();
        let stats = serving.queue_stats();
        assert_eq!(stats.depth, 1);
        assert_eq!(stats.capacity, 1);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.submitted, 2);
        assert!(!stats.shutting_down);

        // The queue is full: try_submit must return immediately with
        // QueueFull, not block like submit.
        assert!(matches!(serving.try_submit(request(3)), Err(ServeError::QueueFull)));

        gated.open_gate();
        assert_eq!(t1.wait().unwrap().id, 1);
        assert_eq!(t2.wait().unwrap().id, 2);
        assert_eq!(serving.queue_stats().completed, 2);
        serving.shutdown();
    }

    #[test]
    fn ticket_try_take_polls_without_blocking() {
        let gated = Gated::new(prepared_backend());
        let serving = ServingEngine::start(
            gated.clone() as Arc<dyn Accelerator>,
            ServingConfig::default().with_workers(1),
        );
        let mut ticket = serving.try_submit(request(7)).unwrap();
        gated.wait_entered(1);
        // Still executing: the ticket comes back unredeemed.
        ticket = match ticket.try_take() {
            Err(t) => t,
            Ok(_) => panic!("response before the gate opened"),
        };
        gated.open_gate();
        let response = loop {
            match ticket.try_take() {
                Ok(result) => break result.unwrap(),
                Err(t) => {
                    ticket = t;
                    thread::sleep(Duration::from_millis(1));
                }
            }
        };
        assert_eq!(response.id, 7);
        serving.shutdown();
    }

    #[test]
    fn try_submit_refuses_after_shutdown() {
        let backend = prepared_backend();
        let serving = ServingEngine::start(Arc::clone(&backend), ServingConfig::default());
        let shared = Arc::clone(&serving.shared);
        serving.shutdown();
        let probe = ServingEngine { shared, workers: Vec::new() };
        assert!(matches!(probe.try_submit(request(1)), Err(ServeError::ShuttingDown)));
        assert!(probe.queue_stats().shutting_down);
    }

    #[test]
    fn backend_panics_are_contained() {
        // A panicking backend must not kill the worker: riders get an
        // error, later requests still serve, shutdown joins cleanly.
        struct Bomb {
            graph: Arc<igcn_graph::CsrGraph>,
            armed: std::sync::atomic::AtomicBool,
        }
        impl Accelerator for Bomb {
            fn name(&self) -> String {
                "bomb".to_string()
            }
            fn graph(&self) -> &igcn_graph::CsrGraph {
                &self.graph
            }
            fn prepare(
                &mut self,
                _: &igcn_gnn::GnnModel,
                _: &igcn_gnn::ModelWeights,
            ) -> Result<(), CoreError> {
                Ok(())
            }
            fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
                if self.armed.swap(false, std::sync::atomic::Ordering::SeqCst) {
                    panic!("boom");
                }
                Ok(InferenceResponse {
                    id: request.id,
                    output: igcn_linalg::DenseMatrix::zeros(1, 1),
                    report: Default::default(),
                })
            }
            fn report(&self, _: &InferenceRequest) -> Result<igcn_core::ExecReport, CoreError> {
                Ok(Default::default())
            }
        }
        let g = igcn_graph::CsrGraph::from_undirected_edges(2, &[(0, 1)]).unwrap();
        let backend =
            Arc::new(Bomb { graph: Arc::new(g), armed: std::sync::atomic::AtomicBool::new(true) });
        let serving = ServingEngine::start(
            backend,
            ServingConfig::default().with_workers(1).with_max_batch(1),
        );
        let first = serving.submit(request(1)).unwrap();
        assert_eq!(first.wait(), Err(ServeError::BackendPanicked));
        // The worker survived and keeps serving.
        let second = serving.submit(request(2)).unwrap();
        assert_eq!(second.wait().unwrap().id, 2);
        serving.shutdown();
    }

    #[test]
    fn periodic_and_shutdown_checkpoints_fire() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let backend = prepared_backend();
        let count = Arc::new(AtomicU64::new(0));
        let hook_count = Arc::clone(&count);
        let serving = ServingEngine::start_with_checkpoint(
            backend,
            // One worker, no batching window: every request is its own
            // micro-batch, so the periodic trigger is deterministic.
            ServingConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_max_wait(Duration::ZERO),
            CheckpointPolicy::default().with_every_batches(2).with_on_shutdown(true),
            Arc::new(move || {
                hook_count.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let tickets = serving.submit_batch((0..6).map(request).collect()).unwrap();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(serving.batches_executed(), 6);
        // Periodic checkpoints run *after* riders get their responses,
        // so at this point at most 6/2 = 3 fired (the last may still be
        // in flight on the worker).
        assert!(serving.checkpoints_taken() <= 3);
        serving.shutdown();
        // Shutdown joins the workers (all periodic hooks done) and then
        // fires once more: 3 periodic + 1 shutdown.
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_checkpoint_hook_is_contained() {
        let backend = prepared_backend();
        let serving = ServingEngine::start_with_checkpoint(
            backend,
            ServingConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_max_wait(Duration::ZERO),
            CheckpointPolicy::default().with_every_batches(1).with_on_shutdown(true),
            Arc::new(|| panic!("checkpoint disk on fire")),
        );
        // Workers survive the panicking hook and keep serving.
        let tickets = serving.submit_batch((0..3).map(request).collect()).unwrap();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(serving.completed(), 3);
        assert_eq!(serving.checkpoints_taken(), 0, "failed checkpoints are not counted");
        serving.shutdown(); // the shutdown hook panic is contained too
    }

    #[test]
    fn wedged_backend_flips_health_degraded_until_a_success_resets_it() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Fails every request while armed — the "wedged" backend: alive
        // enough to answer, wrong every time.
        struct Wedged {
            graph: Arc<igcn_graph::CsrGraph>,
            wedged: AtomicBool,
        }
        impl Accelerator for Wedged {
            fn name(&self) -> String {
                "wedged".to_string()
            }
            fn graph(&self) -> &igcn_graph::CsrGraph {
                &self.graph
            }
            fn prepare(
                &mut self,
                _: &igcn_gnn::GnnModel,
                _: &igcn_gnn::ModelWeights,
            ) -> Result<(), CoreError> {
                Ok(())
            }
            fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
                if self.wedged.load(Ordering::SeqCst) {
                    return Err(CoreError::BackendFailed {
                        backend: "wedged".to_string(),
                        detail: "simulated wedge".to_string(),
                    });
                }
                Ok(InferenceResponse {
                    id: request.id,
                    output: igcn_linalg::DenseMatrix::zeros(1, 1),
                    report: Default::default(),
                })
            }
            fn report(&self, _: &InferenceRequest) -> Result<ExecReport, CoreError> {
                Ok(Default::default())
            }
        }
        let g = igcn_graph::CsrGraph::from_undirected_edges(2, &[(0, 1)]).unwrap();
        let backend = Arc::new(Wedged { graph: Arc::new(g), wedged: AtomicBool::new(true) });
        let serving = ServingEngine::start(
            Arc::clone(&backend) as Arc<dyn Accelerator>,
            ServingConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_max_wait(Duration::ZERO)
                .with_failure_threshold(3),
        );

        // Two failures: under the threshold, still ready. The streak is
        // committed before the ticket wakes, so waiting is enough.
        for seed in 0..2 {
            assert!(serving.submit(request(seed)).unwrap().wait().is_err());
        }
        assert!(serving.health().is_ready(), "streak of 2 is under the threshold");
        assert_eq!(serving.queue_stats().consecutive_failures, 2);

        // The third consecutive failure crosses it.
        assert!(serving.submit(request(2)).unwrap().wait().is_err());
        match serving.health() {
            BackendHealth::Degraded { detail } => {
                assert!(detail.contains("3 consecutive"), "detail: {detail}");
                assert!(detail.contains("wedged"), "detail: {detail}");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }

        // One success resets the streak and the tier is ready again.
        backend.wedged.store(false, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(serving.submit(request(3)).unwrap().wait().unwrap().id, 3);
        assert!(serving.health().is_ready());
        assert_eq!(serving.queue_stats().consecutive_failures, 0);
        serving.shutdown();
    }

    #[test]
    fn health_delegates_to_the_backend_when_the_streak_is_clear() {
        struct SickBackend {
            graph: Arc<igcn_graph::CsrGraph>,
        }
        impl Accelerator for SickBackend {
            fn name(&self) -> String {
                "sick".to_string()
            }
            fn graph(&self) -> &igcn_graph::CsrGraph {
                &self.graph
            }
            fn prepare(
                &mut self,
                _: &igcn_gnn::GnnModel,
                _: &igcn_gnn::ModelWeights,
            ) -> Result<(), CoreError> {
                Ok(())
            }
            fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
                Ok(InferenceResponse {
                    id: request.id,
                    output: igcn_linalg::DenseMatrix::zeros(1, 1),
                    report: Default::default(),
                })
            }
            fn report(&self, _: &InferenceRequest) -> Result<ExecReport, CoreError> {
                Ok(Default::default())
            }
            fn health(&self) -> BackendHealth {
                BackendHealth::Degraded { detail: "2/3 shards down".to_string() }
            }
        }
        let g = igcn_graph::CsrGraph::from_undirected_edges(2, &[(0, 1)]).unwrap();
        let serving = ServingEngine::start(
            Arc::new(SickBackend { graph: Arc::new(g) }),
            ServingConfig::default(),
        );
        // No failures at the serving tier, but the backend itself says
        // it is degraded — the tier must not mask that.
        match serving.health() {
            BackendHealth::Degraded { detail } => assert!(detail.contains("shards down")),
            other => panic!("expected backend degradation to surface, got {other:?}"),
        }
        serving.shutdown();
    }

    #[test]
    fn drop_is_a_graceful_shutdown() {
        let backend = prepared_backend();
        let ticket;
        {
            let serving = ServingEngine::start(backend, ServingConfig::default());
            ticket = serving.submit(request(3)).unwrap();
        } // drop joins the workers after draining
        assert!(ticket.is_ready());
        assert_eq!(ticket.wait().unwrap().id, 3);
    }
}
