//! Failpoint-driven crash tests for the snapshot store.
//!
//! These tests live in their own integration binary because arming a
//! failpoint is process-global: an `always`-triggered fault on
//! `store::wal::append` would fire for *every* WAL in the process, so
//! the harness must not share a process with the ordinary unit tests.
//! Inside this binary every test holds [`igcn_fail::FailGuard`], which
//! serializes the tests and tears all points down on drop (even on
//! panic).
//!
//! The invariant under test is the store's crash contract: **no
//! acknowledged update is ever lost**. An update is acknowledged once
//! `EngineStore::apply_update` returns `Ok`; whatever fault fires
//! afterwards — a torn checkpoint publish, a crash between rotation and
//! publish, a WAL reset that never happens — `EngineStore::boot` must
//! reconstruct a bit-identical engine (same outputs, same `ExecStats`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use igcn_core::{Accelerator, ExecConfig, GraphUpdate, IGcnEngine, InferenceRequest};
use igcn_fail::FailGuard;
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::generate::HubIslandConfig;
use igcn_graph::SparseFeatures;
use igcn_store::{EngineStore, Snapshot, StoreError, Wal};

const N: usize = 220;
const DIM: usize = 12;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("igcn-failpoint-test-{}-{tag}-{n}.snap", std::process::id()))
}

fn cold_engine(seed: u64) -> IGcnEngine {
    let g = HubIslandConfig::new(N, 9).noise_fraction(0.03).generate(seed);
    let mut engine = IGcnEngine::builder(g.graph).build().unwrap();
    let model = GnnModel::gcn(DIM, 8, 4);
    let weights = ModelWeights::glorot(&model, seed);
    engine.prepare(&model, &weights).unwrap();
    engine
}

/// Applies (and acknowledges) one structural update through the
/// WAL-first path: a fresh node wired to the first hub.
fn churn(store: &EngineStore, engine: &mut IGcnEngine) {
    let n = engine.graph().num_nodes() as u32;
    let hub = engine.partition().hubs()[0];
    store
        .apply_update(engine, GraphUpdate::add_edges(vec![(n, hub)]).with_num_nodes(n as usize + 1))
        .unwrap();
}

fn assert_bit_identical(a: &IGcnEngine, b: &IGcnEngine, seed: u64) {
    assert_eq!(a.graph().num_nodes(), b.graph().num_nodes());
    let req = InferenceRequest::new(SparseFeatures::random(a.graph().num_nodes(), DIM, 0.3, seed));
    let ra = a.infer(&req).unwrap();
    let rb = b.infer(&req).unwrap();
    assert_eq!(ra.output, rb.output, "recovered engine output must be bit-identical");
    assert_eq!(ra.report, rb.report, "recovered engine ExecStats must be identical");
}

struct Cleanup(Vec<PathBuf>);
impl Drop for Cleanup {
    fn drop(&mut self) {
        for p in &self.0 {
            std::fs::remove_file(p).ok();
        }
    }
}

fn store_files(store: &EngineStore) -> Vec<PathBuf> {
    vec![
        store.snapshot_path().to_path_buf(),
        store.snapshot_path().with_extension("tmp"), // orphaned by publish faults
        store.wal_path().to_path_buf(),
        store.previous_snapshot_path(),
        store.quarantine_path(),
    ]
}

/// Satellite: tear `Wal::append` at **every byte offset** of a record
/// and assert replay yields exactly the prefix — no partial-record
/// application, no replay error, torn bytes reported.
#[test]
fn wal_append_torn_at_every_byte_offset_replays_exact_prefix() {
    let guard = FailGuard::setup();
    let first = GraphUpdate::add_edges(vec![(1, 2), (3, 4)]);
    let second = GraphUpdate::remove_edges(vec![(1, 2)]).with_num_nodes(500);

    // Measure the on-disk size of the second record by appending it
    // cleanly once.
    let measure = temp_path("tear-measure");
    let _m = Cleanup(vec![measure.clone()]);
    let wal = Wal::paired(&measure, 7);
    wal.append(&first).unwrap();
    let prefix_bytes = wal.size_bytes();
    wal.append(&second).unwrap();
    let record_len = (wal.size_bytes() - prefix_bytes) as usize;
    assert!(record_len > 12, "record must exceed its 12-byte header");

    let mut cleanup = Cleanup(Vec::with_capacity(record_len));
    for k in 0..record_len {
        let path = temp_path("tear");
        cleanup.0.push(path.clone());
        let wal = Wal::paired(&path, 7);
        wal.append(&first).unwrap();

        guard.cfg("store::wal::append", &format!("truncate({k})")).unwrap();
        let torn = wal.append(&second);
        guard.remove("store::wal::append");
        assert!(torn.is_err(), "torn append at offset {k} must report failure");

        let replay = wal.replay().unwrap_or_else(|e| panic!("replay after {k}-byte tear: {e}"));
        assert_eq!(replay.updates, vec![first.clone()], "tear at offset {k}");
        assert_eq!(replay.torn_tail_bytes as usize, k, "tear at offset {k}");
        assert!(!replay.stale_discarded);
    }
}

/// Tentpole: a checkpoint whose publish writes a torn frame over the
/// live snapshot. Boot must quarantine the torn image, fall back to the
/// previous generation, and replay the still-paired WAL — every
/// acknowledged update survives.
#[test]
fn torn_publish_is_quarantined_and_boot_recovers_previous_generation() {
    let guard = FailGuard::setup();
    for torn_bytes in [0usize, 2, 23, 40] {
        let mut live = cold_engine(11);
        let path = temp_path("torn-publish");
        let store = EngineStore::at(&path);
        let _c = Cleanup(store_files(&store));
        store.checkpoint(&live).unwrap();
        churn(&store, &mut live);
        churn(&store, &mut live);

        guard.cfg("store::snapshot::publish", &format!("truncate({torn_bytes})")).unwrap();
        let err = store.checkpoint(&live);
        guard.remove("store::snapshot::publish");
        assert!(err.is_err(), "torn publish ({torn_bytes} bytes) must surface an error");

        let boot = store.boot(ExecConfig::default()).unwrap_or_else(|e| {
            panic!("boot after {torn_bytes}-byte torn publish must recover: {e}")
        });
        assert!(boot.recovered_from_previous, "torn publish ({torn_bytes} bytes)");
        assert_eq!(boot.quarantined_snapshot, Some(store.quarantine_path()));
        assert!(store.quarantine_path().exists(), "torn image kept for post-mortem");
        assert_eq!(boot.replayed_updates, 2, "both acknowledged updates replayed");
        assert_bit_identical(&live, &boot.engine, 31);
    }
}

/// Tentpole: a checkpoint that dies *between* rotating the old snapshot
/// aside and publishing the new one. The current image is missing
/// outright; boot must fall back without a quarantine.
#[test]
fn crash_between_rotation_and_publish_recovers_without_quarantine() {
    let guard = FailGuard::setup();
    let mut live = cold_engine(12);
    let path = temp_path("rotated-crash");
    let store = EngineStore::at(&path);
    let _c = Cleanup(store_files(&store));
    store.checkpoint(&live).unwrap();
    churn(&store, &mut live);

    guard.cfg("store::checkpoint::rotated", "return").unwrap();
    assert!(store.checkpoint(&live).is_err());
    guard.remove("store::checkpoint::rotated");
    assert!(!store.snapshot_path().exists(), "crash window leaves no current snapshot");

    let boot = store.boot(ExecConfig::default()).unwrap();
    assert!(boot.recovered_from_previous);
    assert_eq!(boot.quarantined_snapshot, None, "nothing to quarantine: the image was rotated");
    assert_eq!(boot.replayed_updates, 1);
    assert_bit_identical(&live, &boot.engine, 32);

    // The store heals on the next successful checkpoint.
    store.checkpoint(&live).unwrap();
    let boot = store.boot(ExecConfig::default()).unwrap();
    assert!(!boot.recovered_from_previous);
    assert_eq!(boot.replayed_updates, 0);
    assert_bit_identical(&live, &boot.engine, 33);
}

/// Tentpole: a checkpoint that publishes the new snapshot but dies
/// before resetting the WAL. The log is stale-paired (it names the old
/// checksum) and must be discarded — its updates are already folded
/// into the published snapshot, so replaying them would double-apply.
#[test]
fn crash_before_wal_reset_discards_stale_log_without_double_apply() {
    let guard = FailGuard::setup();
    let mut live = cold_engine(13);
    let path = temp_path("stale-wal");
    let store = EngineStore::at(&path);
    let _c = Cleanup(store_files(&store));
    store.checkpoint(&live).unwrap();
    churn(&store, &mut live);

    guard.cfg("store::wal::reset", "return").unwrap();
    assert!(store.checkpoint(&live).is_err());
    guard.remove("store::wal::reset");

    let boot = store.boot(ExecConfig::default()).unwrap();
    assert!(!boot.recovered_from_previous, "the published snapshot is intact");
    assert!(boot.stale_wal_discarded, "old-generation WAL must be ignored");
    assert_eq!(boot.replayed_updates, 0);
    assert_bit_identical(&live, &boot.engine, 34);
}

/// An environmental read failure (EIO, permissions…) is *not*
/// corruption: boot must surface the error and leave the snapshot
/// untouched rather than quarantine a possibly-fine file.
#[test]
fn transient_read_error_propagates_without_quarantine() {
    let guard = FailGuard::setup();
    let live = cold_engine(14);
    let path = temp_path("transient");
    let store = EngineStore::at(&path);
    let _c = Cleanup(store_files(&store));
    store.checkpoint(&live).unwrap();

    guard.cfg("store::io::read", "return").unwrap();
    let err = store.boot(ExecConfig::default());
    guard.remove("store::io::read");
    assert!(matches!(err, Err(StoreError::Io { .. })), "got {err:?}");
    assert!(store.snapshot_path().exists(), "primary image must not be touched");
    assert!(!store.quarantine_path().exists());

    // Once the fault clears, the same store boots cleanly.
    let boot = store.boot(ExecConfig::default()).unwrap();
    assert!(!boot.recovered_from_previous);
    assert_bit_identical(&live, &boot.engine, 35);
}

/// Terminal case: both generations corrupt. Boot must fail with the
/// typed `NoUsableSnapshot` and still quarantine the current image.
#[test]
fn both_generations_corrupt_fails_typed_with_quarantine() {
    let _guard = FailGuard::setup();
    let mut live = cold_engine(15);
    let path = temp_path("no-usable");
    let store = EngineStore::at(&path);
    let _c = Cleanup(store_files(&store));
    store.checkpoint(&live).unwrap();
    churn(&store, &mut live);
    store.checkpoint(&live).unwrap(); // current + .prev now both exist

    std::fs::write(store.snapshot_path(), b"garbage current").unwrap();
    std::fs::write(store.previous_snapshot_path(), b"garbage previous").unwrap();
    let err = store.boot(ExecConfig::default());
    match err {
        Err(StoreError::NoUsableSnapshot { quarantined, detail }) => {
            assert_eq!(quarantined, Some(store.quarantine_path()));
            assert!(store.quarantine_path().exists());
            assert!(detail.contains("previous generation"), "detail: {detail}");
        }
        other => panic!("expected NoUsableSnapshot, got {other:?}"),
    }
}

/// Write faults during the temp-file stage never touch the live
/// snapshot: the published image and the WAL pairing stay valid.
#[test]
fn temp_write_fault_leaves_published_snapshot_bootable() {
    let guard = FailGuard::setup();
    let mut live = cold_engine(16);
    let path = temp_path("tmp-write");
    let store = EngineStore::at(&path);
    let _c = Cleanup(store_files(&store));
    store.checkpoint(&live).unwrap();
    churn(&store, &mut live);

    for spec in ["return", "truncate(10)"] {
        guard.cfg("store::io::write", spec).unwrap();
        assert!(store.checkpoint(&live).is_err(), "spec {spec}");
        guard.remove("store::io::write");

        let boot = store.boot(ExecConfig::default()).unwrap();
        assert!(boot.recovered_from_previous, "rotation ran, publish never did (spec {spec})");
        assert_eq!(boot.replayed_updates, 1, "spec {spec}");
        assert_bit_identical(&live, &boot.engine, 36);

        // Heal for the next iteration.
        store.checkpoint(&live).unwrap();
        churn(&store, &mut live);
    }
}

/// Every store failpoint is registered under the name the crate
/// advertises — the chaos harness iterates `igcn_store::FAILPOINTS`
/// and a typo'd name would silently inject nothing.
#[test]
fn advertised_failpoints_actually_fire() {
    let guard = FailGuard::setup();
    let mut live = cold_engine(17);
    let path = temp_path("advertised");
    let store = EngineStore::at(&path);
    let _c = Cleanup(store_files(&store));

    for &point in igcn_store::FAILPOINTS {
        guard.cfg(point, "return").unwrap();
    }
    // One checkpoint + boot + update exercise every registered point at
    // least once (rotation fires first and short-circuits the rest of
    // save, so probe them through the operations that reach them).
    assert!(store.checkpoint(&live).is_err()); // store::checkpoint::rotated
    for &point in igcn_store::FAILPOINTS {
        guard.remove(point);
    }
    store.checkpoint(&live).unwrap();

    type Probe = dyn Fn(&EngineStore, &mut IGcnEngine) -> bool;
    let probes: &[(&str, &Probe)] = &[
        ("store::io::read", &|s, _| s.boot(ExecConfig::default()).is_err()),
        ("store::io::write", &|s, e| s.checkpoint(e).is_err()),
        ("store::io::rename", &|s, e| s.checkpoint(e).is_err()),
        ("store::snapshot::publish", &|s, e| s.checkpoint(e).is_err()),
        ("store::wal::reset", &|s, e| s.checkpoint(e).is_err()),
        ("store::wal::append", &|s, e| {
            let n = e.graph().num_nodes() as u32;
            let hub = e.partition().hubs()[0];
            s.apply_update(e, GraphUpdate::add_edges(vec![(n, hub)]).with_num_nodes(n as usize + 1))
                .is_err()
        }),
    ];
    for (point, probe) in probes {
        guard.cfg(*point, "return").unwrap();
        let before = igcn_fail::fired(point);
        assert!(probe(&store, &mut live), "probe for {point} must fail while armed");
        assert!(igcn_fail::fired(point) > before, "{point} never fired");
        guard.remove(point);
        // Heal any partial state the probe left behind.
        store.checkpoint(&live).unwrap();
    }
    let boot = store.boot(ExecConfig::default()).unwrap();
    assert_bit_identical(&live, &boot.engine, 37);
}

/// `Snapshot::write` stays atomic under a rename fault: the temp file
/// is the casualty, never the published image.
#[test]
fn rename_fault_preserves_existing_snapshot() {
    let guard = FailGuard::setup();
    let live = cold_engine(18);
    let path = temp_path("rename-fault");
    let _c = Cleanup(vec![path.clone()]);
    Snapshot::capture(&live).write(&path).unwrap();
    let before = std::fs::read(&path).unwrap();

    guard.cfg("store::io::rename", "return").unwrap();
    assert!(Snapshot::capture(&live).write(&path).is_err());
    guard.remove("store::io::rename");

    assert_eq!(std::fs::read(&path).unwrap(), before, "published bytes untouched");
    Snapshot::read(&path).unwrap();
}
