//! The graph-update write-ahead log.
//!
//! A snapshot is a point-in-time engine image; the WAL carries the
//! [`GraphUpdate`]s applied *since* that image, so a restarted node
//! replays `snapshot + WAL` and arrives at the exact serving state it
//! went down with. Records are appended **before** the in-memory
//! `apply_update` (write-ahead discipline; a rejected update is rolled
//! back off the log), and a checkpoint resets the log.
//!
//! ```text
//! file   := "IGWL" | snapshot_checksum u64 LE | record*
//! record := len u32 LE | checksum u64 LE (FNV-1a of payload) | payload
//! ```
//!
//! **Pairing.** The file header names the checksum of the snapshot the
//! log extends. This closes the checkpoint crash window: a checkpoint
//! first renames the new snapshot into place, then resets the log with
//! the new pairing header. If the process dies between the two steps,
//! the old log still names the *old* snapshot's checksum — replay sees
//! the mismatch, reports the log as stale, and discards it instead of
//! double-applying updates the new snapshot already folded in.
//!
//! Replay semantics: records are applied in append order. A **torn
//! tail** — the file ends inside the final record, the signature of a
//! crash mid-append — is tolerated and reported via
//! [`WalReplay::torn_tail_bytes`]; the corresponding update was never
//! acknowledged. A checksum mismatch on any *complete* record is real
//! corruption and fails with [`StoreError::WalCorrupt`].

use std::io::Write;
use std::path::{Path, PathBuf};

use igcn_core::GraphUpdate;

use crate::error::{io_err, StoreError};
use crate::snapshot::fnv1a64;
use crate::wire::RawUpdate;

/// Leading magic bytes of every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"IGWL";

/// File header size: magic + paired snapshot checksum.
const WAL_HEADER_BYTES: usize = 4 + 8;

/// Fixed bytes before each record's payload: length + checksum.
const RECORD_HEADER_BYTES: usize = 4 + 8;

/// The decoded contents of a WAL file.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// The updates to re-apply, in append order.
    pub updates: Vec<GraphUpdate>,
    /// Bytes of a torn (incomplete) final record, `0` when the log
    /// ended cleanly. Torn bytes are discarded on the next append.
    pub torn_tail_bytes: u64,
    /// The log named a different snapshot (a checkpoint died between
    /// its two steps); its records are already folded into the current
    /// snapshot and were discarded.
    pub stale_discarded: bool,
}

/// Handle to a write-ahead log paired with one snapshot generation
/// (created lazily on first append; a missing file replays as empty).
#[derive(Debug, Clone)]
pub struct Wal {
    path: PathBuf,
    paired_checksum: u64,
}

impl Wal {
    /// A WAL handle at `path`, extending the snapshot whose payload
    /// checksum is `snapshot_checksum`.
    pub fn paired(path: impl Into<PathBuf>, snapshot_checksum: u64) -> Self {
        Wal { path: path.into(), paired_checksum: snapshot_checksum }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The snapshot checksum this handle pairs with.
    pub fn paired_checksum(&self) -> u64 {
        self.paired_checksum
    }

    /// Current log size in bytes (0 when the file does not exist).
    pub fn size_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }

    /// Resets the log to an empty record list paired with this
    /// handle's snapshot checksum (written via a temporary sibling +
    /// rename, so a crash never leaves a half-written header).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn reset(&self) -> Result<(), StoreError> {
        // Failpoint `store::wal::reset`: dies before the log is reset —
        // the checkpoint crash window the pairing header closes (the
        // stale log names the old snapshot and is discarded at boot).
        igcn_fail::fail_point!("store::wal::reset", |_| Err(crate::io::injected(
            &self.path,
            "store::wal::reset"
        )));
        let mut header = Vec::with_capacity(WAL_HEADER_BYTES);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&self.paired_checksum.to_le_bytes());
        let tmp = self.path.with_extension("wal.tmp");
        crate::io::write_durable(&tmp, &header)?;
        crate::io::rename(&tmp, &self.path)
    }

    /// Reads the pairing header, if the file exists and has one.
    fn read_header(&self) -> Result<Option<u64>, StoreError> {
        let mut bytes = [0u8; WAL_HEADER_BYTES];
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&self.path, e)),
        };
        use std::io::Read;
        match file.read_exact(&mut bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(io_err(&self.path, e)),
        }
        if bytes[..4] != WAL_MAGIC {
            return Err(StoreError::WalCorrupt {
                offset: 0,
                detail: format!("bad WAL magic {:02x?}", &bytes[..4]),
            });
        }
        // invariant: `bytes` is a fixed [u8; WAL_HEADER_BYTES] array.
        Ok(Some(u64::from_le_bytes(bytes[4..].try_into().expect("eight bytes"))))
    }

    /// Appends one update record (length + checksum + payload,
    /// `fsync`ed before returning — write-ahead means *durable* ahead,
    /// not merely buffered) and returns the byte offset the record
    /// starts at — pass it to [`Wal::rollback_to`] if the in-memory
    /// apply is subsequently rejected.
    ///
    /// A missing log is initialised first; a log paired with a
    /// *different* snapshot (stale after an interrupted checkpoint) is
    /// reset first — its records are folded into the current snapshot
    /// already.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures;
    /// [`StoreError::WalCorrupt`] if the existing file is not a WAL.
    pub fn append(&self, update: &GraphUpdate) -> Result<u64, StoreError> {
        let _span = igcn_obs::Span::enter(igcn_obs::stage::WAL_APPEND);
        match self.read_header()? {
            Some(paired) if paired == self.paired_checksum => {}
            _ => self.reset()?,
        }
        let payload = bitcode::encode(&RawUpdate {
            added_edges: update.added_edges.clone(),
            removed_edges: update.removed_edges.clone(),
            new_num_nodes: update.new_num_nodes,
        });
        let mut record = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        let offset = file.metadata().map_err(|e| io_err(&self.path, e))?.len();
        // Failpoint `store::wal::append`: `return` dies before any byte
        // of the record reaches the log; `truncate(K)` appends only the
        // record's first K bytes — a torn tail replay must discard.
        match igcn_fail::eval("store::wal::append") {
            Some(igcn_fail::Action::ReturnErr) => {
                return Err(crate::io::injected(&self.path, "store::wal::append"))
            }
            Some(igcn_fail::Action::Truncate(k)) => {
                file.write_all(&record[..k.min(record.len())])
                    .map_err(|e| io_err(&self.path, e))?;
                file.sync_all().map_err(|e| io_err(&self.path, e))?;
                return Err(crate::io::injected(&self.path, "store::wal::append"));
            }
            _ => {}
        }
        file.write_all(&record).map_err(|e| io_err(&self.path, e))?;
        // `flush` is a no-op on `File`; only fsync makes the record
        // survive power loss, which is the whole point of logging it
        // before the in-memory apply.
        file.sync_all().map_err(|e| io_err(&self.path, e))?;
        Ok(offset)
    }

    /// Discards everything at and after `offset` — the undo for an
    /// [`Wal::append`] whose in-memory apply was rejected.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn rollback_to(&self, offset: u64) -> Result<(), StoreError> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        file.set_len(offset).map_err(|e| io_err(&self.path, e))
    }

    /// Reads every record back, in order. A missing file, a header-only
    /// file, or a file paired with a different snapshot all replay as
    /// empty (the last one with [`WalReplay::stale_discarded`] set).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures;
    /// [`StoreError::WalCorrupt`] on a bad magic or a checksum/decode
    /// failure of a complete record. A torn final record is tolerated
    /// and reported, not an error.
    pub fn replay(&self) -> Result<WalReplay, StoreError> {
        let bytes = match crate::io::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
            Err(e) => return Err(io_err(&self.path, e)),
        };
        if bytes.len() < WAL_HEADER_BYTES {
            // An interrupted reset; nothing was ever appended.
            return Ok(WalReplay { torn_tail_bytes: bytes.len() as u64, ..Default::default() });
        }
        if bytes[..4] != WAL_MAGIC {
            return Err(StoreError::WalCorrupt {
                offset: 0,
                detail: format!("bad WAL magic {:02x?}", &bytes[..4]),
            });
        }
        // invariant: bytes.len() >= WAL_HEADER_BYTES was checked above.
        let paired = u64::from_le_bytes(bytes[4..12].try_into().expect("eight bytes"));
        if paired != self.paired_checksum {
            return Ok(WalReplay { stale_discarded: true, ..Default::default() });
        }
        let mut replay = WalReplay::default();
        let mut pos = WAL_HEADER_BYTES;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < RECORD_HEADER_BYTES {
                replay.torn_tail_bytes = remaining as u64;
                break;
            }
            // invariant: remaining >= RECORD_HEADER_BYTES was just
            // checked — both header slices exist.
            let len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("four bytes")) as usize;
            let checksum =
                u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("eight bytes"));
            if remaining < RECORD_HEADER_BYTES + len {
                replay.torn_tail_bytes = remaining as u64;
                break;
            }
            let payload = &bytes[pos + RECORD_HEADER_BYTES..pos + RECORD_HEADER_BYTES + len];
            let computed = fnv1a64(payload);
            if computed != checksum {
                return Err(StoreError::WalCorrupt {
                    offset: pos as u64,
                    detail: format!(
                        "record checksum mismatch (recorded {checksum:#018x}, \
                         computed {computed:#018x})"
                    ),
                });
            }
            let raw: RawUpdate = bitcode::decode(payload).map_err(|e| StoreError::WalCorrupt {
                offset: pos as u64,
                detail: format!("record payload decode failed: {e}"),
            })?;
            replay.updates.push(GraphUpdate {
                added_edges: raw.added_edges,
                removed_edges: raw.removed_edges,
                new_num_nodes: raw.new_num_nodes,
            });
            pos += RECORD_HEADER_BYTES + len;
        }
        Ok(replay)
    }
}
