//! The versioned, checksummed snapshot file: a complete engine image.
//!
//! ```text
//! +---------+---------+-------------+-------------+================+
//! | "IGSN"  | version | payload_len | payload_sum |    payload     |
//! | 4 bytes | u32 LE  | u64 LE      | u64 LE FNV  | bitcode bytes  |
//! +---------+---------+-------------+-------------+================+
//! ```
//!
//! The payload is the bitcode-encoded [`RawSnapshot`](crate::wire):
//! islandization + consumer configuration, the serving graph, the
//! partition and locator statistics, the composed physical
//! [`IslandLayout`] (permutation, permuted graph and partition, issue
//! schedule, prebuilt bitmaps, inter-hub tasks), and optionally a
//! prepared model + weights and a default feature matrix.
//!
//! **Versioning / compatibility policy.** The version field is a single
//! monotone format number ([`SNAPSHOT_VERSION`]). A reader accepts
//! exactly the version it was built with: any layout-affecting change
//! to the wire structs must bump the number, and older files then fail
//! fast with [`StoreError::UnsupportedVersion`] (rebuild the snapshot
//! from the source graph — it is a cache of islandization work, never
//! the only copy of primary data). The checksum is FNV-1a 64 over the
//! payload bytes; it guards against corruption, not tampering.

use std::path::Path;
use std::sync::Arc;

use igcn_core::stats::LocatorStats;
use igcn_core::{
    ConsumerConfig, EngineParts, ExecConfig, IGcnEngine, IslandLayout, IslandPartition,
    IslandizationConfig,
};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::{CsrGraph, SparseFeatures};

use crate::error::{io_err, StoreError};
use crate::wire::{
    weights_from_raw, RawConsumerCfg, RawFeatures, RawGraph, RawIslandCfg, RawLayout,
    RawLocatorStats, RawMatrix, RawModel, RawPartition, RawSnapshot,
};

/// Leading magic bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"IGSN";

/// The snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header size in bytes: magic + version + payload length + checksum.
pub const HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// FNV-1a 64-bit over `bytes` — the snapshot and WAL checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The raw 24-byte header of a snapshot file, as
/// [`Snapshot::read_header`] returns it — the payload is *not* read or
/// verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version recorded in the file.
    pub version: u32,
    /// Payload length the header declares.
    pub payload_bytes: u64,
    /// FNV-1a 64 checksum recorded in the header (unverified).
    pub checksum: u64,
}

/// Header metadata of a snapshot file, readable without decoding the
/// payload (`snapshot_tool inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version recorded in the file.
    pub version: u32,
    /// Payload length in bytes.
    pub payload_bytes: u64,
    /// FNV-1a 64 checksum recorded in the header.
    pub checksum: u64,
    /// Whether the payload bytes on disk hash to the recorded checksum.
    pub checksum_ok: bool,
}

/// A complete engine image: everything needed to boot an [`IGcnEngine`]
/// without re-running islandization, plus (optionally) the prepared
/// model and a default feature matrix for serving/bench workloads.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The Island Locator configuration the partition was built under.
    pub island_cfg: IslandizationConfig,
    /// The Island Consumer configuration (determines the schedule wave
    /// width baked into the layout).
    pub consumer_cfg: ConsumerConfig,
    /// The serving graph, in original node IDs.
    pub graph: Arc<CsrGraph>,
    /// The islandization partition over original IDs.
    pub partition: IslandPartition,
    /// Locator statistics recorded when the partition was built.
    pub locator_stats: LocatorStats,
    /// The composed physical layout.
    pub layout: Arc<IslandLayout>,
    /// Prepared model + weights, when the captured engine had one.
    pub model: Option<(GnnModel, ModelWeights)>,
    /// A default feature matrix (dataset dumps bundle one so a serving
    /// node can smoke-test itself right after boot).
    pub features: Option<SparseFeatures>,
}

impl Snapshot {
    /// Captures a complete image of `engine` (graph, partition, layout
    /// and — if [`prepare`]d — the model and weights). Shared state is
    /// captured by `Arc`, so this does not copy the graph or layout.
    ///
    /// [`prepare`]: igcn_core::Accelerator::prepare
    pub fn capture(engine: &IGcnEngine) -> Self {
        Snapshot {
            island_cfg: engine.island_config(),
            consumer_cfg: engine.consumer_config(),
            graph: engine.graph_arc(),
            partition: engine.partition().clone(),
            locator_stats: engine.locator_stats().clone(),
            layout: engine.layout_arc(),
            model: engine.prepared_model().map(|(m, w)| (m.clone(), w.clone())),
            features: None,
        }
    }

    /// Bundles a default feature matrix into the snapshot.
    pub fn with_features(mut self, features: SparseFeatures) -> Self {
        self.features = Some(features);
        self
    }

    /// Serialises the snapshot (header + checksummed payload) to
    /// `path`, writing a temporary sibling first and renaming over the
    /// target so readers never observe a half-written file. Returns the
    /// total bytes written.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        self.write_with_checksum(path).map(|(bytes, _)| bytes)
    }

    /// As [`Snapshot::write`], additionally returning the payload
    /// checksum that was written — what manifest writers record without
    /// re-reading the file they just produced.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn write_with_checksum(&self, path: impl AsRef<Path>) -> Result<(u64, u64), StoreError> {
        let payload = bitcode::encode(&self.to_raw());
        write_framed(path.as_ref(), SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &payload)
    }

    /// Reads, verifies (magic, version, length, checksum) and decodes a
    /// snapshot, re-validating every structure through the domain
    /// constructors.
    ///
    /// # Errors
    ///
    /// The full [`StoreError`] taxonomy: I/O, magic/version/length/
    /// checksum failures, codec errors, and structural validation
    /// failures.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let bytes = crate::io::read(path).map_err(|e| io_err(path, e))?;
        let payload = verified_payload(&bytes)?;
        let raw: RawSnapshot = bitcode::decode(payload)?;
        Self::from_raw(raw)
    }

    /// Reads only the header of a snapshot file and verifies the
    /// payload checksum, without decoding the payload.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], [`StoreError::BadMagic`] or
    /// [`StoreError::Truncated`]; version and checksum mismatches are
    /// *reported* in the returned [`SnapshotInfo`] rather than raised,
    /// so `inspect` can describe any intact header.
    pub fn inspect(path: impl AsRef<Path>) -> Result<SnapshotInfo, StoreError> {
        let path = path.as_ref();
        let bytes = crate::io::read(path).map_err(|e| io_err(path, e))?;
        inspect_framed(&bytes, SNAPSHOT_MAGIC)
    }

    /// Reads just the 24-byte header — the recorded checksum *without*
    /// reading or hashing the payload. This is what WAL pairing uses
    /// ([`crate::EngineStore`]): appending a log record must not cost a
    /// full scan of a multi-megabyte snapshot. Use
    /// [`Snapshot::inspect`] when the payload should be verified too.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], [`StoreError::BadMagic`] or
    /// [`StoreError::Truncated`].
    pub fn read_header(path: impl AsRef<Path>) -> Result<SnapshotHeader, StoreError> {
        use std::io::Read;
        let path = path.as_ref();
        let mut bytes = [0u8; HEADER_BYTES];
        let mut file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
        file.read_exact(&mut bytes).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                StoreError::Truncated { needed: HEADER_BYTES as u64, got: 0 }
            }
            _ => io_err(path, e),
        })?;
        // invariant: `bytes` is a [u8; HEADER_BYTES] array — every
        // fixed-width slice below exists by construction.
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(StoreError::BadMagic { found: bytes[..4].try_into().expect("four bytes") });
        }
        Ok(SnapshotHeader {
            version: u32::from_le_bytes(bytes[4..8].try_into().expect("four bytes")),
            payload_bytes: u64::from_le_bytes(bytes[8..16].try_into().expect("eight bytes")),
            checksum: u64::from_le_bytes(bytes[16..24].try_into().expect("eight bytes")),
        })
    }

    /// Boots an engine from this snapshot — the **warm start**: the
    /// Island Locator pass and the layout composition are skipped
    /// entirely ([`IGcnEngineBuilder::build_from_parts`]), and a stored
    /// model is [`prepare`]d onto the engine.
    ///
    /// [`IGcnEngineBuilder::build_from_parts`]:
    /// igcn_core::IGcnEngineBuilder::build_from_parts
    /// [`prepare`]: igcn_core::Accelerator::prepare
    ///
    /// # Errors
    ///
    /// [`StoreError::Core`] if the parts fail the engine's structural
    /// checks or the stored weights do not match the stored model.
    pub fn warm_engine(&self, exec_cfg: ExecConfig) -> Result<IGcnEngine, StoreError> {
        let mut engine = IGcnEngine::builder(Arc::clone(&self.graph))
            .island_config(self.island_cfg)
            .consumer_config(self.consumer_cfg)
            .exec_config(exec_cfg)
            .build_from_parts(EngineParts {
                partition: self.partition.clone(),
                locator_stats: self.locator_stats.clone(),
                layout: Arc::clone(&self.layout),
            })?;
        if let Some((model, weights)) = &self.model {
            use igcn_core::Accelerator;
            engine.prepare(model, weights)?;
        }
        Ok(engine)
    }

    fn to_raw(&self) -> RawSnapshot {
        RawSnapshot {
            island_cfg: RawIslandCfg(self.island_cfg),
            consumer_cfg: RawConsumerCfg(self.consumer_cfg),
            graph: RawGraph::from_graph(&self.graph),
            partition: RawPartition::from_partition(&self.partition),
            locator_stats: RawLocatorStats(self.locator_stats.clone()),
            layout: RawLayout::from_layout(&self.layout),
            model: self.model.as_ref().map(|(m, _)| RawModel::from_model(m)),
            weights: self.model.as_ref().map(|(_, w)| {
                (0..w.num_layers()).map(|i| RawMatrix::from_matrix(w.layer(i))).collect()
            }),
            features: self.features.as_ref().map(RawFeatures::from_features),
        }
    }

    fn from_raw(raw: RawSnapshot) -> Result<Self, StoreError> {
        let model = match (raw.model, raw.weights) {
            (Some(m), Some(w)) => {
                let model = m.into_model()?;
                let weights = weights_from_raw(w)?;
                igcn_core::accel::validate_weights(&model, &weights)?;
                Some((model, weights))
            }
            (None, None) => None,
            _ => {
                return Err(StoreError::Corrupt {
                    detail: "model and weights must be stored together".to_string(),
                })
            }
        };
        Ok(Snapshot {
            island_cfg: raw.island_cfg.0,
            consumer_cfg: raw.consumer_cfg.0,
            graph: Arc::new(raw.graph.into_graph()?),
            partition: raw.partition.into_partition()?,
            locator_stats: raw.locator_stats.0,
            layout: Arc::new(raw.layout.into_layout()?),
            model,
            features: raw.features.map(RawFeatures::into_features).transpose()?,
        })
    }
}

/// Validates magic, version, length and checksum; returns the payload
/// slice.
fn verified_payload(bytes: &[u8]) -> Result<&[u8], StoreError> {
    framed_payload(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)
}

// ---------------------------------------------------------------------
// The shared `magic | version | len | checksum | payload` framing —
// one implementation for every file format in this crate (snapshots
// and shard manifests differ only in their magic and version).
// ---------------------------------------------------------------------

/// Writes `payload` framed under `magic`/`version` (write-then-rename,
/// fsynced); returns `(total bytes, payload checksum)`.
pub(crate) fn write_framed(
    path: &Path,
    magic: [u8; 4],
    version: u32,
    payload: &[u8],
) -> Result<(u64, u64), StoreError> {
    let checksum = fnv1a64(payload);
    let mut file = Vec::with_capacity(HEADER_BYTES + payload.len());
    file.extend_from_slice(&magic);
    file.extend_from_slice(&version.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&checksum.to_le_bytes());
    file.extend_from_slice(payload);
    let tmp = path.with_extension("tmp");
    crate::io::write_durable(&tmp, &file)?;
    // Failpoint `store::snapshot::publish`: `return` dies between the
    // durable temp write and the rename (temp orphaned, target intact —
    // the window atomicity must cover); `truncate(K)` simulates a
    // *torn publish* — the first K bytes of the frame land on the final
    // path, the state a non-atomic writer or sector loss at power-off
    // leaves behind, which boot must quarantine.
    match igcn_fail::eval("store::snapshot::publish") {
        Some(igcn_fail::Action::ReturnErr) => {
            return Err(crate::io::injected(path, "store::snapshot::publish"))
        }
        Some(igcn_fail::Action::Truncate(k)) => {
            let _ = crate::io::write_durable(path, &file[..k.min(file.len())]);
            return Err(crate::io::injected(path, "store::snapshot::publish"));
        }
        _ => {}
    }
    crate::io::rename(&tmp, path)?;
    Ok((file.len() as u64, checksum))
}

/// Validates the framing (magic, exact version, length, checksum) and
/// returns the payload slice.
pub(crate) fn framed_payload(
    bytes: &[u8],
    magic: [u8; 4],
    supported_version: u32,
) -> Result<&[u8], StoreError> {
    if bytes.len() < HEADER_BYTES {
        return Err(StoreError::Truncated { needed: HEADER_BYTES as u64, got: bytes.len() as u64 });
    }
    // invariant: bytes.len() >= HEADER_BYTES was just checked — the
    // fixed-width header slices below cannot fail.
    if bytes[..4] != magic {
        return Err(StoreError::BadMagic { found: bytes[..4].try_into().expect("four bytes") });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("four bytes"));
    if version != supported_version {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: supported_version,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("eight bytes"));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("eight bytes"));
    let body = &bytes[HEADER_BYTES..];
    if body.len() as u64 != payload_len {
        return Err(StoreError::Truncated { needed: payload_len, got: body.len() as u64 });
    }
    let computed = fnv1a64(body);
    if computed != checksum {
        return Err(StoreError::ChecksumMismatch { expected: checksum, computed });
    }
    Ok(body)
}

/// Reads the framing fields without requiring a supported version, and
/// verifies the checksum — the `inspect` path of both formats.
pub(crate) fn inspect_framed(bytes: &[u8], magic: [u8; 4]) -> Result<SnapshotInfo, StoreError> {
    if bytes.len() < HEADER_BYTES {
        return Err(StoreError::Truncated { needed: HEADER_BYTES as u64, got: bytes.len() as u64 });
    }
    // invariant: bytes.len() >= HEADER_BYTES was just checked.
    if bytes[..4] != magic {
        return Err(StoreError::BadMagic { found: bytes[..4].try_into().expect("four bytes") });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("four bytes"));
    let payload_bytes = u64::from_le_bytes(bytes[8..16].try_into().expect("eight bytes"));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("eight bytes"));
    let body = &bytes[HEADER_BYTES..];
    let checksum_ok = body.len() as u64 == payload_bytes && fnv1a64(body) == checksum;
    Ok(SnapshotInfo { version, payload_bytes, checksum, checksum_ok })
}
