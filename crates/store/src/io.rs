//! The injectable file-I/O seam.
//!
//! Every byte this crate reads from or writes to disk goes through
//! these helpers, each guarded by a named failpoint
//! ([`igcn_fail`]) — so chaos tests can fail reads, tear writes at an
//! arbitrary byte offset, or kill a rename, without needing a real
//! disk fault. With no failpoint armed each helper is the plain
//! `std::fs` call plus one relaxed atomic load.
//!
//! Seam failpoints (higher-level crash windows — `store::wal::append`,
//! `store::snapshot::publish`, `store::checkpoint::rotated` — live at
//! their call sites):
//!
//! | failpoint | `return` | `truncate(K)` |
//! |---|---|---|
//! | `store::io::write` | fail before any byte | write only the first K bytes (fsynced), then fail |
//! | `store::io::read` | fail the read | serve only the first K bytes of the file |
//! | `store::io::rename` | fail before renaming | — |

use std::io::Write;
use std::path::Path;

use crate::error::{io_err, StoreError};

/// The typed error an armed failpoint injects: an [`StoreError::Io`]
/// naming the point, so recovery paths treat it exactly like a real
/// filesystem failure.
pub(crate) fn injected(path: &Path, point: &str) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        detail: format!("injected fault at failpoint {point}"),
    }
}

/// Writes `bytes` to `path` and fsyncs before returning — the
/// durability half of every write-then-rename in this crate (a rename
/// only orders metadata; without the fsync a crash can publish a name
/// pointing at unwritten data).
///
/// Failpoint `store::io::write`: `return` fails before any byte is
/// written; `truncate(K)` writes only the first K bytes (fsynced) and
/// then fails — the on-disk signature of a crash mid-write.
pub(crate) fn write_durable(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let torn = match igcn_fail::eval("store::io::write") {
        Some(igcn_fail::Action::ReturnErr) => return Err(injected(path, "store::io::write")),
        Some(igcn_fail::Action::Truncate(k)) => Some(k.min(bytes.len())),
        _ => None,
    };
    let mut file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
    file.write_all(&bytes[..torn.unwrap_or(bytes.len())]).map_err(|e| io_err(path, e))?;
    file.sync_all().map_err(|e| io_err(path, e))?;
    match torn {
        Some(_) => Err(injected(path, "store::io::write")),
        None => Ok(()),
    }
}

/// Reads a whole file, preserving the raw `std::io::Error` (callers
/// branch on `NotFound`).
///
/// Failpoint `store::io::read`: `return` fails the read; `truncate(K)`
/// serves only the first K bytes — what a reader racing a torn write
/// would observe.
pub(crate) fn read(path: &Path) -> std::io::Result<Vec<u8>> {
    let torn = match igcn_fail::eval("store::io::read") {
        Some(igcn_fail::Action::ReturnErr) => {
            return Err(std::io::Error::other("injected fault at failpoint store::io::read"))
        }
        Some(igcn_fail::Action::Truncate(k)) => Some(k),
        _ => None,
    };
    let mut bytes = std::fs::read(path)?;
    if let Some(k) = torn {
        bytes.truncate(k);
    }
    Ok(bytes)
}

/// Renames `from` over `to`. Failpoint `store::io::rename`: `return`
/// fails before the rename (the temp file is left orphaned, the target
/// untouched — exactly a crash between write and publish).
pub(crate) fn rename(from: &Path, to: &Path) -> Result<(), StoreError> {
    if igcn_fail::eval("store::io::rename").is_some() {
        return Err(injected(to, "store::io::rename"));
    }
    std::fs::rename(from, to).map_err(|e| io_err(to, e))
}
