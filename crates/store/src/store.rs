//! [`EngineStore`]: one snapshot file + its write-ahead log, managed
//! together.
//!
//! This is the durability loop of a serving node:
//!
//! 1. **first deployment** — build an engine cold, `checkpoint` it;
//! 2. **serving** — route structural changes through
//!    [`EngineStore::apply_update`] (WAL-first, so the change is on
//!    disk before it is live);
//! 3. **restart** — [`EngineStore::boot`] reads the snapshot, skips
//!    islandization, replays the WAL, and serving resumes exactly where
//!    it stopped;
//! 4. **periodically** — `checkpoint` again to fold the WAL back into
//!    the snapshot (the serving front-end's checkpoint hook calls
//!    this).
//!
//! A checkpoint is crash-safe without any coordination: the new
//! snapshot is renamed into place first, and the WAL's pairing header
//! (see [`Wal`]) ties every log to the snapshot checksum it extends —
//! a log orphaned by a crash between the two steps is recognised as
//! stale at the next boot and discarded instead of double-applied.

use std::path::{Path, PathBuf};

use igcn_core::accel::UpdateReport;
use igcn_core::{ExecConfig, GraphUpdate, IGcnEngine};

use crate::error::StoreError;
use crate::snapshot::Snapshot;
use crate::wal::Wal;

/// Outcome of [`EngineStore::boot`].
#[derive(Debug)]
pub struct BootOutcome {
    /// The warm-started engine, WAL already replayed, model prepared
    /// when the snapshot stored one.
    pub engine: IGcnEngine,
    /// Whether a model + weights pair was prepared from the snapshot.
    pub prepared: bool,
    /// WAL records replayed onto the engine.
    pub replayed_updates: usize,
    /// Bytes of a torn WAL tail that were discarded (crash mid-append).
    pub torn_tail_bytes: u64,
    /// Whether a stale WAL (from an interrupted checkpoint) was
    /// ignored.
    pub stale_wal_discarded: bool,
    /// The snapshot's bundled default feature matrix, if any.
    pub features: Option<igcn_graph::SparseFeatures>,
}

/// A snapshot file and its sidecar WAL (`<snapshot>.wal`), managed as
/// one durable engine store.
#[derive(Debug, Clone)]
pub struct EngineStore {
    snapshot_path: PathBuf,
    wal_path: PathBuf,
}

impl EngineStore {
    /// A store rooted at `snapshot_path`; the WAL lives next to it with
    /// a `.wal` suffix appended.
    pub fn at(snapshot_path: impl Into<PathBuf>) -> Self {
        let snapshot_path = snapshot_path.into();
        let mut wal_path = snapshot_path.clone().into_os_string();
        wal_path.push(".wal");
        EngineStore { snapshot_path, wal_path: PathBuf::from(wal_path) }
    }

    /// The snapshot file path.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// The write-ahead log path.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// The WAL handle paired with the snapshot currently on disk.
    /// Reads only the snapshot's 24-byte header — pairing a log record
    /// must not cost a full scan of the snapshot payload.
    ///
    /// # Errors
    ///
    /// Header-read errors as [`Snapshot::read_header`].
    pub fn wal(&self) -> Result<Wal, StoreError> {
        let header = Snapshot::read_header(&self.snapshot_path)?;
        Ok(Wal::paired(&self.wal_path, header.checksum))
    }

    /// Writes `snapshot` (atomic rename), then resets the WAL with the
    /// new pairing header. A crash between the two steps leaves a
    /// stale-paired log that the next boot discards.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn save(&self, snapshot: &Snapshot) -> Result<u64, StoreError> {
        let bytes = snapshot.write(&self.snapshot_path)?;
        self.wal()?.reset()?;
        Ok(bytes)
    }

    /// Captures `engine` and [`EngineStore::save`]s it.
    ///
    /// # Errors
    ///
    /// As [`EngineStore::save`].
    pub fn checkpoint(&self, engine: &IGcnEngine) -> Result<u64, StoreError> {
        self.save(&Snapshot::capture(engine))
    }

    /// Warm-starts an engine: reads the snapshot (checksum + structural
    /// validation, **no locator pass**), then replays every WAL record
    /// through [`IGcnEngine::apply_updates_batched`] — the whole log is
    /// applied structurally and the physical layout is recomposed
    /// **once** at the end, so a long log does not pay the O(n + m)
    /// layout composition per record. The booted state is identical to
    /// per-record replay (pinned by the batched-replay equivalence
    /// test).
    ///
    /// # Errors
    ///
    /// Snapshot errors as [`Snapshot::read`]; WAL errors as
    /// [`Wal::replay`]; [`StoreError::Core`] if a logged update no
    /// longer applies (the log and snapshot are out of sync in a way
    /// the pairing header could not explain).
    pub fn boot(&self, exec_cfg: ExecConfig) -> Result<BootOutcome, StoreError> {
        let snapshot = Snapshot::read(&self.snapshot_path)?;
        let mut engine = snapshot.warm_engine(exec_cfg)?;
        let replay = self.wal()?.replay()?;
        let replayed_updates = replay.updates.len();
        engine.apply_updates_batched(&replay.updates)?;
        Ok(BootOutcome {
            prepared: snapshot.model.is_some(),
            features: snapshot.features,
            engine,
            replayed_updates,
            torn_tail_bytes: replay.torn_tail_bytes,
            stale_wal_discarded: replay.stale_discarded,
        })
    }

    /// Applies `update` with write-ahead discipline: the record is
    /// appended (and flushed) to the WAL *before* the in-memory
    /// restructuring; if the engine rejects the update, the record is
    /// rolled back off the log so a later boot will not replay it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on log failures; [`StoreError::Core`] with
    /// the engine's rejection (the log is left exactly as before).
    pub fn apply_update(
        &self,
        engine: &mut IGcnEngine,
        update: GraphUpdate,
    ) -> Result<UpdateReport, StoreError> {
        let wal = self.wal()?;
        let offset = wal.append(&update)?;
        match engine.apply_update(update) {
            Ok(report) => Ok(report),
            Err(e) => {
                wal.rollback_to(offset)?;
                Err(StoreError::Core(e))
            }
        }
    }
}
