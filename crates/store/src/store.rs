//! [`EngineStore`]: one snapshot file + its write-ahead log, managed
//! together.
//!
//! This is the durability loop of a serving node:
//!
//! 1. **first deployment** — build an engine cold, `checkpoint` it;
//! 2. **serving** — route structural changes through
//!    [`EngineStore::apply_update`] (WAL-first, so the change is on
//!    disk before it is live);
//! 3. **restart** — [`EngineStore::boot`] reads the snapshot, skips
//!    islandization, replays the WAL, and serving resumes exactly where
//!    it stopped;
//! 4. **periodically** — `checkpoint` again to fold the WAL back into
//!    the snapshot (the serving front-end's checkpoint hook calls
//!    this).
//!
//! A checkpoint is crash-safe without any coordination: the outgoing
//! snapshot is first rotated aside to `<snapshot>.prev`, the new one is
//! written temp-file-then-rename (fsync-ordered), and the WAL's pairing
//! header (see [`Wal`]) ties every log to the snapshot checksum it
//! extends — a log orphaned by a crash between the steps is recognised
//! as stale at the next boot and discarded instead of double-applied.
//! If the *published* snapshot itself turns out corrupt (torn by a
//! non-atomic writer, sector loss, bit rot), [`EngineStore::boot`]
//! quarantines it to `<snapshot>.quarantine` and falls back to the
//! previous generation plus the WAL — which still pairs with it, so no
//! acknowledged update is lost (pinned by the chaos campaign's
//! tear-offset sweep).

use std::path::{Path, PathBuf};

use igcn_core::accel::UpdateReport;
use igcn_core::{ExecConfig, GraphUpdate, IGcnEngine};

use crate::error::{io_err, StoreError};
use crate::snapshot::Snapshot;
use crate::wal::Wal;

/// Outcome of [`EngineStore::boot`].
#[derive(Debug)]
pub struct BootOutcome {
    /// The warm-started engine, WAL already replayed, model prepared
    /// when the snapshot stored one.
    pub engine: IGcnEngine,
    /// Whether a model + weights pair was prepared from the snapshot.
    pub prepared: bool,
    /// WAL records replayed onto the engine.
    pub replayed_updates: usize,
    /// Bytes of a torn WAL tail that were discarded (crash mid-append).
    pub torn_tail_bytes: u64,
    /// Whether a stale WAL (from an interrupted checkpoint) was
    /// ignored.
    pub stale_wal_discarded: bool,
    /// The snapshot's bundled default feature matrix, if any.
    pub features: Option<igcn_graph::SparseFeatures>,
    /// Whether boot fell back to the previous checkpoint generation
    /// (`<snapshot>.prev`) because the current snapshot was corrupt,
    /// torn, or missing after an interrupted checkpoint.
    pub recovered_from_previous: bool,
    /// Where a corrupt current snapshot was quarantined
    /// (`<snapshot>.quarantine`), for post-mortem inspection. `None`
    /// when the snapshot booted cleanly or was missing outright.
    pub quarantined_snapshot: Option<PathBuf>,
}

/// A snapshot file and its sidecar WAL (`<snapshot>.wal`), managed as
/// one durable engine store.
#[derive(Debug, Clone)]
pub struct EngineStore {
    snapshot_path: PathBuf,
    wal_path: PathBuf,
}

impl EngineStore {
    /// A store rooted at `snapshot_path`; the WAL lives next to it with
    /// a `.wal` suffix appended.
    pub fn at(snapshot_path: impl Into<PathBuf>) -> Self {
        let snapshot_path = snapshot_path.into();
        let mut wal_path = snapshot_path.clone().into_os_string();
        wal_path.push(".wal");
        EngineStore { snapshot_path, wal_path: PathBuf::from(wal_path) }
    }

    /// The snapshot file path.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// The write-ahead log path.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Where the previous checkpoint generation is kept
    /// (`<snapshot>.prev`) — the fallback image when the current
    /// snapshot is found corrupt at boot.
    pub fn previous_snapshot_path(&self) -> PathBuf {
        self.suffixed(".prev")
    }

    /// Where a corrupt snapshot is moved at boot
    /// (`<snapshot>.quarantine`) so it stays available for post-mortem
    /// inspection instead of being overwritten by the next checkpoint.
    pub fn quarantine_path(&self) -> PathBuf {
        self.suffixed(".quarantine")
    }

    fn suffixed(&self, suffix: &str) -> PathBuf {
        let mut path = self.snapshot_path.clone().into_os_string();
        path.push(suffix);
        PathBuf::from(path)
    }

    /// The WAL handle paired with the snapshot currently on disk.
    /// Reads only the snapshot's 24-byte header — pairing a log record
    /// must not cost a full scan of the snapshot payload.
    ///
    /// # Errors
    ///
    /// Header-read errors as [`Snapshot::read_header`].
    pub fn wal(&self) -> Result<Wal, StoreError> {
        let header = Snapshot::read_header(&self.snapshot_path)?;
        Ok(Wal::paired(&self.wal_path, header.checksum))
    }

    /// Writes `snapshot` crash-safely in three ordered steps: rotate
    /// the current snapshot to [`EngineStore::previous_snapshot_path`],
    /// write the new one (temp file + rename, fsync-ordered), then
    /// reset the WAL with the new pairing header.
    ///
    /// Every crash window is recoverable by [`EngineStore::boot`]:
    /// after the rotation the previous generation plus the still-paired
    /// WAL reconstruct the exact pre-checkpoint state; after the
    /// publish the WAL is stale-paired and discarded (its updates are
    /// folded into the new snapshot); and a *torn* publish is
    /// quarantined and falls back to the previous generation.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures. On error the store
    /// may be left rotated (previous generation only); it still boots
    /// to the exact pre-checkpoint state.
    pub fn save(&self, snapshot: &Snapshot) -> Result<u64, StoreError> {
        let _span = igcn_obs::Span::enter(igcn_obs::stage::CHECKPOINT);
        let prev = self.previous_snapshot_path();
        match std::fs::rename(&self.snapshot_path, &prev) {
            Ok(()) => {}
            // First checkpoint ever: nothing to rotate.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&self.snapshot_path, e)),
        }
        // Failpoint `store::checkpoint::rotated`: dies between the
        // rotation and the publish — boot must recover from
        // `.prev` + WAL with no acknowledged update lost.
        igcn_fail::fail_point!("store::checkpoint::rotated", |_| Err(crate::io::injected(
            &self.snapshot_path,
            "store::checkpoint::rotated"
        )));
        let (bytes, checksum) = snapshot.write_with_checksum(&self.snapshot_path)?;
        Wal::paired(&self.wal_path, checksum).reset()?;
        Ok(bytes)
    }

    /// Captures `engine` and [`EngineStore::save`]s it.
    ///
    /// # Errors
    ///
    /// As [`EngineStore::save`].
    pub fn checkpoint(&self, engine: &IGcnEngine) -> Result<u64, StoreError> {
        self.save(&Snapshot::capture(engine))
    }

    /// Warm-starts an engine: reads the snapshot (checksum + structural
    /// validation, **no locator pass**), then replays every WAL record
    /// through [`IGcnEngine::apply_updates_batched`] — the whole log is
    /// applied structurally and the physical layout is recomposed
    /// **once** at the end, so a long log does not pay the O(n + m)
    /// layout composition per record. The booted state is identical to
    /// per-record replay (pinned by the batched-replay equivalence
    /// test).
    ///
    /// A corrupt or torn current snapshot does **not** fail the boot:
    /// it is renamed to [`EngineStore::quarantine_path`] (preserved for
    /// post-mortem) and the previous checkpoint generation is loaded
    /// instead — the WAL still pairs with it, so replay reconstructs
    /// every acknowledged update. Only when no generation is usable
    /// does boot fail, with [`StoreError::NoUsableSnapshot`].
    ///
    /// # Errors
    ///
    /// [`StoreError::NoUsableSnapshot`] when the current snapshot is
    /// corrupt/missing and no previous generation can be loaded;
    /// transient I/O and version-skew errors as [`Snapshot::read`]
    /// (never quarantined — the file may be fine); WAL errors as
    /// [`Wal::replay`]; [`StoreError::Core`] if a logged update no
    /// longer applies (the log and snapshot are out of sync in a way
    /// the pairing header could not explain).
    pub fn boot(&self, exec_cfg: ExecConfig) -> Result<BootOutcome, StoreError> {
        let (snapshot, paired_checksum, quarantined, recovered) = self.load_with_fallback()?;
        let mut engine = snapshot.warm_engine(exec_cfg)?;
        let replay = Wal::paired(&self.wal_path, paired_checksum).replay()?;
        let replayed_updates = replay.updates.len();
        engine.apply_updates_batched(&replay.updates)?;
        Ok(BootOutcome {
            prepared: snapshot.model.is_some(),
            features: snapshot.features,
            engine,
            replayed_updates,
            torn_tail_bytes: replay.torn_tail_bytes,
            stale_wal_discarded: replay.stale_discarded,
            recovered_from_previous: recovered,
            quarantined_snapshot: quarantined,
        })
    }

    /// Loads the current snapshot, or — when it is corrupt (quarantined
    /// first) or missing — the previous checkpoint generation. Returns
    /// the snapshot, the checksum the WAL must pair with, the
    /// quarantine path if one was produced, and whether fallback
    /// happened.
    #[allow(clippy::type_complexity)]
    fn load_with_fallback(&self) -> Result<(Snapshot, u64, Option<PathBuf>, bool), StoreError> {
        let current_err = match Snapshot::read(&self.snapshot_path) {
            Ok(snapshot) => {
                let checksum = Snapshot::read_header(&self.snapshot_path)?.checksum;
                return Ok((snapshot, checksum, None, false));
            }
            Err(e) => e,
        };
        let quarantined = if self.snapshot_path.exists() {
            if !corruption_class(&current_err) {
                // Version skew, permission failures, transient I/O: the
                // file may be perfectly good — surface the error rather
                // than destroy the primary image.
                return Err(current_err);
            }
            let quarantine = self.quarantine_path();
            std::fs::rename(&self.snapshot_path, &quarantine)
                .map_err(|e| io_err(&self.snapshot_path, e))?;
            Some(quarantine)
        } else {
            // Missing outright: a checkpoint died between rotating the
            // old generation aside and publishing the new one.
            None
        };
        let prev = self.previous_snapshot_path();
        match Snapshot::read(&prev) {
            Ok(snapshot) => {
                let checksum = Snapshot::read_header(&prev)?.checksum;
                Ok((snapshot, checksum, quarantined, true))
            }
            Err(prev_err) => Err(StoreError::NoUsableSnapshot {
                quarantined,
                detail: format!("current snapshot: {current_err}; previous generation: {prev_err}"),
            }),
        }
    }

    /// Applies `update` with write-ahead discipline: the record is
    /// appended (and flushed) to the WAL *before* the in-memory
    /// restructuring; if the engine rejects the update, the record is
    /// rolled back off the log so a later boot will not replay it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on log failures; [`StoreError::Core`] with
    /// the engine's rejection (the log is left exactly as before).
    pub fn apply_update(
        &self,
        engine: &mut IGcnEngine,
        update: GraphUpdate,
    ) -> Result<UpdateReport, StoreError> {
        let wal = self.wal()?;
        let offset = wal.append(&update)?;
        match engine.apply_update(update) {
            Ok(report) => Ok(report),
            Err(e) => {
                // Rejections are rare enough that each one is worth a
                // counter tick: a climbing rate means callers are
                // feeding structurally invalid updates.
                igcn_obs::counter("store_wal_rollbacks").inc();
                wal.rollback_to(offset)?;
                Err(StoreError::Core(e))
            }
        }
    }
}

/// Whether a snapshot-read failure means the *file content* is damaged
/// (quarantine + fall back) as opposed to an environmental or
/// compatibility failure (surface to the operator; the bytes may be
/// fine).
fn corruption_class(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::BadMagic { .. }
            | StoreError::Truncated { .. }
            | StoreError::ChecksumMismatch { .. }
            | StoreError::Codec(_)
            | StoreError::Corrupt { .. }
            | StoreError::Core(_)
            | StoreError::Graph(_)
    )
}
