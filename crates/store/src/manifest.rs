//! The sharded-deployment manifest: one versioned, checksummed file
//! that describes a fleet of per-shard snapshots plus the coordinator
//! image, so a multi-engine deployment cold-starts from object storage
//! with nothing but this file and the snapshots it names.
//!
//! ```text
//! +---------+---------+-------------+-------------+================+
//! | "IGSM"  | version | payload_len | payload_sum |    payload     |
//! | 4 bytes | u32 LE  | u64 LE      | u64 LE FNV  | bitcode bytes  |
//! +---------+---------+-------------+-------------+================+
//! ```
//!
//! The payload lists, per member, the snapshot **file name** (resolved
//! relative to the manifest's own directory — a manifest plus its
//! snapshots move as one directory) and the snapshot's payload
//! **checksum**, pairing the manifest to the exact images it was
//! written with: a swapped or re-built snapshot fails
//! [`ShardManifest::verify_files`] before any engine is constructed.
//! Shard entries additionally carry the routing metadata a coordinator
//! needs without decoding every shard image: the global island indices
//! the shard owns, the shard's replicated-hub map (local hub slot →
//! global layout hub ID) and the local→original node ID map.
//!
//! **Versioning policy.** Same contract as snapshots: readers accept
//! exactly [`MANIFEST_VERSION`]; any layout-affecting change bumps the
//! number and older manifests fail fast with
//! [`StoreError::UnsupportedVersion`] (a manifest is derived data —
//! re-partition from the coordinator snapshot or the source graph).

use std::path::{Path, PathBuf};

use bitcode::{CodecError, Decode, Encode, Reader, Writer};

use crate::error::{io_err, StoreError};
use crate::snapshot::{framed_payload, inspect_framed, write_framed, Snapshot};

/// Leading magic bytes of every shard-manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"IGSM";

/// The manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Header size in bytes: magic + version + payload length + checksum.
pub const MANIFEST_HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// One referenced snapshot: its file name (relative to the manifest)
/// and the payload checksum recorded when the manifest was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Snapshot file name, relative to the manifest's directory.
    pub file: String,
    /// The snapshot's payload checksum (FNV-1a 64) at manifest time.
    pub checksum: u64,
}

/// One shard of the fleet: its snapshot plus the routing metadata the
/// coordinator rebuilds its plan from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// The shard's engine snapshot.
    pub snapshot: ManifestEntry,
    /// Global island indices owned by this shard, in the shard's local
    /// island order.
    pub islands: Vec<u32>,
    /// Local hub slot → global layout hub ID (`0..H`), ascending — the
    /// shard's replicated-hub (halo) map.
    pub hub_global: Vec<u32>,
    /// Local node ID → *original* global node ID (hubs first, then
    /// island nodes), the per-shard feature-gather map.
    pub gather_original: Vec<u32>,
}

/// A complete sharded-deployment description: the coordinator image
/// (global graph + partition + layout, exactly a standard [`Snapshot`])
/// and one [`ShardEntry`] per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// The coordinator snapshot (global engine image).
    pub coordinator: ManifestEntry,
    /// Per-shard snapshots + routing metadata.
    pub shards: Vec<ShardEntry>,
}

/// Header metadata of a manifest file, readable without decoding the
/// payload (`shard_tool inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestInfo {
    /// Format version recorded in the file.
    pub version: u32,
    /// Payload length in bytes.
    pub payload_bytes: u64,
    /// FNV-1a 64 checksum recorded in the header.
    pub checksum: u64,
    /// Whether the payload bytes on disk hash to the recorded checksum.
    pub checksum_ok: bool,
}

impl ShardManifest {
    /// Number of shards described.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Serialises the manifest (header + checksummed payload) to
    /// `path`, write-then-rename like snapshots. Returns total bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        let payload = bitcode::encode(&RawManifest::from_manifest(self));
        write_framed(path.as_ref(), MANIFEST_MAGIC, MANIFEST_VERSION, &payload)
            .map(|(bytes, _)| bytes)
    }

    /// Reads, verifies (magic, version, length, checksum) and decodes a
    /// manifest. The referenced snapshot files are *not* opened — run
    /// [`ShardManifest::verify_files`] for that.
    ///
    /// # Errors
    ///
    /// The [`StoreError`] taxonomy: I/O, magic/version/length/checksum
    /// failures, codec errors, and structural inconsistencies.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let bytes = crate::io::read(path).map_err(|e| io_err(path, e))?;
        let payload = framed_payload(&bytes, MANIFEST_MAGIC, MANIFEST_VERSION)?;
        let raw: RawManifest = bitcode::decode(payload)?;
        raw.into_manifest()
    }

    /// Reads only the header of a manifest file, verifying the payload
    /// checksum without decoding.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], [`StoreError::BadMagic`] or
    /// [`StoreError::Truncated`]; version and checksum mismatches are
    /// reported in the returned [`ManifestInfo`].
    pub fn inspect(path: impl AsRef<Path>) -> Result<ManifestInfo, StoreError> {
        let path = path.as_ref();
        let bytes = crate::io::read(path).map_err(|e| io_err(path, e))?;
        let info = inspect_framed(&bytes, MANIFEST_MAGIC)?;
        Ok(ManifestInfo {
            version: info.version,
            payload_bytes: info.payload_bytes,
            checksum: info.checksum,
            checksum_ok: info.checksum_ok,
        })
    }

    /// Resolves a member's snapshot path against the manifest's
    /// directory.
    pub fn resolve(manifest_path: &Path, entry: &ManifestEntry) -> PathBuf {
        match manifest_path.parent() {
            Some(dir) => dir.join(&entry.file),
            None => PathBuf::from(&entry.file),
        }
    }

    /// Verifies that every referenced snapshot exists and its header
    /// checksum matches the one recorded at manifest time — the cheap
    /// (header-only) fleet integrity check a cold start runs before
    /// decoding megabytes of payload.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for a missing file,
    /// [`StoreError::ChecksumMismatch`] for a snapshot that was
    /// replaced or rebuilt since the manifest was written.
    pub fn verify_files(&self, manifest_path: &Path) -> Result<(), StoreError> {
        for entry in
            std::iter::once(&self.coordinator).chain(self.shards.iter().map(|s| &s.snapshot))
        {
            let path = Self::resolve(manifest_path, entry);
            let header = Snapshot::read_header(&path)?;
            if header.checksum != entry.checksum {
                return Err(StoreError::ChecksumMismatch {
                    expected: entry.checksum,
                    computed: header.checksum,
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Wire mirrors
// ---------------------------------------------------------------------

struct RawEntry {
    file: String,
    checksum: u64,
}

impl Encode for RawEntry {
    fn encode(&self, w: &mut Writer) {
        self.file.encode(w);
        self.checksum.encode(w);
    }
}

impl Decode for RawEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawEntry { file: String::decode(r)?, checksum: u64::decode(r)? })
    }
}

struct RawShardEntry {
    snapshot: RawEntry,
    islands: Vec<u32>,
    hub_global: Vec<u32>,
    gather_original: Vec<u32>,
}

impl Encode for RawShardEntry {
    fn encode(&self, w: &mut Writer) {
        self.snapshot.encode(w);
        self.islands.encode(w);
        self.hub_global.encode(w);
        self.gather_original.encode(w);
    }
}

impl Decode for RawShardEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawShardEntry {
            snapshot: RawEntry::decode(r)?,
            islands: Vec::decode(r)?,
            hub_global: Vec::decode(r)?,
            gather_original: Vec::decode(r)?,
        })
    }
}

struct RawManifest {
    coordinator: RawEntry,
    shards: Vec<RawShardEntry>,
}

impl RawManifest {
    fn from_manifest(m: &ShardManifest) -> Self {
        RawManifest {
            coordinator: RawEntry {
                file: m.coordinator.file.clone(),
                checksum: m.coordinator.checksum,
            },
            shards: m
                .shards
                .iter()
                .map(|s| RawShardEntry {
                    snapshot: RawEntry {
                        file: s.snapshot.file.clone(),
                        checksum: s.snapshot.checksum,
                    },
                    islands: s.islands.clone(),
                    hub_global: s.hub_global.clone(),
                    gather_original: s.gather_original.clone(),
                })
                .collect(),
        }
    }

    fn into_manifest(self) -> Result<ShardManifest, StoreError> {
        if self.shards.is_empty() {
            return Err(StoreError::Corrupt {
                detail: "manifest describes zero shards".to_string(),
            });
        }
        let shards: Vec<ShardEntry> = self
            .shards
            .into_iter()
            .map(|s| ShardEntry {
                snapshot: ManifestEntry { file: s.snapshot.file, checksum: s.snapshot.checksum },
                islands: s.islands,
                hub_global: s.hub_global,
                gather_original: s.gather_original,
            })
            .collect();
        // Every global island must be owned by exactly one shard.
        let mut owned: Vec<u32> = shards.iter().flat_map(|s| s.islands.iter().copied()).collect();
        let total = owned.len();
        owned.sort_unstable();
        owned.dedup();
        if owned.len() != total {
            return Err(StoreError::Corrupt {
                detail: "manifest assigns an island to more than one shard".to_string(),
            });
        }
        Ok(ShardManifest {
            coordinator: ManifestEntry {
                file: self.coordinator.file,
                checksum: self.coordinator.checksum,
            },
            shards,
        })
    }
}

impl Encode for RawManifest {
    fn encode(&self, w: &mut Writer) {
        self.coordinator.encode(w);
        self.shards.encode(w);
    }
}

impl Decode for RawManifest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawManifest { coordinator: RawEntry::decode(r)?, shards: Vec::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    fn temp_path(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("igcn-manifest-{}-{tag}-{n}.igsm", std::process::id()))
    }

    fn sample() -> ShardManifest {
        ShardManifest {
            coordinator: ManifestEntry { file: "global.snap".to_string(), checksum: 11 },
            shards: vec![
                ShardEntry {
                    snapshot: ManifestEntry { file: "shard0.snap".to_string(), checksum: 22 },
                    islands: vec![0, 2],
                    hub_global: vec![0, 1, 3],
                    gather_original: vec![5, 9, 1, 2, 3],
                },
                ShardEntry {
                    snapshot: ManifestEntry { file: "shard1.snap".to_string(), checksum: 33 },
                    islands: vec![1],
                    hub_global: vec![1],
                    gather_original: vec![9, 4],
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let path = temp_path("roundtrip");
        let m = sample();
        let bytes = m.write(&path).unwrap();
        assert!(bytes > MANIFEST_HEADER_BYTES as u64);
        let back = ShardManifest::read(&path).unwrap();
        assert_eq!(back, m);
        let info = ShardManifest::inspect(&path).unwrap();
        assert_eq!(info.version, MANIFEST_VERSION);
        assert!(info.checksum_ok);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_manifest_fails_typed() {
        let path = temp_path("corrupt");
        sample().write(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = MANIFEST_HEADER_BYTES + (bytes.len() - MANIFEST_HEADER_BYTES) / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(ShardManifest::read(&path), Err(StoreError::ChecksumMismatch { .. })));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardManifest::read(&path),
            Err(StoreError::UnsupportedVersion { found: 9, .. })
        ));
        std::fs::write(&path, b"nope").unwrap();
        assert!(matches!(ShardManifest::read(&path), Err(StoreError::Truncated { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_island_ownership_rejected() {
        let path = temp_path("dup");
        let mut m = sample();
        m.shards[1].islands = vec![0]; // island 0 already owned by shard 0
        m.write(&path).unwrap();
        assert!(matches!(ShardManifest::read(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_files_checks_snapshot_pairing() {
        // A manifest naming a missing snapshot fails with Io.
        let path = temp_path("pairing");
        let m = sample();
        m.write(&path).unwrap();
        assert!(matches!(m.verify_files(&path), Err(StoreError::Io { .. })));
        std::fs::remove_file(&path).ok();
    }
}
