//! The snapshot wire format: explicit mirror structs with hand-written
//! [`Encode`]/[`Decode`] impls, plus validated conversions to and from
//! the domain types.
//!
//! The mirrors are the *format contract*: the bytes a snapshot contains
//! are exactly what this module writes, independent of how the domain
//! structs happen to be laid out in any given release. Conversions out
//! of the wire structs re-validate everything through the domain
//! constructors (`CsrGraph::from_raw_parts`,
//! `IslandPartition::from_raw_parts`, `IslandLayout::from_raw_parts`,
//! …), so a decoded snapshot is structurally sound before an engine is
//! built over it — corrupt bytes surface as typed [`StoreError`]s,
//! never as panics deep in the execution core.

use bitcode::{CodecError, Decode, Encode, Reader, Writer};

use igcn_core::config::PreaggPolicy;
use igcn_core::partition::NodeClass;
use igcn_core::stats::{LocatorStats, RoundStats};
use igcn_core::{
    ConsumerConfig, DecayPolicy, Island, IslandBitmap, IslandLayout, IslandPartition,
    IslandSchedule, IslandizationConfig, ThresholdInit,
};
use igcn_gnn::{Activation, GnnKind, GnnModel, LayerConfig, ModelWeights};
use igcn_graph::{CsrGraph, Permutation, SparseFeatures};
use igcn_linalg::DenseMatrix;

use crate::error::StoreError;

fn corrupt(detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { detail: detail.into() }
}

fn invalid(detail: impl Into<String>) -> CodecError {
    CodecError::Invalid { detail: detail.into() }
}

// ---------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------

/// CSR adjacency on the wire.
pub struct RawGraph {
    pub num_nodes: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<u32>,
}

impl RawGraph {
    pub fn from_graph(g: &CsrGraph) -> Self {
        RawGraph {
            num_nodes: g.num_nodes(),
            row_ptr: g.row_ptr().to_vec(),
            col_idx: g.col_idx().to_vec(),
        }
    }

    pub fn into_graph(self) -> Result<CsrGraph, StoreError> {
        Ok(CsrGraph::from_raw_parts(self.num_nodes, self.row_ptr, self.col_idx)?)
    }
}

impl Encode for RawGraph {
    fn encode(&self, w: &mut Writer) {
        self.num_nodes.encode(w);
        self.row_ptr.encode(w);
        self.col_idx.encode(w);
    }
}

impl Decode for RawGraph {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawGraph {
            num_nodes: usize::decode(r)?,
            row_ptr: Vec::decode(r)?,
            col_idx: Vec::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------

/// Node classification on the wire: hubs and island indices share a
/// `u32` with two reserved sentinels.
const CLASS_HUB: u32 = u32::MAX;
const CLASS_UNCLASSIFIED: u32 = u32::MAX - 1;

pub struct RawIsland {
    pub nodes: Vec<u32>,
    pub hubs: Vec<u32>,
    pub round: u32,
    pub engine: u32,
}

impl Encode for RawIsland {
    fn encode(&self, w: &mut Writer) {
        self.nodes.encode(w);
        self.hubs.encode(w);
        self.round.encode(w);
        self.engine.encode(w);
    }
}

impl Decode for RawIsland {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawIsland {
            nodes: Vec::decode(r)?,
            hubs: Vec::decode(r)?,
            round: u32::decode(r)?,
            engine: u32::decode(r)?,
        })
    }
}

pub struct RawPartition {
    pub num_nodes: usize,
    pub islands: Vec<RawIsland>,
    pub hubs: Vec<u32>,
    pub inter_hub_edges: Vec<(u32, u32)>,
    pub node_class: Vec<u32>,
    pub c_max: usize,
}

impl RawPartition {
    pub fn from_partition(p: &IslandPartition) -> Self {
        RawPartition {
            num_nodes: p.num_nodes(),
            islands: p
                .islands()
                .iter()
                .map(|isl| RawIsland {
                    nodes: isl.nodes.clone(),
                    hubs: isl.hubs.clone(),
                    round: isl.round,
                    engine: isl.engine,
                })
                .collect(),
            hubs: p.hubs().to_vec(),
            inter_hub_edges: p.inter_hub_edges().to_vec(),
            node_class: p
                .node_classes()
                .iter()
                .map(|c| match c {
                    NodeClass::Hub => CLASS_HUB,
                    NodeClass::Unclassified => CLASS_UNCLASSIFIED,
                    NodeClass::Island(i) => *i,
                })
                .collect(),
            c_max: p.c_max(),
        }
    }

    pub fn into_partition(self) -> Result<IslandPartition, StoreError> {
        let num_islands = self.islands.len();
        let node_class: Vec<NodeClass> = self
            .node_class
            .into_iter()
            .map(|c| match c {
                CLASS_HUB => Ok(NodeClass::Hub),
                CLASS_UNCLASSIFIED => Err(corrupt(
                    "snapshot stores an unclassified node; partitions are always total",
                )),
                i if (i as usize) < num_islands => Ok(NodeClass::Island(i)),
                i => Err(corrupt(format!(
                    "node class references island {i}, only {num_islands} islands stored"
                ))),
            })
            .collect::<Result<_, _>>()?;
        let islands: Vec<Island> = self
            .islands
            .into_iter()
            .map(|isl| Island {
                nodes: isl.nodes,
                hubs: isl.hubs,
                round: isl.round,
                engine: isl.engine,
            })
            .collect();
        Ok(IslandPartition::from_raw_parts(
            self.num_nodes,
            islands,
            self.hubs,
            self.inter_hub_edges,
            node_class,
            self.c_max,
        )?)
    }
}

impl Encode for RawPartition {
    fn encode(&self, w: &mut Writer) {
        self.num_nodes.encode(w);
        self.islands.encode(w);
        self.hubs.encode(w);
        self.inter_hub_edges.encode(w);
        self.node_class.encode(w);
        self.c_max.encode(w);
    }
}

impl Decode for RawPartition {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawPartition {
            num_nodes: usize::decode(r)?,
            islands: Vec::decode(r)?,
            hubs: Vec::decode(r)?,
            inter_hub_edges: Vec::decode(r)?,
            node_class: Vec::decode(r)?,
            c_max: usize::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Locator statistics
// ---------------------------------------------------------------------

pub struct RawLocatorStats(pub LocatorStats);

impl Encode for RawLocatorStats {
    fn encode(&self, w: &mut Writer) {
        let s = &self.0;
        s.rounds.len().encode(w);
        for round in &s.rounds {
            round.round.encode(w);
            round.threshold.encode(w);
            round.hubs_found.encode(w);
            round.islands_found.encode(w);
            round.island_nodes_classified.encode(w);
            round.hub_detect_cycles.encode(w);
            round.bfs_cycles.encode(w);
        }
        s.virtual_cycles.encode(w);
        s.adjacency_words_read.encode(w);
        s.tasks_generated.encode(w);
        s.tasks_dropped_conflict.encode(w);
        s.tasks_dropped_overflow.encode(w);
        s.tasks_dropped_hub_seed.encode(w);
        s.inter_hub_edges.encode(w);
        s.islands_found.encode(w);
    }
}

impl Decode for RawLocatorStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let num_rounds = r.read_len(8)?;
        let mut rounds = Vec::with_capacity(num_rounds);
        for _ in 0..num_rounds {
            rounds.push(RoundStats {
                round: u32::decode(r)?,
                threshold: u32::decode(r)?,
                hubs_found: usize::decode(r)?,
                islands_found: usize::decode(r)?,
                island_nodes_classified: usize::decode(r)?,
                hub_detect_cycles: u64::decode(r)?,
                bfs_cycles: u64::decode(r)?,
            });
        }
        Ok(RawLocatorStats(LocatorStats {
            rounds,
            virtual_cycles: u64::decode(r)?,
            adjacency_words_read: u64::decode(r)?,
            tasks_generated: u64::decode(r)?,
            tasks_dropped_conflict: u64::decode(r)?,
            tasks_dropped_overflow: u64::decode(r)?,
            tasks_dropped_hub_seed: u64::decode(r)?,
            inter_hub_edges: u64::decode(r)?,
            islands_found: u64::decode(r)?,
        }))
    }
}

// ---------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------

pub struct RawBitmap {
    pub num_hubs: usize,
    pub members: Vec<u32>,
    pub bits: Vec<u64>,
}

impl RawBitmap {
    fn from_bitmap(bm: &IslandBitmap) -> Self {
        RawBitmap {
            num_hubs: bm.num_hubs(),
            members: bm.members().to_vec(),
            bits: bm.bits().to_vec(),
        }
    }

    fn into_bitmap(self) -> Result<IslandBitmap, StoreError> {
        IslandBitmap::from_raw_parts(self.num_hubs, self.members, self.bits).map_err(corrupt)
    }
}

impl Encode for RawBitmap {
    fn encode(&self, w: &mut Writer) {
        self.num_hubs.encode(w);
        self.members.encode(w);
        self.bits.encode(w);
    }
}

impl Decode for RawBitmap {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawBitmap {
            num_hubs: usize::decode(r)?,
            members: Vec::decode(r)?,
            bits: Vec::decode(r)?,
        })
    }
}

pub struct RawLayout {
    /// `forward[old] = new` of the schedule-order permutation.
    pub forward: Vec<u32>,
    pub graph: RawGraph,
    pub partition: RawPartition,
    pub wave_width: usize,
    pub work: Vec<u64>,
    pub bitmaps_self: Vec<RawBitmap>,
    pub bitmaps_plain: Vec<RawBitmap>,
    pub inter_hub_tasks: Vec<(u32, Vec<u32>)>,
}

impl RawLayout {
    pub fn from_layout(layout: &IslandLayout) -> Self {
        let num_islands = layout.partition().num_islands();
        RawLayout {
            forward: layout.forward().to_vec(),
            graph: RawGraph::from_graph(layout.graph()),
            partition: RawPartition::from_partition(layout.partition()),
            wave_width: layout.schedule().wave_width(),
            work: layout.schedule().work().to_vec(),
            bitmaps_self: (0..num_islands)
                .map(|i| RawBitmap::from_bitmap(layout.bitmap(i, true)))
                .collect(),
            bitmaps_plain: (0..num_islands)
                .map(|i| RawBitmap::from_bitmap(layout.bitmap(i, false)))
                .collect(),
            inter_hub_tasks: layout.inter_hub_tasks().to_vec(),
        }
    }

    pub fn into_layout(self) -> Result<IslandLayout, StoreError> {
        let perm = Permutation::from_forward(self.forward)?;
        let graph = self.graph.into_graph()?;
        let partition = self.partition.into_partition()?;
        let schedule =
            IslandSchedule::from_raw_parts(self.wave_width, self.work).map_err(corrupt)?;
        let bitmaps_self: Vec<IslandBitmap> =
            self.bitmaps_self.into_iter().map(RawBitmap::into_bitmap).collect::<Result<_, _>>()?;
        let bitmaps_plain: Vec<IslandBitmap> =
            self.bitmaps_plain.into_iter().map(RawBitmap::into_bitmap).collect::<Result<_, _>>()?;
        Ok(IslandLayout::from_raw_parts(
            perm,
            graph,
            partition,
            schedule,
            bitmaps_self,
            bitmaps_plain,
            self.inter_hub_tasks,
        )?)
    }
}

impl Encode for RawLayout {
    fn encode(&self, w: &mut Writer) {
        self.forward.encode(w);
        self.graph.encode(w);
        self.partition.encode(w);
        self.wave_width.encode(w);
        self.work.encode(w);
        self.bitmaps_self.encode(w);
        self.bitmaps_plain.encode(w);
        self.inter_hub_tasks.encode(w);
    }
}

impl Decode for RawLayout {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawLayout {
            forward: Vec::decode(r)?,
            graph: RawGraph::decode(r)?,
            partition: RawPartition::decode(r)?,
            wave_width: usize::decode(r)?,
            work: Vec::decode(r)?,
            bitmaps_self: Vec::decode(r)?,
            bitmaps_plain: Vec::decode(r)?,
            inter_hub_tasks: Vec::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Configurations
// ---------------------------------------------------------------------

pub struct RawIslandCfg(pub IslandizationConfig);

impl Encode for RawIslandCfg {
    fn encode(&self, w: &mut Writer) {
        let c = &self.0;
        match c.threshold_init {
            ThresholdInit::MaxDegreeFraction(f) => {
                0u8.encode(w);
                f.encode(w);
            }
            ThresholdInit::Absolute(t) => {
                1u8.encode(w);
                t.encode(w);
            }
        }
        match c.decay {
            DecayPolicy::Halve => {
                0u8.encode(w);
                0u32.encode(w);
            }
            DecayPolicy::Linear { step } => {
                1u8.encode(w);
                step.encode(w);
            }
        }
        c.c_max.encode(w);
        c.p1_lanes.encode(w);
        c.p2_engines.encode(w);
        c.max_rounds.encode(w);
    }
}

impl Decode for RawIslandCfg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let threshold_init = match u8::decode(r)? {
            0 => ThresholdInit::MaxDegreeFraction(f64::decode(r)?),
            1 => ThresholdInit::Absolute(u32::decode(r)?),
            t => return Err(invalid(format!("unknown threshold-init tag {t}"))),
        };
        let decay = match (u8::decode(r)?, u32::decode(r)?) {
            (0, _) => DecayPolicy::Halve,
            (1, step) => DecayPolicy::Linear { step },
            (t, _) => return Err(invalid(format!("unknown decay tag {t}"))),
        };
        Ok(RawIslandCfg(IslandizationConfig {
            threshold_init,
            decay,
            c_max: usize::decode(r)?,
            p1_lanes: usize::decode(r)?,
            p2_engines: usize::decode(r)?,
            max_rounds: u32::decode(r)?,
        }))
    }
}

pub struct RawConsumerCfg(pub ConsumerConfig);

impl Encode for RawConsumerCfg {
    fn encode(&self, w: &mut Writer) {
        let c = &self.0;
        c.k.encode(w);
        c.num_pes.encode(w);
        match c.preagg {
            PreaggPolicy::Eager => 0u8.encode(w),
            PreaggPolicy::Lazy => 1u8.encode(w),
        }
        c.redundancy_removal.encode(w);
    }
}

impl Decode for RawConsumerCfg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let k = usize::decode(r)?;
        let num_pes = usize::decode(r)?;
        let preagg = match u8::decode(r)? {
            0 => PreaggPolicy::Eager,
            1 => PreaggPolicy::Lazy,
            t => return Err(invalid(format!("unknown pre-aggregation tag {t}"))),
        };
        let redundancy_removal = bool::decode(r)?;
        Ok(RawConsumerCfg(ConsumerConfig { k, num_pes, preagg, redundancy_removal }))
    }
}

// ---------------------------------------------------------------------
// Model, weights, features
// ---------------------------------------------------------------------

pub struct RawModel {
    pub kind: u8,
    pub layers: Vec<(usize, usize, u8)>,
    pub epsilon: f32,
}

impl RawModel {
    pub fn from_model(m: &GnnModel) -> Self {
        RawModel {
            kind: match m.kind() {
                GnnKind::Gcn => 0,
                GnnKind::GraphSage => 1,
                GnnKind::Gin => 2,
            },
            layers: m
                .layers()
                .iter()
                .map(|l| {
                    let act = match l.activation {
                        Activation::Relu => 0u8,
                        Activation::None => 1u8,
                    };
                    (l.in_dim, l.out_dim, act)
                })
                .collect(),
            epsilon: m.epsilon(),
        }
    }

    pub fn into_model(self) -> Result<GnnModel, StoreError> {
        let kind = match self.kind {
            0 => GnnKind::Gcn,
            1 => GnnKind::GraphSage,
            2 => GnnKind::Gin,
            t => return Err(corrupt(format!("unknown model kind tag {t}"))),
        };
        if self.layers.is_empty() {
            return Err(corrupt("stored model has no layers"));
        }
        let layers: Vec<LayerConfig> = self
            .layers
            .iter()
            .map(|&(in_dim, out_dim, act)| {
                let activation = match act {
                    0 => Ok(Activation::Relu),
                    1 => Ok(Activation::None),
                    t => Err(corrupt(format!("unknown activation tag {t}"))),
                }?;
                Ok(LayerConfig { in_dim, out_dim, activation })
            })
            .collect::<Result<_, StoreError>>()?;
        for pair in layers.windows(2) {
            if pair[0].out_dim != pair[1].in_dim {
                return Err(corrupt(format!(
                    "stored model layers do not chain ({} out vs {} in)",
                    pair[0].out_dim, pair[1].in_dim
                )));
            }
        }
        Ok(GnnModel::from_layers(kind, layers, self.epsilon))
    }
}

impl Encode for RawModel {
    fn encode(&self, w: &mut Writer) {
        self.kind.encode(w);
        self.layers.len().encode(w);
        for &(i, o, a) in &self.layers {
            i.encode(w);
            o.encode(w);
            a.encode(w);
        }
        self.epsilon.encode(w);
    }
}

impl Decode for RawModel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let kind = u8::decode(r)?;
        let num_layers = r.read_len(17)?;
        let mut layers = Vec::with_capacity(num_layers);
        for _ in 0..num_layers {
            layers.push((usize::decode(r)?, usize::decode(r)?, u8::decode(r)?));
        }
        Ok(RawModel { kind, layers, epsilon: f32::decode(r)? })
    }
}

pub struct RawMatrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl RawMatrix {
    pub fn from_matrix(m: &DenseMatrix) -> Self {
        RawMatrix { rows: m.rows(), cols: m.cols(), data: m.as_slice().to_vec() }
    }

    pub fn into_matrix(self) -> Result<DenseMatrix, StoreError> {
        let expected = self.rows.checked_mul(self.cols).ok_or_else(|| {
            corrupt(format!("matrix shape {}×{} overflows", self.rows, self.cols))
        })?;
        if self.data.len() != expected {
            return Err(corrupt(format!(
                "matrix data has {} entries, shape {}×{} needs {expected}",
                self.data.len(),
                self.rows,
                self.cols
            )));
        }
        Ok(DenseMatrix::from_vec(self.rows, self.cols, self.data))
    }
}

impl Encode for RawMatrix {
    fn encode(&self, w: &mut Writer) {
        self.rows.encode(w);
        self.cols.encode(w);
        self.data.encode(w);
    }
}

impl Decode for RawMatrix {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawMatrix { rows: usize::decode(r)?, cols: usize::decode(r)?, data: Vec::decode(r)? })
    }
}

/// Converts stored weight matrices back, validating the chain before
/// `ModelWeights::from_matrices` (which panics on bad chains).
pub fn weights_from_raw(raw: Vec<RawMatrix>) -> Result<ModelWeights, StoreError> {
    let matrices: Vec<DenseMatrix> =
        raw.into_iter().map(RawMatrix::into_matrix).collect::<Result<_, _>>()?;
    for pair in matrices.windows(2) {
        if pair[0].cols() != pair[1].rows() {
            return Err(corrupt(format!(
                "stored weight shapes do not chain ({} cols vs {} rows)",
                pair[0].cols(),
                pair[1].rows()
            )));
        }
    }
    Ok(ModelWeights::from_matrices(matrices))
}

pub struct RawFeatures {
    pub num_rows: usize,
    pub num_cols: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f32>,
}

impl RawFeatures {
    pub fn from_features(x: &SparseFeatures) -> Self {
        RawFeatures {
            num_rows: x.num_rows(),
            num_cols: x.num_cols(),
            row_ptr: x.row_ptr().to_vec(),
            col_idx: x.col_idx().to_vec(),
            values: x.values().to_vec(),
        }
    }

    pub fn into_features(self) -> Result<SparseFeatures, StoreError> {
        Ok(SparseFeatures::from_raw_parts(
            self.num_rows,
            self.num_cols,
            self.row_ptr,
            self.col_idx,
            self.values,
        )?)
    }
}

impl Encode for RawFeatures {
    fn encode(&self, w: &mut Writer) {
        self.num_rows.encode(w);
        self.num_cols.encode(w);
        self.row_ptr.encode(w);
        self.col_idx.encode(w);
        self.values.encode(w);
    }
}

impl Decode for RawFeatures {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawFeatures {
            num_rows: usize::decode(r)?,
            num_cols: usize::decode(r)?,
            row_ptr: Vec::decode(r)?,
            col_idx: Vec::decode(r)?,
            values: Vec::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Graph updates (WAL records)
// ---------------------------------------------------------------------

pub struct RawUpdate {
    pub added_edges: Vec<(u32, u32)>,
    pub removed_edges: Vec<(u32, u32)>,
    pub new_num_nodes: Option<usize>,
}

impl Encode for RawUpdate {
    fn encode(&self, w: &mut Writer) {
        self.added_edges.encode(w);
        self.removed_edges.encode(w);
        self.new_num_nodes.encode(w);
    }
}

impl Decode for RawUpdate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawUpdate {
            added_edges: Vec::decode(r)?,
            removed_edges: Vec::decode(r)?,
            new_num_nodes: Option::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// The complete snapshot payload
// ---------------------------------------------------------------------

/// Everything a snapshot stores, in wire order.
pub struct RawSnapshot {
    pub island_cfg: RawIslandCfg,
    pub consumer_cfg: RawConsumerCfg,
    pub graph: RawGraph,
    pub partition: RawPartition,
    pub locator_stats: RawLocatorStats,
    pub layout: RawLayout,
    pub model: Option<RawModel>,
    pub weights: Option<Vec<RawMatrix>>,
    pub features: Option<RawFeatures>,
}

impl Encode for RawSnapshot {
    fn encode(&self, w: &mut Writer) {
        self.island_cfg.encode(w);
        self.consumer_cfg.encode(w);
        self.graph.encode(w);
        self.partition.encode(w);
        self.locator_stats.encode(w);
        self.layout.encode(w);
        self.model.encode(w);
        self.weights.encode(w);
        self.features.encode(w);
    }
}

impl Decode for RawSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawSnapshot {
            island_cfg: RawIslandCfg::decode(r)?,
            consumer_cfg: RawConsumerCfg::decode(r)?,
            graph: RawGraph::decode(r)?,
            partition: RawPartition::decode(r)?,
            locator_stats: RawLocatorStats::decode(r)?,
            layout: RawLayout::decode(r)?,
            model: Option::decode(r)?,
            weights: Option::decode(r)?,
            features: Option::decode(r)?,
        })
    }
}
