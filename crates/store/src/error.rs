//! Typed errors of the snapshot store.
//!
//! Every failure mode a corrupt file, a version skew or a bad byte can
//! cause is a [`StoreError`] variant — loading a snapshot never panics.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use bitcode::CodecError;
use igcn_core::CoreError;
use igcn_graph::GraphError;

/// Errors of snapshot and write-ahead-log I/O, decoding and validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// The operating system refused a file operation.
    Io {
        /// Path the operation targeted.
        path: PathBuf,
        /// The OS error, rendered (I/O errors are not `Clone`).
        detail: String,
    },
    /// The file does not start with the snapshot magic — it is not a
    /// snapshot at all (or the first bytes were destroyed).
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes
        /// ([`crate::snapshot::SNAPSHOT_VERSION`]).
        supported: u32,
    },
    /// The file is shorter than its header promises.
    Truncated {
        /// Bytes the header declared.
        needed: u64,
        /// Bytes actually present after the header.
        got: u64,
    },
    /// The payload bytes do not hash to the recorded checksum — the
    /// snapshot was corrupted after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes on disk.
        computed: u64,
    },
    /// The payload failed to decode (truncated values, bad tags…).
    Codec(CodecError),
    /// The payload decoded but describes an impossible engine image
    /// (mirrored counts disagree, enum discriminants unknown…).
    Corrupt {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A decoded structure failed the engine's structural validation
    /// ([`IslandPartition::from_raw_parts`] and friends), or warm boot
    /// was rejected by the engine builder.
    ///
    /// [`IslandPartition::from_raw_parts`]:
    /// igcn_core::IslandPartition::from_raw_parts
    Core(CoreError),
    /// A decoded graph or feature matrix failed CSR validation.
    Graph(GraphError),
    /// The write-ahead log is damaged mid-file (a torn *tail* — an
    /// interrupted final append — is tolerated and reported, not an
    /// error).
    WalCorrupt {
        /// Byte offset of the damaged record.
        offset: u64,
        /// Human-readable description.
        detail: String,
    },
    /// Boot found the current snapshot corrupt or missing, quarantined
    /// it when there was a file to quarantine, and the previous
    /// checkpoint generation could not be loaded either — there is
    /// nothing to serve from. Rebuild the snapshot from the source
    /// graph.
    NoUsableSnapshot {
        /// Where the corrupt snapshot was moved
        /// (`<snapshot>.quarantine`); `None` when it was missing
        /// outright.
        quarantined: Option<PathBuf>,
        /// Why the current and previous generations were both rejected.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => {
                write!(f, "i/o error on {}: {detail}", path.display())
            }
            StoreError::BadMagic { found } => {
                write!(f, "not an igcn snapshot (magic bytes {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is not supported \
                     (this build reads version {supported})"
                )
            }
            StoreError::Truncated { needed, got } => {
                write!(
                    f,
                    "snapshot truncated: header promises {needed} payload bytes, {got} present"
                )
            }
            StoreError::ChecksumMismatch { expected, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: header records {expected:#018x}, \
                     payload hashes to {computed:#018x}"
                )
            }
            StoreError::Codec(e) => write!(f, "snapshot payload decode failed: {e}"),
            StoreError::Corrupt { detail } => write!(f, "snapshot is inconsistent: {detail}"),
            StoreError::Core(e) => write!(f, "snapshot failed engine validation: {e}"),
            StoreError::Graph(e) => write!(f, "snapshot failed graph validation: {e}"),
            StoreError::WalCorrupt { offset, detail } => {
                write!(f, "write-ahead log damaged at byte {offset}: {detail}")
            }
            StoreError::NoUsableSnapshot { quarantined, detail } => match quarantined {
                Some(q) => write!(
                    f,
                    "no usable snapshot generation (corrupt image quarantined at {}): {detail}",
                    q.display()
                ),
                None => write!(f, "no usable snapshot generation: {detail}"),
            },
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            StoreError::Core(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

/// Wraps an I/O failure with the path it happened on.
pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> StoreError {
    StoreError::Io { path: path.to_path_buf(), detail: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SNAPSHOT_VERSION;

    #[test]
    fn display_is_informative() {
        let e = StoreError::UnsupportedVersion { found: 9, supported: SNAPSHOT_VERSION };
        assert!(e.to_string().contains("version 9"));
        let e = StoreError::ChecksumMismatch { expected: 1, computed: 2 };
        assert!(e.to_string().contains("checksum"));
        let e = StoreError::WalCorrupt { offset: 12, detail: "boom".to_string() };
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
