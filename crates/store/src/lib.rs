//! # igcn-store — persistent snapshots and warm-start boot
//!
//! The paper's premise is that islandization is computed *at runtime*;
//! in a production serving deployment that cost would otherwise be paid
//! again on every process restart, even though the engine already
//! materialises the expensive artefact (the composed schedule-order
//! [`IslandLayout`]). This crate persists the complete engine image —
//! graph, partition, locator statistics, physical layout, and
//! optionally the prepared model + weights and a default feature matrix
//! — in a versioned, checksummed binary format, plus a write-ahead log
//! of [`GraphUpdate`]s, so a restarted node **warm-starts**: boot skips
//! the Island Locator pass and the layout composition entirely and runs
//! only checksum verification and a cheap structural invariant check.
//!
//! * [`Snapshot`] — capture / [`Snapshot::write`] / [`Snapshot::read`]
//!   one engine image (format details and the versioning policy live on
//!   the [`snapshot`] module).
//! * [`from_snapshot`] — the warm twin of `IGcnEngine::builder`:
//!   `from_snapshot(path).exec_config(cfg).build()?` boots a serving
//!   engine without re-islandizing.
//! * [`Wal`] — the update log; [`EngineStore`] manages a snapshot and
//!   its WAL as one durable store (WAL-first updates, crash-safe
//!   checkpoints, replay on boot).
//!
//! The wire format is hand-written over the vendored `bitcode`-style
//! codec in `crates/compat/bitcode` — no network dependencies, no
//! panics on corrupt bytes: every failure mode is a typed
//! [`StoreError`].
//!
//! # Example
//!
//! ```
//! use igcn_core::{Accelerator, ExecConfig, IGcnEngine};
//! use igcn_gnn::{GnnModel, ModelWeights};
//! use igcn_graph::generate::HubIslandConfig;
//! use igcn_store::{from_snapshot, Snapshot};
//!
//! // Cold build once (pays the islandization cost)...
//! let g = HubIslandConfig::new(200, 8).noise_fraction(0.0).generate(4);
//! let mut engine = IGcnEngine::builder(g.graph).build()?;
//! let model = GnnModel::gcn(16, 8, 3);
//! let weights = ModelWeights::glorot(&model, 2);
//! engine.prepare(&model, &weights)?;
//!
//! // ...snapshot it...
//! let path = std::env::temp_dir().join("igcn-store-doctest.snap");
//! Snapshot::capture(&engine).write(&path).expect("snapshot writes");
//!
//! // ...and every later boot is warm: no locator pass, model prepared.
//! let warm = from_snapshot(&path).exec_config(ExecConfig::default()).build().expect("warm boot");
//! assert_eq!(warm.graph().num_nodes(), engine.graph().num_nodes());
//! assert_eq!(warm.partition().num_islands(), engine.partition().num_islands());
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), igcn_core::CoreError>(())
//! ```
//!
//! [`IslandLayout`]: igcn_core::IslandLayout
//! [`GraphUpdate`]: igcn_core::GraphUpdate

pub mod error;
mod io;
pub mod manifest;
pub mod snapshot;
pub mod store;
pub mod wal;
mod wire;

/// Every failpoint this crate's I/O and durability paths evaluate —
/// the chaos harness iterates this list to guarantee each registered
/// point gets injected at least once per campaign. Grammar and actions:
/// see the `igcn-fail` crate docs.
pub const FAILPOINTS: &[&str] = &[
    "store::io::write",
    "store::io::read",
    "store::io::rename",
    "store::snapshot::publish",
    "store::wal::append",
    "store::wal::reset",
    "store::checkpoint::rotated",
];

use std::path::PathBuf;

use igcn_core::{ExecConfig, IGcnEngine};

pub use error::StoreError;
pub use manifest::{
    ManifestEntry, ManifestInfo, ShardEntry, ShardManifest, MANIFEST_MAGIC, MANIFEST_VERSION,
};
pub use snapshot::{Snapshot, SnapshotHeader, SnapshotInfo, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use store::{BootOutcome, EngineStore};
pub use wal::{Wal, WalReplay};

/// Starts a warm engine boot from the snapshot at `path` — the
/// persistent twin of `IGcnEngine::builder(graph)`: configure, then
/// [`SnapshotBuilder::build`].
pub fn from_snapshot(path: impl Into<PathBuf>) -> SnapshotBuilder {
    SnapshotBuilder { path: path.into(), exec_cfg: ExecConfig::default(), wal: None }
}

/// Configures and executes a warm engine boot; created by
/// [`from_snapshot`].
#[derive(Debug, Clone)]
pub struct SnapshotBuilder {
    path: PathBuf,
    exec_cfg: ExecConfig,
    wal: Option<PathBuf>,
}

impl SnapshotBuilder {
    /// Overrides the parallel-execution configuration of the booted
    /// engine (a pure runtime knob — it is not stored in snapshots).
    pub fn exec_config(mut self, cfg: ExecConfig) -> Self {
        self.exec_cfg = cfg;
        self
    }

    /// Also replays the write-ahead log at `path` after the warm boot
    /// (see [`Wal`]; [`EngineStore::boot`] wires this automatically for
    /// the standard `<snapshot>.wal` sidecar).
    pub fn replay_wal(mut self, path: impl Into<PathBuf>) -> Self {
        self.wal = Some(path.into());
        self
    }

    /// Reads, verifies and decodes the snapshot, builds the engine from
    /// the stored parts (**no islandization**), prepares the stored
    /// model if present, and replays the WAL if one was requested.
    ///
    /// # Errors
    ///
    /// The full [`StoreError`] taxonomy; see [`Snapshot::read`] and
    /// [`Snapshot::warm_engine`].
    pub fn build(self) -> Result<IGcnEngine, StoreError> {
        let snapshot = Snapshot::read(&self.path)?;
        let mut engine = snapshot.warm_engine(self.exec_cfg)?;
        if let Some(wal_path) = self.wal {
            // Only the WAL pairing needs the snapshot checksum; a
            // header-only read avoids re-reading the whole payload.
            let header = Snapshot::read_header(&self.path)?;
            let replay = Wal::paired(wal_path, header.checksum).replay()?;
            // Batched replay: every update applied structurally, one
            // layout recomposition at the end (identical end state to
            // per-update replay).
            engine.apply_updates_batched(&replay.updates)?;
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use igcn_core::{Accelerator, CoreError, GraphUpdate, InferenceRequest};
    use igcn_gnn::{GnnModel, ModelWeights};
    use igcn_graph::generate::HubIslandConfig;
    use igcn_graph::SparseFeatures;

    const N: usize = 220;
    const DIM: usize = 12;

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    fn temp_path(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("igcn-store-test-{}-{tag}-{n}.snap", std::process::id()))
    }

    fn cold_engine(seed: u64) -> IGcnEngine {
        let g = HubIslandConfig::new(N, 9).noise_fraction(0.03).generate(seed);
        let mut engine = IGcnEngine::builder(g.graph).build().unwrap();
        let model = GnnModel::gcn(DIM, 8, 4);
        let weights = ModelWeights::glorot(&model, seed);
        engine.prepare(&model, &weights).unwrap();
        engine
    }

    fn request(seed: u64) -> InferenceRequest {
        InferenceRequest::new(SparseFeatures::random(N, DIM, 0.3, seed)).with_id(seed)
    }

    struct Cleanup(Vec<PathBuf>);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            for p in &self.0 {
                std::fs::remove_file(p).ok();
            }
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        let engine = cold_engine(1);
        let features = SparseFeatures::random(N, DIM, 0.2, 7);
        let path = temp_path("roundtrip");
        let _guard = Cleanup(vec![path.clone()]);
        let written =
            Snapshot::capture(&engine).with_features(features.clone()).write(&path).unwrap();
        assert!(written > 0);

        let back = Snapshot::read(&path).unwrap();
        assert_eq!(&*back.graph, &*engine.graph_arc());
        assert_eq!(&back.partition, engine.partition());
        assert_eq!(&back.locator_stats, engine.locator_stats());
        assert_eq!(&*back.layout, engine.layout());
        assert_eq!(back.island_cfg, engine.island_config());
        assert_eq!(back.consumer_cfg, engine.consumer_config());
        assert_eq!(back.features.as_ref(), Some(&features));
        let (model, weights) = back.model.as_ref().expect("model stored");
        let (m0, w0) = engine.prepared_model().expect("engine prepared");
        assert_eq!(model, m0);
        assert_eq!(weights, w0);
    }

    #[test]
    fn warm_boot_is_bit_identical_and_skips_islandization() {
        let engine = cold_engine(2);
        let path = temp_path("warm");
        let _guard = Cleanup(vec![path.clone()]);
        Snapshot::capture(&engine).write(&path).unwrap();

        let warm = from_snapshot(&path).build().unwrap();
        let req = request(40);
        let cold_resp = engine.infer(&req).unwrap();
        let warm_resp = warm.infer(&req).unwrap();
        assert_eq!(warm_resp.output, cold_resp.output);
        assert_eq!(warm_resp.report, cold_resp.report);
        // The warm engine carries the *stored* locator statistics — it
        // never ran a locator pass of its own.
        assert_eq!(warm.locator_stats(), engine.locator_stats());
    }

    #[test]
    fn inspect_reports_header_without_decoding() {
        let engine = cold_engine(3);
        let path = temp_path("inspect");
        let _guard = Cleanup(vec![path.clone()]);
        Snapshot::capture(&engine).write(&path).unwrap();
        let info = Snapshot::inspect(&path).unwrap();
        assert_eq!(info.version, SNAPSHOT_VERSION);
        assert!(info.checksum_ok);
        assert!(info.payload_bytes > 0);
    }

    #[test]
    fn corrupted_payload_fails_with_checksum_mismatch() {
        let engine = cold_engine(4);
        let path = temp_path("corrupt");
        let _guard = Cleanup(vec![path.clone()]);
        Snapshot::capture(&engine).write(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = snapshot::HEADER_BYTES + (bytes.len() - snapshot::HEADER_BYTES) / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Snapshot::read(&path), Err(StoreError::ChecksumMismatch { .. })));
        assert!(matches!(from_snapshot(&path).build(), Err(StoreError::ChecksumMismatch { .. })));
        let info = Snapshot::inspect(&path).unwrap();
        assert!(!info.checksum_ok);
    }

    #[test]
    fn wrong_version_fails_typed() {
        let engine = cold_engine(5);
        let path = temp_path("version");
        let _guard = Cleanup(vec![path.clone()]);
        Snapshot::capture(&engine).write(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Snapshot::read(&path),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn not_a_snapshot_and_truncation_fail_typed() {
        let path = temp_path("magic");
        let _guard = Cleanup(vec![path.clone()]);
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        assert!(matches!(Snapshot::read(&path), Err(StoreError::BadMagic { .. })));

        let engine = cold_engine(6);
        Snapshot::capture(&engine).write(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(Snapshot::read(&path), Err(StoreError::Truncated { .. })));
        assert!(matches!(Snapshot::read(temp_path("missing")), Err(StoreError::Io { .. })));
    }

    #[test]
    fn wal_appends_replay_in_order_and_tolerate_torn_tail() {
        let path = temp_path("wal");
        let _guard = Cleanup(vec![path.clone()]);
        let wal = Wal::paired(&path, 42);
        let updates = [
            GraphUpdate::add_edges(vec![(1, 2), (3, 4)]),
            GraphUpdate::remove_edges(vec![(1, 2)]).with_num_nodes(500),
        ];
        for u in &updates {
            wal.append(u).unwrap();
        }
        let replay = wal.replay().unwrap();
        assert_eq!(replay.updates.len(), 2);
        assert_eq!(replay.updates[0], updates[0]);
        assert_eq!(replay.updates[1], updates[1]);
        assert_eq!(replay.torn_tail_bytes, 0);
        assert!(!replay.stale_discarded);

        // Tear the final record: it must be dropped, earlier records
        // kept.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.updates.len(), 1);
        assert!(replay.torn_tail_bytes > 0);

        // Corrupt the *first* record (complete, mid-file): typed error.
        // Offset 12 (file header) + 12 (record header) is the first
        // payload byte of record 0.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(wal.replay(), Err(StoreError::WalCorrupt { .. })));
    }

    #[test]
    fn stale_wal_from_interrupted_checkpoint_is_discarded() {
        let path = temp_path("stale");
        let _guard = Cleanup(vec![path.clone()]);
        let old = Wal::paired(&path, 1);
        old.append(&GraphUpdate::add_edges(vec![(0, 1)])).unwrap();
        // A checkpoint wrote a new snapshot (checksum 2) but died
        // before resetting the log: the new pairing sees it as stale.
        let new = Wal::paired(&path, 2);
        let replay = new.replay().unwrap();
        assert!(replay.stale_discarded);
        assert!(replay.updates.is_empty());
        // The next append under the new pairing heals the file.
        new.append(&GraphUpdate::add_edges(vec![(2, 3)])).unwrap();
        let replay = new.replay().unwrap();
        assert!(!replay.stale_discarded);
        assert_eq!(replay.updates.len(), 1);
    }

    #[test]
    fn engine_store_full_cycle_boot_matches_live_engine() {
        let mut live = cold_engine(7);
        let path = temp_path("store");
        let store = EngineStore::at(&path);
        let _guard = Cleanup(vec![path.clone(), store.wal_path().to_path_buf()]);
        store.checkpoint(&live).unwrap();

        // Structural churn through the WAL-first path.
        let n = live.graph().num_nodes() as u32;
        let hub = live.partition().hubs()[0];
        store
            .apply_update(
                &mut live,
                GraphUpdate::add_edges(vec![(n, hub)]).with_num_nodes(n as usize + 1),
            )
            .unwrap();
        let other = live
            .graph()
            .neighbors(igcn_graph::NodeId::new(hub))
            .first()
            .copied()
            .expect("hubs have neighbors");
        store.apply_update(&mut live, GraphUpdate::remove_edges(vec![(hub, other)])).unwrap();

        // A rejected update must leave the log unchanged.
        let before = Wal::paired(store.wal_path(), 0).size_bytes();
        assert!(matches!(
            store.apply_update(&mut live, GraphUpdate::add_edges(vec![(0, 0)])),
            Err(StoreError::Core(CoreError::SelfLoops { .. }))
        ));
        assert_eq!(Wal::paired(store.wal_path(), 0).size_bytes(), before);

        // Boot = snapshot + WAL replay: bit-identical to the live
        // engine.
        let boot = store.boot(ExecConfig::default()).unwrap();
        assert!(boot.prepared);
        assert_eq!(boot.replayed_updates, 2);
        assert!(!boot.stale_wal_discarded);
        let req =
            InferenceRequest::new(SparseFeatures::random(live.graph().num_nodes(), DIM, 0.3, 9));
        let live_resp = live.infer(&req).unwrap();
        let boot_resp = boot.engine.infer(&req).unwrap();
        assert_eq!(boot_resp.output, live_resp.output);
        assert_eq!(boot_resp.report, live_resp.report);

        // Checkpoint folds the WAL into the snapshot and empties it.
        store.checkpoint(&live).unwrap();
        let boot = store.boot(ExecConfig::default()).unwrap();
        assert_eq!(boot.replayed_updates, 0);
        let boot_resp = boot.engine.infer(&req).unwrap();
        assert_eq!(boot_resp.output, live_resp.output);
    }

    #[test]
    fn warm_engines_share_graph_and_layout_via_arc() {
        let engine = cold_engine(8);
        let path = temp_path("arc");
        let _guard = Cleanup(vec![path.clone()]);
        Snapshot::capture(&engine).write(&path).unwrap();
        let snapshot = Snapshot::read(&path).unwrap();
        let a = snapshot.warm_engine(ExecConfig::default()).unwrap();
        let b = snapshot.warm_engine(ExecConfig::default()).unwrap();
        assert!(Arc::ptr_eq(&a.graph_arc(), &b.graph_arc()), "warm engines share one graph");
        assert!(Arc::ptr_eq(&a.layout_arc(), &b.layout_arc()), "warm engines share one layout");
    }

    #[test]
    fn mismatched_model_weight_pair_is_rejected() {
        // Hand-corrupt the payload in a way the checksum cannot catch:
        // rewrite checksum too, and verify the *structural* validation
        // rejects a weights-without-model snapshot.
        let engine = cold_engine(9);
        let path = temp_path("pairing");
        let _guard = Cleanup(vec![path.clone()]);
        let mut snapshot = Snapshot::capture(&engine);
        snapshot.model = None; // capture took the model; drop it.
        snapshot.write(&path).unwrap();
        let back = Snapshot::read(&path).unwrap();
        assert!(back.model.is_none(), "model gone means weights gone too");
    }
}
