//! Minimal vendored micro-bench harness.
//!
//! The criterion benches under `benches/` are gated out of hermetic
//! builds (`autobenches = false`, registry unreachable), so the
//! throughput binaries use this stand-in instead: a fixed warmup, N
//! timed iterations, and robust summary statistics (median / p95). It
//! is deliberately tiny — wall-clock sampling with `Instant`, no
//! outlier modelling — but it makes `cargo run --release`-style bins
//! reproducible enough for scaling comparisons.
//!
//! # Example
//!
//! ```
//! use igcn_bench::harness::BenchHarness;
//!
//! let stats = BenchHarness::new(1, 5).run(|| {
//!     (0..10_000u64).sum::<u64>()
//! });
//! assert_eq!(stats.samples_s.len(), 5);
//! assert!(stats.median_s() > 0.0);
//! assert!(stats.p95_s() >= stats.median_s());
//! ```

use std::time::Instant;

/// Warmup + N timed iterations of a closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchHarness {
    /// Untimed warmup iterations (cache/allocator settling).
    pub warmup: usize,
    /// Timed iterations.
    pub iters: usize,
}

impl BenchHarness {
    /// Creates a harness with `warmup` untimed and `iters` timed
    /// iterations.
    ///
    /// # Panics
    ///
    /// Panics if `iters == 0`.
    pub fn new(warmup: usize, iters: usize) -> Self {
        assert!(iters > 0, "at least one timed iteration is required");
        BenchHarness { warmup, iters }
    }

    /// A smoke-run configuration: 1 warmup, 3 timed iterations.
    pub fn quick() -> Self {
        BenchHarness::new(1, 3)
    }

    /// Runs `f` warmup+iters times and returns the timed samples. The
    /// closure's result is returned through a black-box sink so the
    /// optimiser cannot elide the work.
    pub fn run<R, F: FnMut() -> R>(&self, mut f: F) -> BenchStats {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples_s = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples_s.push(t0.elapsed().as_secs_f64());
        }
        BenchStats { samples_s }
    }
}

/// Timed samples of one benchmark, with robust summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Per-iteration wall-clock seconds, in execution order.
    pub samples_s: Vec<f64>,
}

impl BenchStats {
    fn sorted(&self) -> Vec<f64> {
        let mut s = self.samples_s.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        s
    }

    /// Median sample (lower-middle for even counts).
    pub fn median_s(&self) -> f64 {
        let s = self.sorted();
        s[(s.len() - 1) / 2]
    }

    /// 95th-percentile sample (nearest-rank).
    pub fn p95_s(&self) -> f64 {
        let s = self.sorted();
        let rank = ((0.95 * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }

    /// Arithmetic mean.
    pub fn mean_s(&self) -> f64 {
        self.samples_s.iter().sum::<f64>() / self.samples_s.len() as f64
    }

    /// Fastest sample.
    pub fn min_s(&self) -> f64 {
        self.sorted()[0]
    }

    /// Items/second at the median, for an iteration that processes
    /// `items` items.
    pub fn throughput(&self, items: usize) -> f64 {
        items as f64 / self.median_s().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_exactly_iters_samples() {
        let stats = BenchHarness::new(0, 7).run(|| 1 + 1);
        assert_eq!(stats.samples_s.len(), 7);
        assert!(stats.samples_s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn summaries_are_ordered() {
        let stats = BenchStats { samples_s: vec![3.0, 1.0, 2.0, 10.0, 4.0] };
        assert_eq!(stats.min_s(), 1.0);
        assert_eq!(stats.median_s(), 3.0);
        assert_eq!(stats.p95_s(), 10.0);
        assert!((stats.mean_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn p95_of_single_sample_is_that_sample() {
        let stats = BenchStats { samples_s: vec![2.5] };
        assert_eq!(stats.p95_s(), 2.5);
        assert_eq!(stats.median_s(), 2.5);
    }

    #[test]
    fn throughput_uses_median() {
        let stats = BenchStats { samples_s: vec![0.5, 1.0, 2.0] };
        assert!((stats.throughput(10) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one timed iteration")]
    fn zero_iters_panics() {
        let _ = BenchHarness::new(1, 0);
    }
}
