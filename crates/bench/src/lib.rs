//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the experiment index). This library
//! provides the common pieces: dataset selection with per-dataset default
//! scales, a tiny argument parser, markdown table rendering, and
//! CSV/PPM result output under `results/`.

pub mod args;
pub mod harness;
pub mod perf;
pub mod suite;
pub mod table;

pub use args::HarnessArgs;
pub use harness::{BenchHarness, BenchStats};
pub use suite::{standard_suite, DatasetRun};
pub use table::Table;

use std::io::Write;
use std::path::{Path, PathBuf};

/// Directory where harness binaries drop CSV/PPM artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("results directory must be creatable");
    dir
}

/// Writes `content` under `results/<name>`, returning the path.
///
/// # Panics
///
/// Panics on I/O failure (harness binaries want loud failures).
pub fn write_result(name: &str, content: &[u8]) -> PathBuf {
    let path = results_dir().join(name);
    write_file(&path, content);
    path
}

fn write_file(path: &Path, content: &[u8]) {
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    f.write_all(content).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_result_roundtrip() {
        let p = write_result("harness_selftest.txt", b"ok");
        let back = std::fs::read(&p).unwrap();
        assert_eq!(back, b"ok");
        std::fs::remove_file(p).ok();
    }
}
