//! The standard five-dataset evaluation suite.

use igcn_graph::datasets::{Dataset, GraphData};

use crate::args::HarnessArgs;

/// One dataset instance of the evaluation suite.
#[derive(Debug, Clone)]
pub struct DatasetRun {
    /// Which dataset.
    pub dataset: Dataset,
    /// Generated graph + features.
    pub data: GraphData,
}

/// Per-dataset default scales: citation graphs and NELL run full size;
/// the Reddit stand-in defaults to 4% of its 233 K nodes (≈ 9 K nodes at
/// the published average degree) to keep harness runtime sane. Override
/// with `--scale`.
pub fn default_scale(dataset: Dataset, args: &HarnessArgs) -> f64 {
    let base = match dataset {
        Dataset::Reddit => args.reddit_scale,
        _ => 1.0,
    };
    if args.quick {
        (base * 0.25).clamp(0.001, 1.0)
    } else {
        base
    }
}

/// Generates the selected datasets of the standard suite.
pub fn standard_suite(args: &HarnessArgs) -> Vec<DatasetRun> {
    Dataset::ALL
        .iter()
        .filter(|d| args.wants(d.id()))
        .map(|&dataset| {
            let scale = default_scale(dataset, args);
            igcn_log::info!("suite", "generating {dataset} at scale {scale}", seed = args.seed,);
            let data = dataset.generate_scaled(scale, args.seed);
            igcn_log::info!(
                "suite",
                "dataset ready",
                nodes = data.graph.num_nodes(),
                edges = data.graph.num_undirected_edges(),
                feature_dims = data.features.num_cols(),
                nnz = data.features.nnz(),
            );
            DatasetRun { dataset, data }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shrinks() {
        let normal = HarnessArgs::default();
        let quick = HarnessArgs { quick: true, ..HarnessArgs::default() };
        assert!(default_scale(Dataset::Cora, &quick) < default_scale(Dataset::Cora, &normal));
    }

    #[test]
    fn filter_respected() {
        let args = HarnessArgs {
            datasets: vec!["cora".to_string()],
            quick: true,
            ..HarnessArgs::default()
        };
        let suite = standard_suite(&args);
        assert_eq!(suite.len(), 1);
        assert_eq!(suite[0].dataset, Dataset::Cora);
    }
}
