//! Perf-regression observatory: gates committed `results/*.json`
//! metrics against `results/perf_baseline.json`.
//!
//! The baseline file declares the gated metrics — only
//! machine-independent ones (recovery rates, bit-identity booleans,
//! structural partition quality, error counts, the disabled-span
//! budget), never wall-clock timings, because CI re-records the
//! results files on whatever container it gets. Each gate names a
//! file, a dotted metric path, a direction, a baseline value and a
//! relative tolerance; [`evaluate`] loads the current value and
//! passes it iff it has not regressed past the tolerance band.
//!
//! The `perf_gate` binary drives this module over the real results
//! directory, appends the verdict to `results/perf_history.json`
//! (bounded to [`HISTORY_CAP`] entries) and exits nonzero on any
//! failed gate — the CI hook.

use serde::json::{obj, JsonValue};

/// Whether a larger or a smaller current value is an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Regression means dropping below `baseline * (1 - rel_tol)`.
    Higher,
    /// Regression means rising above `baseline * (1 + rel_tol)`.
    Lower,
}

impl Better {
    fn parse(s: &str) -> Option<Better> {
        match s {
            "higher" => Some(Better::Higher),
            "lower" => Some(Better::Lower),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Better::Higher => "higher",
            Better::Lower => "lower",
        }
    }
}

/// One gated metric, as declared in `perf_baseline.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Results file the metric lives in, relative to the results dir.
    pub file: String,
    /// Dotted path into the document; a numeric segment indexes an
    /// array (`rows.1.work_balance`).
    pub metric: String,
    pub better: Better,
    pub baseline: f64,
    /// Relative tolerance band around the baseline (0.05 = 5%).
    pub rel_tol: f64,
    /// Why this metric is gated — carried into reports.
    pub note: String,
}

/// The verdict for one gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    pub gate: Gate,
    /// The value currently in the results file; `None` when the file
    /// is missing, unparseable, or the path resolves to nothing
    /// numeric — all of which fail the gate.
    pub current: Option<f64>,
    pub pass: bool,
}

impl GateOutcome {
    /// One human line: `PASS chaos.json store.recovery_rate 1 (>= 1)`.
    pub fn describe(&self) -> String {
        let verdict = if self.pass { "PASS" } else { "FAIL" };
        let current = match self.current {
            Some(v) => format!("{v}"),
            None => "missing".to_string(),
        };
        let (cmp, bound) = match self.gate.better {
            Better::Higher => (">=", self.gate.baseline * (1.0 - self.gate.rel_tol)),
            Better::Lower => ("<=", self.gate.baseline * (1.0 + self.gate.rel_tol)),
        };
        format!(
            "{verdict} {}:{} = {current} (want {cmp} {bound})",
            self.gate.file, self.gate.metric
        )
    }

    fn to_json(&self) -> JsonValue {
        obj([
            ("file", JsonValue::Str(self.gate.file.clone())),
            ("metric", JsonValue::Str(self.gate.metric.clone())),
            ("baseline", JsonValue::from_f64_rounded(self.gate.baseline)),
            (
                "current",
                match self.current {
                    Some(v) => JsonValue::from_f64_rounded(v),
                    None => JsonValue::Null,
                },
            ),
            ("pass", JsonValue::Bool(self.pass)),
        ])
    }
}

/// Follows a dotted path through objects and arrays (numeric segments
/// index arrays).
pub fn lookup<'a>(doc: &'a JsonValue, path: &str) -> Option<&'a JsonValue> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = match (cur, seg.parse::<usize>()) {
            (JsonValue::Array(items), Ok(idx)) => items.get(idx)?,
            (other, _) => other.get(seg)?,
        };
    }
    Some(cur)
}

/// A metric as a number: integers and floats as themselves, booleans
/// as 1/0 (bit-identity flags gate as exact numbers).
pub fn as_number(v: &JsonValue) -> Option<f64> {
    match *v {
        JsonValue::Bool(b) => Some(if b { 1.0 } else { 0.0 }),
        JsonValue::Uint(u) => Some(u as f64),
        JsonValue::Int(i) => Some(i as f64),
        JsonValue::Float(f) => Some(f),
        _ => None,
    }
}

/// Parses the `gates` array of a baseline document.
///
/// # Errors
///
/// Returns a description of the first malformed gate entry.
pub fn parse_gates(baseline: &JsonValue) -> Result<Vec<Gate>, String> {
    let rows = baseline
        .get("gates")
        .and_then(JsonValue::as_array)
        .ok_or("baseline document has no \"gates\" array")?;
    let mut gates = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let field = |key: &str| row.get(key).ok_or_else(|| format!("gate {i} is missing {key:?}"));
        let text = |key: &str| -> Result<String, String> {
            match field(key)? {
                JsonValue::Str(s) => Ok(s.clone()),
                other => Err(format!("gate {i} field {key:?} must be a string, got {other:?}")),
            }
        };
        let number = |key: &str| -> Result<f64, String> {
            as_number(field(key)?).ok_or_else(|| format!("gate {i} field {key:?} must be numeric"))
        };
        let better = text("better")?;
        gates.push(Gate {
            file: text("file")?,
            metric: text("metric")?,
            better: Better::parse(&better).ok_or_else(|| {
                format!("gate {i} direction must be higher|lower, got {better:?}")
            })?,
            baseline: number("baseline")?,
            rel_tol: number("rel_tol")?,
            note: text("note").unwrap_or_default(),
        });
    }
    if gates.is_empty() {
        return Err("baseline declares no gates".to_string());
    }
    Ok(gates)
}

/// Evaluates every gate. `load` maps a results file name to its parsed
/// document (`None` when absent — which fails that gate); injecting it
/// keeps the logic testable without touching the filesystem.
pub fn evaluate(
    gates: &[Gate],
    load: &mut dyn FnMut(&str) -> Option<JsonValue>,
) -> Vec<GateOutcome> {
    gates
        .iter()
        .map(|gate| {
            let current = load(&gate.file)
                .as_ref()
                .and_then(|doc| lookup(doc, &gate.metric))
                .and_then(as_number);
            let pass = current.is_some_and(|v| match gate.better {
                Better::Higher => v >= gate.baseline * (1.0 - gate.rel_tol),
                Better::Lower => v <= gate.baseline * (1.0 + gate.rel_tol),
            });
            GateOutcome { gate: gate.clone(), current, pass }
        })
        .collect()
}

/// Upper bound on `perf_history.json` entries; the oldest fall off.
pub const HISTORY_CAP: usize = 200;

/// Appends one run's verdict to a history document (creating the
/// shape when `history` is `None` or malformed), dropping the oldest
/// entries beyond [`HISTORY_CAP`].
pub fn append_history(
    history: Option<JsonValue>,
    unix_ts: u64,
    outcomes: &[GateOutcome],
) -> JsonValue {
    let mut runs: Vec<JsonValue> = history
        .as_ref()
        .and_then(|h| h.get("runs"))
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .unwrap_or_default();
    let entry = obj([
        ("unix_ts", JsonValue::Uint(unix_ts)),
        ("pass", JsonValue::Bool(outcomes.iter().all(|o| o.pass))),
        ("gates", JsonValue::Array(outcomes.iter().map(GateOutcome::to_json).collect())),
    ]);
    runs.push(entry);
    if runs.len() > HISTORY_CAP {
        let excess = runs.len() - HISTORY_CAP;
        runs.drain(..excess);
    }
    obj([
        (
            "note",
            JsonValue::Str(
                "append-only perf_gate verdicts, oldest first, bounded to the last 200 runs"
                    .to_string(),
            ),
        ),
        ("runs", JsonValue::Array(runs)),
    ])
}

/// Renders a baseline document from gates — used to seed
/// `perf_baseline.json` and by tests to round-trip the format.
pub fn baseline_json(note: &str, gates: &[Gate]) -> JsonValue {
    let rows = gates
        .iter()
        .map(|g| {
            obj([
                ("file", JsonValue::Str(g.file.clone())),
                ("metric", JsonValue::Str(g.metric.clone())),
                ("better", JsonValue::Str(g.better.as_str().to_string())),
                ("baseline", JsonValue::from_f64_rounded(g.baseline)),
                ("rel_tol", JsonValue::from_f64_rounded(g.rel_tol)),
                ("note", JsonValue::Str(g.note.clone())),
            ])
        })
        .collect();
    obj([("note", JsonValue::Str(note.to_string())), ("gates", JsonValue::Array(rows))])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(metric: &str, better: Better, baseline: f64, rel_tol: f64) -> Gate {
        Gate {
            file: "r.json".to_string(),
            metric: metric.to_string(),
            better,
            baseline,
            rel_tol,
            note: String::new(),
        }
    }

    fn doc() -> JsonValue {
        JsonValue::parse(
            r#"{"rate": 1.0, "bit_identical": true, "errors": 0,
                "rows": [{"balance": 0.9}, {"balance": 0.88}]}"#,
        )
        .unwrap()
    }

    #[test]
    fn lookup_walks_objects_and_arrays() {
        let d = doc();
        assert_eq!(as_number(lookup(&d, "rows.1.balance").unwrap()), Some(0.88));
        assert_eq!(as_number(lookup(&d, "bit_identical").unwrap()), Some(1.0));
        assert!(lookup(&d, "rows.7.balance").is_none());
        assert!(lookup(&d, "rate.deeper").is_none());
    }

    #[test]
    fn healthy_metrics_pass() {
        let gates = vec![
            gate("rate", Better::Higher, 1.0, 0.0),
            gate("bit_identical", Better::Higher, 1.0, 0.0),
            gate("errors", Better::Lower, 0.0, 0.0),
            gate("rows.1.balance", Better::Higher, 0.9, 0.05),
        ];
        let outcomes = evaluate(&gates, &mut |_| Some(doc()));
        assert!(outcomes.iter().all(|o| o.pass), "{outcomes:?}");
    }

    #[test]
    fn injected_regression_fails() {
        // The regression: recovery rate dips, an error count appears,
        // and the balance falls out of its 5% band.
        let worse = JsonValue::parse(
            r#"{"rate": 0.97, "bit_identical": false, "errors": 2,
                "rows": [{"balance": 0.9}, {"balance": 0.80}]}"#,
        )
        .unwrap();
        let gates = vec![
            gate("rate", Better::Higher, 1.0, 0.0),
            gate("bit_identical", Better::Higher, 1.0, 0.0),
            gate("errors", Better::Lower, 0.0, 0.0),
            gate("rows.1.balance", Better::Higher, 0.88, 0.05),
        ];
        let outcomes = evaluate(&gates, &mut |_| Some(worse.clone()));
        assert!(outcomes.iter().all(|o| !o.pass), "{outcomes:?}");
        // The same gates pass on the healthy document, proving the
        // gate (not the fixture) is what failed.
        assert!(evaluate(&gates, &mut |_| Some(doc())).iter().all(|o| o.pass));
    }

    #[test]
    fn missing_file_or_metric_fails() {
        let gates = vec![gate("rate", Better::Higher, 1.0, 0.0)];
        assert!(!evaluate(&gates, &mut |_| None)[0].pass);
        let gates = vec![gate("no.such.path", Better::Higher, 1.0, 0.0)];
        assert!(!evaluate(&gates, &mut |_| Some(doc()))[0].pass);
    }

    #[test]
    fn tolerance_band_is_directional() {
        // 5% band around 1.0: 0.96 is inside it, 0.94 and 1.06 are out.
        let d = JsonValue::parse(r#"{"in_low": 0.96, "in_high": 1.04, "low": 0.94, "high": 1.06}"#)
            .unwrap();
        let pass = |metric: &str, better| {
            evaluate(&[gate(metric, better, 1.0, 0.05)], &mut |_| Some(d.clone()))[0].pass
        };
        assert!(pass("in_low", Better::Higher));
        assert!(pass("in_high", Better::Lower));
        assert!(!pass("low", Better::Higher));
        assert!(!pass("high", Better::Lower));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let gates = vec![
            gate("rate", Better::Higher, 1.0, 0.0),
            gate("rows.1.balance", Better::Higher, 0.88, 0.05),
        ];
        let encoded = baseline_json("test", &gates).encode_pretty();
        let parsed = parse_gates(&JsonValue::parse(&encoded).unwrap()).unwrap();
        assert_eq!(parsed, gates);
    }

    #[test]
    fn history_appends_and_stays_bounded() {
        let gates = vec![gate("rate", Better::Higher, 1.0, 0.0)];
        let outcomes = evaluate(&gates, &mut |_| Some(doc()));
        let mut history = None;
        for ts in 0..(HISTORY_CAP as u64 + 10) {
            history = Some(append_history(history, ts, &outcomes));
        }
        let runs = history.as_ref().unwrap().get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), HISTORY_CAP);
        // Oldest entries fell off: the first retained run is ts=10.
        assert_eq!(runs[0].get("unix_ts"), Some(&JsonValue::Uint(10)));
        assert_eq!(runs[0].get("pass"), Some(&JsonValue::Bool(true)));
    }
}
