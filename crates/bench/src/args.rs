//! Minimal flag parsing for the harness binaries.

/// Parsed common flags of a harness binary.
///
/// Recognised flags:
///
/// * `--scale <f>` — override the Reddit stand-in scale (default 0.04);
/// * `--seed <n>` — generator seed (default 42);
/// * `--quick` — halve every dataset's scale for smoke runs;
/// * `--part <name>` — sub-experiment selector (binary-specific);
/// * `--datasets a,b,c` — restrict to a subset by id
///   (`cora,citeseer,pubmed,nell,reddit`).
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Reddit scale override.
    pub reddit_scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Smoke-run mode.
    pub quick: bool,
    /// Sub-experiment selector.
    pub part: Option<String>,
    /// Dataset id filter (empty = all).
    pub datasets: Vec<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs { reddit_scale: 0.04, seed: 42, quick: false, part: None, datasets: Vec::new() }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale requires a value");
                    out.reddit_scale = v.parse().expect("--scale value must be a float");
                }
                "--seed" => {
                    let v = it.next().expect("--seed requires a value");
                    out.seed = v.parse().expect("--seed value must be an integer");
                }
                "--quick" => out.quick = true,
                "--part" => {
                    out.part = Some(it.next().expect("--part requires a value"));
                }
                "--datasets" => {
                    let v = it.next().expect("--datasets requires a value");
                    out.datasets = v.split(',').map(|s| s.trim().to_string()).collect();
                }
                other => panic!(
                    "unknown flag {other}; supported: --scale <f> --seed <n> --quick \
                     --part <name> --datasets a,b,c"
                ),
            }
        }
        out
    }

    /// Whether dataset `id` is selected.
    pub fn wants(&self, id: &str) -> bool {
        self.datasets.is_empty() || self.datasets.iter().any(|d| d == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seed, 42);
        assert!(!a.quick);
        assert!(a.wants("cora"));
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--scale", "0.1", "--seed", "7", "--quick", "--part", "speedup"]);
        assert!((a.reddit_scale - 0.1).abs() < 1e-12);
        assert_eq!(a.seed, 7);
        assert!(a.quick);
        assert_eq!(a.part.as_deref(), Some("speedup"));
    }

    #[test]
    fn dataset_filter() {
        let a = parse(&["--datasets", "cora,nell"]);
        assert!(a.wants("cora"));
        assert!(a.wants("nell"));
        assert!(!a.wants("reddit"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--bogus"]);
    }
}
