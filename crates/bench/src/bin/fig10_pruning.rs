//! Figure 10: aggregation and overall operation pruning rates.
//!
//! Regenerates the redundancy-removal result: the Island Consumer skips
//! shared-neighbor aggregation work — the paper reports 29–46% of
//! aggregation ops (38% average) and 4–17% of total ops pruned,
//! losslessly. Paper values are printed side by side with measured ones.
//!
//! Run: `cargo run --release -p igcn-bench --bin fig10_pruning`

use igcn_bench::table::fmt_sig;
use igcn_bench::{standard_suite, write_result, HarnessArgs, Table};
use igcn_core::IGcnEngine;
use igcn_gnn::{GnnKind, GnnModel, ModelConfig};
use igcn_graph::datasets::Dataset;

/// Paper-reported pruning rates (Figure 10), in percent.
fn paper_rates(dataset: Dataset) -> (f64, f64) {
    match dataset {
        Dataset::Cora => (39.0, 9.0),
        Dataset::Citeseer => (40.0, 5.0),
        Dataset::Pubmed => (35.0, 4.0),
        Dataset::Nell => (46.0, 5.0),
        Dataset::Reddit => (29.0, 17.0),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let suite = standard_suite(&args);
    let mut table = Table::new(vec![
        "dataset",
        "agg pruning % (measured)",
        "agg pruning % (paper)",
        "overall pruning % (measured)",
        "overall pruning % (paper)",
        "windows reused",
        "windows direct",
    ]);
    let mut measured_rates = Vec::new();
    for run in &suite {
        eprintln!("[fig10] islandizing {}...", run.dataset);
        let engine = IGcnEngine::builder(run.data.graph.clone())
            .build()
            .expect("loop-free dataset stand-ins");
        let model = GnnModel::for_dataset(run.dataset, GnnKind::Gcn, ModelConfig::Algo);
        let stats = engine
            .account(&run.data.features, &model)
            .expect("suite features match the suite graph");
        let agg = stats.aggregation_pruning_rate() * 100.0;
        let overall = stats.overall_pruning_rate() * 100.0;
        let (paper_agg, paper_overall) = paper_rates(run.dataset);
        let reused: u64 = stats.layers.iter().map(|l| l.aggregation.windows_reused).sum();
        let direct: u64 = stats.layers.iter().map(|l| l.aggregation.windows_direct).sum();
        measured_rates.push(agg);
        table.row(vec![
            run.dataset.to_string(),
            fmt_sig(agg),
            fmt_sig(paper_agg),
            fmt_sig(overall),
            fmt_sig(paper_overall),
            reused.to_string(),
            direct.to_string(),
        ]);
    }
    println!("\n# Figure 10: pruning rates with redundancy removal\n");
    println!("{}", table.to_markdown());
    if !measured_rates.is_empty() {
        let avg = measured_rates.iter().sum::<f64>() / measured_rates.len() as f64;
        println!(
            "Measured average aggregation pruning: {:.1}% (paper: 38% across the five datasets).",
            avg
        );
    }
    let path = write_result("fig10_pruning.csv", table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
