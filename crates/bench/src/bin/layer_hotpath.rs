//! Single-thread layer-throughput pin of the physical-layout hot path.
//!
//! PR 3 made the schedule-ordered physical layout the only execution
//! path and PR 6 deleted the legacy index-indirect code it had beaten.
//! A live A/B is therefore no longer possible; instead this harness
//! times the hot path and reports it against the **stored** legacy
//! baseline in `results/locality_baseline.json`, captured at commit
//! `eedd04e` immediately before the legacy path was removed (same
//! graph generator, model, seed and iteration counts).
//!
//! Wall-clock numbers do not transfer between machines, so the stored
//! comparison is reported, not asserted. What *is* asserted — the CI
//! smoke contract — is what holds everywhere:
//!
//! * the timed inference produces **bit-identical** outputs and
//!   `ExecStats` across repeated runs (the hot path is deterministic);
//! * forcing the scalar kernel fallback (`igcn_simd::force_scalar`)
//!   reproduces the SIMD run **bit for bit** — the end-to-end form of
//!   the per-kernel identity contract;
//! * the measured median is finite and non-zero (the harness really
//!   timed work).
//!
//! The SIMD-vs-scalar wall-clock ratio is reported alongside the
//! stored-legacy comparison (informational on a 1-CPU container, where
//! the scalar loops auto-vectorize).
//!
//! Run: `cargo run --release -p igcn-bench --bin layer_hotpath -- --quick`

use igcn_bench::table::fmt_sig;
use igcn_bench::{results_dir, write_result, BenchHarness, HarnessArgs, Table};
use igcn_core::IGcnEngine;
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::generate::barabasi_albert;
use igcn_graph::SparseFeatures;
use serde::json::{obj, JsonValue};

/// The stored legacy measurement matching this run's `--quick` flag.
struct Baseline {
    nodes: u64,
    legacy_median_s: f64,
    legacy_p95_s: f64,
}

fn load_baseline(quick: bool) -> Baseline {
    let path = results_dir().join("locality_baseline.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let doc =
        JsonValue::parse(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    let rows = doc.get("rows").and_then(|r| r.as_array()).expect("baseline has rows");
    let row = rows
        .iter()
        .find(|r| r.get("quick").and_then(JsonValue::as_bool) == Some(quick))
        .unwrap_or_else(|| panic!("no baseline row with quick={quick}"));
    let f = |key: &str| {
        row.get(key)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("baseline row lacks {key}"))
    };
    Baseline {
        nodes: row.get("nodes").and_then(JsonValue::as_u64).expect("baseline row lacks nodes"),
        legacy_median_s: f("legacy_median_s"),
        legacy_p95_s: f("legacy_p95_s"),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    // The 50k-node power-law bin of the serving scaling sweep — the
    // same shape the stored legacy baseline was captured on.
    let n = if args.quick { 4_000 } else { 50_000 };
    let edges_per_node = 8;
    let feature_dim = 32;
    let density = 0.05;
    let graph = barabasi_albert(n, edges_per_node, args.seed);
    let model = GnnModel::gcn(feature_dim, 16, 8);
    let num_layers = model.num_layers();
    let weights = ModelWeights::glorot(&model, args.seed);
    let x = SparseFeatures::random(n, feature_dim, density, args.seed + 1);

    let baseline = load_baseline(args.quick);
    assert_eq!(
        baseline.nodes, n as u64,
        "stored baseline row was captured on a different graph size"
    );

    eprintln!("[hotpath] islandizing {n} nodes...");
    let engine = IGcnEngine::builder(graph).build().expect("BA graphs are loop-free");

    // The CI smoke contract, part 1: repeated runs of the hot path are
    // bit-identical in both outputs and the complete ExecStats.
    eprintln!("[hotpath] checking run-to-run bit-identity...");
    let (out_a, stats_a) = engine.run(&x, &model, &weights).expect("hot path runs");
    let (out_b, stats_b) = engine.run(&x, &model, &weights).expect("hot path runs");
    assert_eq!(out_a, out_b, "hot-path outputs must be bit-identical across runs");
    assert_eq!(stats_a, stats_b, "hot-path ExecStats must be bit-identical across runs");

    // Part 1b: the scalar-fallback kernels are the *same function* in
    // different clothes — forcing them must not move a single bit of
    // either the outputs or the statistics (the SIMD bit-identity
    // contract, end to end rather than per kernel).
    eprintln!("[hotpath] checking SIMD-vs-scalar bit-identity...");
    igcn_simd::force_scalar(true);
    let (out_s, stats_s) = engine.run(&x, &model, &weights).expect("scalar fallback runs");
    igcn_simd::force_scalar(false);
    assert_eq!(out_a, out_s, "scalar-fallback outputs must match the SIMD path bit for bit");
    assert_eq!(stats_a, stats_s, "scalar-fallback ExecStats must match the SIMD path");

    let harness = if args.quick { BenchHarness::quick() } else { BenchHarness::new(1, 5) };
    eprintln!("[hotpath] timing hot path ({} warmup + {} iters)...", harness.warmup, harness.iters);
    let timed = harness.run(|| engine.run(&x, &model, &weights).expect("engine runs"));
    let median_s = timed.median_s();
    let p95_s = timed.p95_s();
    let layers_per_s = num_layers as f64 / median_s.max(1e-12);
    let vs_stored_legacy = baseline.legacy_median_s / median_s.max(1e-12);

    // End-to-end A/B against the forced-scalar fallback. Reported, not
    // asserted: on the 1-CPU container the scalar loops auto-vectorize,
    // so this ratio hovers near 1x by construction (kernel_bench owns
    // the per-kernel non-regression assert).
    eprintln!("[hotpath] timing scalar fallback for the end-to-end A/B...");
    igcn_simd::force_scalar(true);
    let timed_scalar = harness.run(|| engine.run(&x, &model, &weights).expect("engine runs"));
    igcn_simd::force_scalar(false);
    let scalar_median_s = timed_scalar.median_s();
    let simd_vs_scalar = scalar_median_s / median_s.max(1e-12);

    let mut table = Table::new(vec!["path", "median (ms)", "p95 (ms)", "layers/s"]);
    table.row(vec![
        "hot path (live)".to_string(),
        fmt_sig(median_s * 1e3),
        fmt_sig(p95_s * 1e3),
        fmt_sig(layers_per_s),
    ]);
    table.row(vec![
        "scalar fallback (live)".to_string(),
        fmt_sig(scalar_median_s * 1e3),
        fmt_sig(timed_scalar.p95_s() * 1e3),
        fmt_sig(num_layers as f64 / scalar_median_s.max(1e-12)),
    ]);
    table.row(vec![
        "legacy (stored)".to_string(),
        fmt_sig(baseline.legacy_median_s * 1e3),
        fmt_sig(baseline.legacy_p95_s * 1e3),
        fmt_sig(num_layers as f64 / baseline.legacy_median_s.max(1e-12)),
    ]);
    println!("\n# Single-thread layer hot path vs stored legacy baseline (power-law, {n} nodes)\n");
    println!("{}", table.to_markdown());
    println!(
        "live median vs stored legacy median: {vs_stored_legacy:.3}x \
         (informational — baseline captured on a different run of this container class)"
    );
    println!(
        "SIMD vs forced-scalar end to end: {simd_vs_scalar:.3}x \
         (informational — scalar loops auto-vectorize on this container)"
    );

    let result = obj([
        (
            "note",
            JsonValue::Str(
                "live hot-path timing against the stored legacy baseline in \
                 locality_baseline.json; recorded on a 1-CPU container, and the baseline was \
                 captured in a separate run, so the ratio is informational, not asserted"
                    .to_string(),
            ),
        ),
        (
            "graph",
            obj([
                ("kind", JsonValue::Str("barabasi_albert".to_string())),
                ("nodes", JsonValue::Uint(n as u64)),
                ("edges_per_node", JsonValue::Uint(edges_per_node as u64)),
                ("seed", JsonValue::Uint(args.seed)),
            ]),
        ),
        (
            "model",
            obj([
                ("kind", JsonValue::Str("gcn".to_string())),
                ("in_dim", JsonValue::Uint(feature_dim as u64)),
                ("hidden", JsonValue::Uint(16)),
                ("classes", JsonValue::Uint(8)),
                ("layers", JsonValue::Uint(num_layers as u64)),
            ]),
        ),
        (
            "harness",
            obj([
                ("warmup", JsonValue::Uint(harness.warmup as u64)),
                ("iters", JsonValue::Uint(harness.iters as u64)),
                ("threads", JsonValue::Uint(1)),
            ]),
        ),
        ("bit_identical_across_runs", JsonValue::Bool(true)),
        ("bit_identical_simd_vs_scalar", JsonValue::Bool(true)),
        ("median_s", JsonValue::from_f64_rounded(median_s)),
        ("p95_s", JsonValue::from_f64_rounded(p95_s)),
        ("layers_per_s", JsonValue::from_f64_rounded(layers_per_s)),
        ("scalar_median_s", JsonValue::from_f64_rounded(scalar_median_s)),
        ("simd_vs_scalar", JsonValue::from_f64_rounded(simd_vs_scalar)),
        ("stored_legacy_median_s", JsonValue::from_f64_rounded(baseline.legacy_median_s)),
        ("vs_stored_legacy", JsonValue::from_f64_rounded(vs_stored_legacy)),
    ]);
    let path = write_result("locality_speedup.json", result.encode_pretty().as_bytes());
    eprintln!("wrote {}", path.display());

    // The CI smoke contract, part 2: the harness measured real work.
    assert!(
        median_s.is_finite() && median_s > 0.0,
        "hot-path median must be a positive finite time, got {median_s}"
    );
}
