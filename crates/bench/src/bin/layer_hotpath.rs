//! Single-thread layer-throughput A/B of the physical island layout.
//!
//! PR 2's thread fan-out cannot show a speedup on a 1-CPU container;
//! the physical-layout work can: it eliminates per-node allocations,
//! hub hash tables and per-layer bitmap rebuilds, and executes over the
//! schedule-ordered graph — a **single-thread** win that this harness
//! measures and pins.
//!
//! On the 50k-node power-law bin (the `serving_batch` scaling graph),
//! both engine configurations run the same full-model inference:
//!
//! * **old layout** — `ExecConfig::physical_layout = false`: the legacy
//!   index-indirect execution over the original CSR order;
//! * **new layout** — `physical_layout = true`: the schedule-ordered
//!   layout + zero-allocation flat-arena core.
//!
//! Outputs **and** `ExecStats` are asserted bit-identical between the
//! two before anything is timed (the optimisation must be free of
//! semantic drift), then the vendored [`BenchHarness`] records
//! median/p95 per-inference latency and the layer-throughput speedup to
//! `results/locality_speedup.json`. The run aborts (non-zero exit) if
//! the new layout is slower than the old one — the CI smoke contract.
//!
//! Run: `cargo run --release -p igcn-bench --bin layer_hotpath -- --quick`

use std::fmt::Write as _;

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, BenchHarness, HarnessArgs, Table};
use igcn_core::{ExecConfig, IGcnEngine};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::generate::barabasi_albert;
use igcn_graph::SparseFeatures;

struct Measured {
    label: &'static str,
    median_s: f64,
    p95_s: f64,
    layers_per_s: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    // The 50k-node power-law bin of the serving scaling sweep.
    let n = if args.quick { 4_000 } else { 50_000 };
    let edges_per_node = 8;
    let feature_dim = 32;
    let density = 0.05;
    let graph = barabasi_albert(n, edges_per_node, args.seed);
    let model = GnnModel::gcn(feature_dim, 16, 8);
    let num_layers = model.num_layers();
    let weights = ModelWeights::glorot(&model, args.seed);
    let x = SparseFeatures::random(n, feature_dim, density, args.seed + 1);

    eprintln!("[hotpath] islandizing {n} nodes...");
    let base = IGcnEngine::builder(graph).build().expect("BA graphs are loop-free");
    let mut old_engine = base.clone();
    old_engine.set_exec_config(ExecConfig::default().with_physical_layout(false));
    let mut new_engine = base;
    new_engine.set_exec_config(ExecConfig::default().with_physical_layout(true));

    // Contract first: the layout is a pure locality optimisation —
    // outputs and the complete execution statistics must be
    // bit-identical before any timing is worth reporting.
    eprintln!("[hotpath] checking bit-identity of outputs and stats...");
    let (old_out, old_stats) = old_engine.run(&x, &model, &weights).expect("legacy path runs");
    let (new_out, new_stats) = new_engine.run(&x, &model, &weights).expect("layout path runs");
    assert_eq!(new_out, old_out, "layout on/off outputs must be bit-identical");
    assert_eq!(new_stats, old_stats, "layout on/off ExecStats must be bit-identical");

    let harness = if args.quick { BenchHarness::quick() } else { BenchHarness::new(1, 5) };
    let mut rows: Vec<Measured> = Vec::new();
    for (label, engine) in [("old_layout", &old_engine), ("new_layout", &new_engine)] {
        eprintln!(
            "[hotpath] timing {label} ({} warmup + {} iters)...",
            harness.warmup, harness.iters
        );
        let stats = harness.run(|| engine.run(&x, &model, &weights).expect("engine runs"));
        rows.push(Measured {
            label,
            median_s: stats.median_s(),
            p95_s: stats.p95_s(),
            layers_per_s: num_layers as f64 / stats.median_s().max(1e-12),
        });
    }
    let old = &rows[0];
    let new = &rows[1];
    let speedup = old.median_s / new.median_s.max(1e-12);

    let mut table =
        Table::new(vec!["layout", "median (ms)", "p95 (ms)", "layers/s", "speedup vs old"]);
    for row in &rows {
        table.row(vec![
            row.label.to_string(),
            fmt_sig(row.median_s * 1e3),
            fmt_sig(row.p95_s * 1e3),
            fmt_sig(row.layers_per_s),
            fmt_sig(old.median_s / row.median_s.max(1e-12)),
        ]);
    }
    println!("\n# Single-thread layer hot path: physical layout A/B (power-law, {n} nodes)\n");
    println!("{}", table.to_markdown());
    println!("speedup (old median / new median): {speedup:.3}x");

    // Hand-rolled JSON (the serde stand-in only keeps derives compiling).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"graph\": {{\"kind\": \"barabasi_albert\", \"nodes\": {n}, \
         \"edges_per_node\": {edges_per_node}, \"seed\": {}}},",
        args.seed
    );
    let _ = writeln!(
        json,
        "  \"model\": {{\"kind\": \"gcn\", \"in_dim\": {feature_dim}, \"hidden\": 16, \
         \"classes\": 8, \"layers\": {num_layers}}},"
    );
    let _ = writeln!(
        json,
        "  \"harness\": {{\"warmup\": {}, \"iters\": {}, \"threads\": 1}},",
        harness.warmup, harness.iters
    );
    let _ = writeln!(json, "  \"bit_identical_outputs_and_stats\": true,");
    json.push_str("  \"measurements\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"layout\": \"{}\", \"median_s\": {:.6}, \"p95_s\": {:.6}, \
             \"layers_per_s\": {:.3}}}",
            row.label, row.median_s, row.p95_s, row.layers_per_s
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"single_thread_median_speedup\": {speedup:.3}");
    json.push_str("}\n");
    let path = write_result("locality_speedup.json", json.as_bytes());
    eprintln!("wrote {}", path.display());

    // The CI smoke contract: the new layout must not regress the old
    // one (single-thread medians, valid on 1-CPU runners).
    assert!(
        new.median_s <= old.median_s,
        "physical layout regressed the hot path: new median {:.6}s > old median {:.6}s",
        new.median_s,
        old.median_s
    );
}
