//! CI perf gate: diffs committed `results/*.json` metrics against
//! `results/perf_baseline.json` and fails on regression.
//!
//! ```text
//! perf_gate [--results DIR] [--baseline FILE] [--no-history]
//! ```
//!
//! Only machine-independent metrics are gated (see the baseline
//! file's own notes): recovery rates, bit-identity flags, structural
//! partition quality, error counts and the disabled-span budget.
//! Wall-clock timings are deliberately absent — CI re-records the
//! results files on arbitrary containers. Every run's verdict is
//! appended to `results/perf_history.json` (bounded ring), so the
//! observatory keeps a trail of what moved and when. Exit status: 0
//! when every gate passes, 1 otherwise, 2 on usage/baseline errors.

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use igcn_bench::perf;
use serde::json::JsonValue;

struct Args {
    results: PathBuf,
    baseline: Option<PathBuf>,
    history: bool,
}

fn parse_args() -> Args {
    let mut args = Args { results: PathBuf::from("results"), baseline: None, history: true };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> PathBuf {
            it.next().map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("{name} needs a path value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--results" => args.results = value("--results"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--no-history" => args.history = false,
            other => {
                eprintln!(
                    "unknown flag {other:?}; usage: perf_gate [--results DIR] \
                     [--baseline FILE] [--no-history]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn read_json(path: &Path) -> Option<JsonValue> {
    let text = std::fs::read_to_string(path).ok()?;
    match JsonValue::parse(&text) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("warning: {} does not parse as JSON: {e}", path.display());
            None
        }
    }
}

fn main() {
    let args = parse_args();
    let baseline_path =
        args.baseline.clone().unwrap_or_else(|| args.results.join("perf_baseline.json"));
    let Some(baseline) = read_json(&baseline_path) else {
        eprintln!("error: cannot read baseline {}", baseline_path.display());
        std::process::exit(2);
    };
    let gates = match perf::parse_gates(&baseline) {
        Ok(gates) => gates,
        Err(e) => {
            eprintln!("error: malformed baseline {}: {e}", baseline_path.display());
            std::process::exit(2);
        }
    };

    let results = args.results.clone();
    let outcomes = perf::evaluate(&gates, &mut |file| read_json(&results.join(file)));
    for outcome in &outcomes {
        eprintln!("[perf_gate] {}", outcome.describe());
    }
    let failed = outcomes.iter().filter(|o| !o.pass).count();

    if args.history {
        let history_path = args.results.join("perf_history.json");
        let unix_ts =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
        let updated = perf::append_history(read_json(&history_path), unix_ts, &outcomes);
        if let Err(e) = std::fs::write(&history_path, updated.encode_pretty()) {
            eprintln!("warning: cannot write {}: {e}", history_path.display());
        } else {
            eprintln!("[perf_gate] appended verdict to {}", history_path.display());
        }
    }

    if failed > 0 {
        eprintln!("[perf_gate] {failed}/{} gates FAILED", outcomes.len());
        std::process::exit(1);
    }
    eprintln!("[perf_gate] all {} gates pass", outcomes.len());
}
