//! Figure 12: I-GCN vs AWB-GCN + lightweight graph reordering.
//!
//! The §4.5 comparison: six traditional lightweight reordering algorithms
//! run offline (here: their Rust reimplementations timed on the host),
//! followed by AWB-GCN processing of the reordered graph, against I-GCN's
//! end-to-end (restructuring + inference) latency. The paper's finding:
//! the reordering latency *alone* exceeds I-GCN's entire inference — by
//! over 100× on Cora/Citeseer/Pubmed.
//!
//! Run: `cargo run --release -p igcn-bench --bin fig12_reorder_latency`

use igcn_baselines::AwbGcn;
use igcn_bench::table::fmt_sig;
use igcn_bench::{standard_suite, write_result, HarnessArgs, Table};
use igcn_gnn::{GnnKind, GnnModel, ModelConfig};
use igcn_reorder::figure12_baselines;
use igcn_reorder::timing::time_reorder;
use igcn_sim::{GcnAccelerator, HardwareConfig, IGcnAccelerator};

fn main() {
    let args = HarnessArgs::parse();
    let suite = standard_suite(&args);
    let hw = HardwareConfig::paper_default();
    let igcn = IGcnAccelerator::new(hw);
    let awb = AwbGcn::new(hw);
    let reorderers = figure12_baselines();

    let mut table = Table::new(vec![
        "dataset",
        "pipeline",
        "reorder (µs)",
        "processing (µs)",
        "total (µs)",
        "vs I-GCN",
    ]);
    for run in &suite {
        let model = GnnModel::for_dataset(run.dataset, GnnKind::Gcn, ModelConfig::Algo);
        eprintln!("[fig12] simulating I-GCN on {}...", run.dataset);
        let igcn_report = igcn.simulate(&run.data.graph, &run.data.features, &model);
        table.row(vec![
            run.dataset.to_string(),
            "I-GCN (online)".to_string(),
            "0".to_string(),
            fmt_sig(igcn_report.latency_us()),
            fmt_sig(igcn_report.latency_us()),
            "1.00".to_string(),
        ]);
        let awb_report = awb.simulate(&run.data.graph, &run.data.features, &model);
        for reorderer in &reorderers {
            eprintln!("[fig12] timing {} on {}...", reorderer.name(), run.dataset);
            let runs = if args.quick { 1 } else { 3 };
            let timed = time_reorder(reorderer.as_ref(), &run.data.graph, runs);
            // AWB-GCN processes the reordered graph; its dataflow cost is
            // permutation-invariant in this model, which is conservative
            // *in the baseline's favour* (reordering can only help it).
            let total_us = timed.micros() + awb_report.latency_us();
            table.row(vec![
                run.dataset.to_string(),
                format!("{} + AWB-GCN", timed.name),
                fmt_sig(timed.micros()),
                fmt_sig(awb_report.latency_us()),
                fmt_sig(total_us),
                fmt_sig(total_us / igcn_report.latency_us()),
            ]);
        }
    }
    println!("\n# Figure 12: latency of I-GCN vs AWB-GCN + lightweight reordering\n");
    println!("{}", table.to_markdown());
    println!(
        "Paper claim: reordering latency alone exceeds I-GCN end-to-end inference\n\
         (>100x for Cora, Citeseer, Pubmed). Host-CPU timings here play the role of\n\
         the paper's 64-thread Xeon measurements."
    );
    let path = write_result("fig12_reorder_latency.csv", table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
