//! Figure 13: non-zero clustering effects, I-GCN vs reordering.
//!
//! Compares the clustering quality of I-GCN's islandization ordering
//! against the six lightweight reorderings (plus random/identity
//! controls): band fraction, normalised edge span, working-set hit rate,
//! and the fraction of non-zeros left *outside* the islandized structure
//! (0 for I-GCN by construction — the paper's "leaving the remaining
//! area empty").
//!
//! Run: `cargo run --release -p igcn-bench --bin fig13_clustering`

use igcn_bench::table::fmt_sig;
use igcn_bench::{standard_suite, write_result, HarnessArgs, Table};
use igcn_core::{islandize, IslandizationConfig};
use igcn_graph::stats::DensityGrid;
use igcn_reorder::quality::ordering_quality;
use igcn_reorder::{figure12_baselines, Identity, RandomOrder, Reorderer};

fn main() {
    let args = HarnessArgs::parse();
    let suite = standard_suite(&args);
    let mut table = Table::new(vec![
        "dataset",
        "ordering",
        "band frac",
        "norm. span",
        "window hit %",
        "outlier nnz %",
    ]);
    for run in &suite {
        let window = (run.data.graph.num_nodes() / 64).max(32);
        eprintln!("[fig13] islandizing {}...", run.dataset);
        let partition = islandize(&run.data.graph, &IslandizationConfig::default());
        let island_ordering = partition.ordering();
        let q = ordering_quality(&run.data.graph, Some(&island_ordering), window);
        table.row(vec![
            run.dataset.to_string(),
            "I-GCN islandization".to_string(),
            fmt_sig(q.band_fraction),
            fmt_sig(q.normalized_span),
            fmt_sig(q.window_hit_rate * 100.0),
            fmt_sig(partition.outlier_fraction(&run.data.graph) * 100.0),
        ]);
        let grid = DensityGrid::compute(&run.data.graph, Some(&island_ordering), 48);
        write_result(&format!("fig13_{}_igcn.ppm", run.dataset.id()), &grid.to_ppm());

        let mut reorderers: Vec<Box<dyn Reorderer>> = figure12_baselines();
        reorderers.push(Box::new(Identity));
        reorderers.push(Box::new(RandomOrder::default()));
        for r in &reorderers {
            eprintln!("[fig13] {} on {}...", r.name(), run.dataset);
            let p = r.reorder(&run.data.graph);
            let q = ordering_quality(&run.data.graph, Some(&p), window);
            // Outliers for a flat reordering: edges that do not fall
            // within the window (no island structure to assign them to).
            table.row(vec![
                run.dataset.to_string(),
                r.name(),
                fmt_sig(q.band_fraction),
                fmt_sig(q.normalized_span),
                fmt_sig(q.window_hit_rate * 100.0),
                fmt_sig((1.0 - q.window_hit_rate) * 100.0),
            ]);
        }
    }
    println!("\n# Figure 13: non-zero clustering comparison\n");
    println!("{}", table.to_markdown());
    println!(
        "Paper claim: islandization pushes all non-zeros into L-shapes and the\n\
         anti-diagonal (outliers = 0), while graph reordering methods leave many\n\
         outlying non-zeros needing special handling."
    );
    let path = write_result("fig13_clustering.csv", table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
