//! Figure 14: cross-platform comparison.
//!
//! Part (A) — normalised off-chip data access of I-GCN vs AWB-GCN, HyGCN
//! and PyG-CPU (assuming adjacency and features start off-chip, §4.6.1).
//! Part (B) — end-to-end latency speedups of I-GCN over the software
//! stacks, SIGMA and the prior GCN accelerators.
//!
//! Every platform is driven through the unified
//! [`igcn_core::accel::Accelerator`] trait: one backend list per
//! dataset, `prepare` once per model, `report` per request — the same
//! path a serving deployment uses.
//!
//! Run:
//! `cargo run --release -p igcn-bench --bin fig14_cross_platform -- --part traffic`
//! `cargo run --release -p igcn-bench --bin fig14_cross_platform -- --part speedup`
//! (no `--part` runs both)

use std::sync::Arc;

use igcn_baselines::{AwbGcn, HyGcn, Platform, PlatformKind, Sigma};
use igcn_bench::table::fmt_sig;
use igcn_bench::{standard_suite, write_result, HarnessArgs, Table};
use igcn_core::accel::{Accelerator, InferenceRequest};
use igcn_gnn::{GnnKind, GnnModel, ModelConfig, ModelWeights};
use igcn_graph::CsrGraph;
use igcn_sim::{HardwareConfig, IGcnAccelerator, SimBackend};

/// The Figure 14(A) platform list: I-GCN first (the normalisation
/// base), then the prior accelerators and the CPU software stack.
fn traffic_backends(graph: &Arc<CsrGraph>, hw: HardwareConfig) -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(SimBackend::new(IGcnAccelerator::new(hw), Arc::clone(graph))),
        Box::new(SimBackend::new(AwbGcn::new(hw), Arc::clone(graph))),
        Box::new(SimBackend::new(HyGcn::paper_config(), Arc::clone(graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::PygCpuE5_2680), Arc::clone(graph))),
    ]
}

/// The Figure 14(B) baseline list (I-GCN itself is handled separately
/// as the speedup reference).
fn speedup_baselines(graph: &Arc<CsrGraph>, hw: HardwareConfig) -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(SimBackend::new(Platform::new(PlatformKind::PygCpuE5_2680), Arc::clone(graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::DglCpuE5_2683), Arc::clone(graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::PygGpuV100), Arc::clone(graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::PygGpuRtx8000), Arc::clone(graph))),
        Box::new(SimBackend::new(Platform::new(PlatformKind::DglGpuV100), Arc::clone(graph))),
        Box::new(SimBackend::new(Sigma::paper_config(), Arc::clone(graph))),
        Box::new(SimBackend::new(HyGcn::paper_config(), Arc::clone(graph))),
        Box::new(SimBackend::new(AwbGcn::new(hw), Arc::clone(graph))),
    ]
}

fn traffic_part(args: &HarnessArgs) {
    let suite = standard_suite(args);
    let hw = HardwareConfig::paper_default();
    for config in [ModelConfig::Algo, ModelConfig::Hy] {
        let mut table =
            Table::new(vec!["dataset", "platform", "off-chip (MB)", "normalized (I-GCN = 1)"]);
        for run in &suite {
            let graph = Arc::new(run.data.graph.clone());
            let model = GnnModel::for_dataset(run.dataset, GnnKind::Gcn, config);
            let weights = ModelWeights::glorot(&model, args.seed);
            let request = InferenceRequest::new(run.data.features.clone());
            let mut base: Option<f64> = None;
            for mut backend in traffic_backends(&graph, hw) {
                eprintln!(
                    "[fig14A] {} on {} (GCN-{})...",
                    backend.name(),
                    run.dataset,
                    config.id()
                );
                backend.prepare(&model, &weights).expect("suite weights match the model");
                let report =
                    backend.report(&request).expect("suite features match the suite graph");
                let mb = report.offchip_bytes as f64 / 1e6;
                let norm = match base {
                    None => {
                        base = Some(mb);
                        1.0
                    }
                    Some(b) => mb / b,
                };
                table.row(vec![
                    run.dataset.to_string(),
                    backend.name(),
                    fmt_sig(mb),
                    fmt_sig(norm),
                ]);
            }
        }
        println!("\n# Figure 14(A): normalized off-chip data access (GCN-{})\n", config.id());
        println!("{}", table.to_markdown());
        write_result(&format!("fig14a_traffic_{}.csv", config.id()), table.to_csv().as_bytes());
    }
}

fn speedup_part(args: &HarnessArgs) {
    let suite = standard_suite(args);
    let hw = HardwareConfig::paper_default();
    let models: Vec<(GnnKind, ModelConfig)> = vec![
        (GnnKind::Gcn, ModelConfig::Algo),
        (GnnKind::Gcn, ModelConfig::Hy),
        (GnnKind::GraphSage, ModelConfig::Algo),
        (GnnKind::Gin, ModelConfig::Hy),
    ];
    let mut table =
        Table::new(vec!["model", "dataset", "platform", "latency (µs)", "I-GCN speedup"]);
    let mut geo: std::collections::HashMap<String, (f64, u32)> = std::collections::HashMap::new();
    for (kind, config) in &models {
        for run in &suite {
            let graph = Arc::new(run.data.graph.clone());
            let model = GnnModel::for_dataset(run.dataset, *kind, *config);
            let weights = ModelWeights::glorot(&model, args.seed);
            let request = InferenceRequest::new(run.data.features.clone());
            let label = model.label(*config);
            eprintln!("[fig14B] I-GCN on {} ({label})...", run.dataset);
            let mut igcn = SimBackend::new(IGcnAccelerator::new(hw), Arc::clone(&graph));
            igcn.prepare(&model, &weights).expect("suite weights match the model");
            let ours = igcn.report(&request).expect("suite features match the suite graph");
            table.row(vec![
                label.clone(),
                run.dataset.to_string(),
                "I-GCN".to_string(),
                fmt_sig(ours.latency_us()),
                "1.00".to_string(),
            ]);
            for mut backend in speedup_baselines(&graph, hw) {
                backend.prepare(&model, &weights).expect("suite weights match the model");
                let r = backend.report(&request).expect("suite features match the suite graph");
                let speedup = ours.speedup_over(&r);
                let entry = geo.entry(backend.name()).or_insert((0.0, 0));
                entry.0 += speedup.ln();
                entry.1 += 1;
                table.row(vec![
                    label.clone(),
                    run.dataset.to_string(),
                    backend.name(),
                    fmt_sig(r.latency_us()),
                    fmt_sig(speedup),
                ]);
            }
        }
    }
    println!("\n# Figure 14(B): end-to-end latency and I-GCN speedups\n");
    println!("{}", table.to_markdown());

    let mut summary = Table::new(vec!["platform", "geomean I-GCN speedup", "paper (avg)"]);
    let paper: &[(&str, &str)] = &[
        ("PyG-CPU (E5-2680v3)", "9568x"),
        ("DGL-CPU (E5-2683v3)", "1243x"),
        ("PyG-GPU (V100)", "368x (PyG GPUs avg)"),
        ("PyG-GPU (RTX 8000)", "368x (PyG GPUs avg)"),
        ("DGL-GPU (V100)", "453x"),
        ("SIGMA", "16x"),
        ("HyGCN", "5.7x (accelerators avg)"),
        ("AWB-GCN", "5.7x (accelerators avg)"),
    ];
    for (name, note) in paper {
        if let Some((lnsum, count)) = geo.get(*name) {
            summary.row(vec![
                name.to_string(),
                fmt_sig((lnsum / *count as f64).exp()),
                note.to_string(),
            ]);
        }
    }
    println!("## Geomean speedups vs paper\n\n{}", summary.to_markdown());
    write_result("fig14b_speedup.csv", table.to_csv().as_bytes());
    let path = write_result("fig14b_summary.csv", summary.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args = HarnessArgs::parse();
    match args.part.as_deref() {
        Some("traffic") => traffic_part(&args),
        Some("speedup") => speedup_part(&args),
        Some(other) => panic!("unknown part {other}; use traffic or speedup"),
        None => {
            traffic_part(&args);
            speedup_part(&args);
        }
    }
}
