//! Figure 14: cross-platform comparison.
//!
//! Part (A) — normalised off-chip data access of I-GCN vs AWB-GCN, HyGCN
//! and PyG-CPU (assuming adjacency and features start off-chip, §4.6.1).
//! Part (B) — end-to-end latency speedups of I-GCN over the software
//! stacks, SIGMA and the prior GCN accelerators.
//!
//! Run:
//! `cargo run --release -p igcn-bench --bin fig14_cross_platform -- --part traffic`
//! `cargo run --release -p igcn-bench --bin fig14_cross_platform -- --part speedup`
//! (no `--part` runs both)

use igcn_baselines::{AwbGcn, HyGcn, Platform, PlatformKind, Sigma};
use igcn_bench::table::fmt_sig;
use igcn_bench::{standard_suite, write_result, HarnessArgs, Table};
use igcn_gnn::{GnnKind, GnnModel, ModelConfig};
use igcn_sim::{GcnAccelerator, HardwareConfig, IGcnAccelerator};

fn traffic_part(args: &HarnessArgs) {
    let suite = standard_suite(args);
    let hw = HardwareConfig::paper_default();
    let platforms: Vec<Box<dyn GcnAccelerator>> = vec![
        Box::new(IGcnAccelerator::new(hw)),
        Box::new(AwbGcn::new(hw)),
        Box::new(HyGcn::paper_config()),
        Box::new(Platform::new(PlatformKind::PygCpuE5_2680)),
    ];
    for config in [ModelConfig::Algo, ModelConfig::Hy] {
        let mut table = Table::new(vec![
            "dataset",
            "platform",
            "off-chip (MB)",
            "normalized (I-GCN = 1)",
        ]);
        for run in &suite {
            let model = GnnModel::for_dataset(run.dataset, GnnKind::Gcn, config);
            let mut base: Option<f64> = None;
            for p in &platforms {
                eprintln!(
                    "[fig14A] {} on {} (GCN-{})...",
                    p.name(),
                    run.dataset,
                    config.id()
                );
                let r = p.simulate(&run.data.graph, &run.data.features, &model);
                let mb = r.offchip_bytes as f64 / 1e6;
                let norm = match base {
                    None => {
                        base = Some(mb);
                        1.0
                    }
                    Some(b) => mb / b,
                };
                table.row(vec![
                    run.dataset.to_string(),
                    p.name(),
                    fmt_sig(mb),
                    fmt_sig(norm),
                ]);
            }
        }
        println!(
            "\n# Figure 14(A): normalized off-chip data access (GCN-{})\n",
            config.id()
        );
        println!("{}", table.to_markdown());
        write_result(
            &format!("fig14a_traffic_{}.csv", config.id()),
            table.to_csv().as_bytes(),
        );
    }
}

fn speedup_part(args: &HarnessArgs) {
    let suite = standard_suite(args);
    let hw = HardwareConfig::paper_default();
    let igcn = IGcnAccelerator::new(hw);
    let baselines: Vec<Box<dyn GcnAccelerator>> = vec![
        Box::new(Platform::new(PlatformKind::PygCpuE5_2680)),
        Box::new(Platform::new(PlatformKind::DglCpuE5_2683)),
        Box::new(Platform::new(PlatformKind::PygGpuV100)),
        Box::new(Platform::new(PlatformKind::PygGpuRtx8000)),
        Box::new(Platform::new(PlatformKind::DglGpuV100)),
        Box::new(Sigma::paper_config()),
        Box::new(HyGcn::paper_config()),
        Box::new(AwbGcn::new(hw)),
    ];
    let models: Vec<(GnnKind, ModelConfig)> = vec![
        (GnnKind::Gcn, ModelConfig::Algo),
        (GnnKind::Gcn, ModelConfig::Hy),
        (GnnKind::GraphSage, ModelConfig::Algo),
        (GnnKind::Gin, ModelConfig::Hy),
    ];
    let mut table = Table::new(vec![
        "model",
        "dataset",
        "platform",
        "latency (µs)",
        "I-GCN speedup",
    ]);
    let mut geo: std::collections::HashMap<String, (f64, u32)> = std::collections::HashMap::new();
    for (kind, config) in &models {
        for run in &suite {
            let model = GnnModel::for_dataset(run.dataset, *kind, *config);
            let label = model.label(*config);
            eprintln!("[fig14B] I-GCN on {} ({label})...", run.dataset);
            let ours = igcn.simulate(&run.data.graph, &run.data.features, &model);
            table.row(vec![
                label.clone(),
                run.dataset.to_string(),
                "I-GCN".to_string(),
                fmt_sig(ours.latency_us()),
                "1.00".to_string(),
            ]);
            for b in &baselines {
                let r = b.simulate(&run.data.graph, &run.data.features, &model);
                let speedup = ours.speedup_over(&r);
                let entry = geo.entry(b.name()).or_insert((0.0, 0));
                entry.0 += speedup.ln();
                entry.1 += 1;
                table.row(vec![
                    label.clone(),
                    run.dataset.to_string(),
                    b.name(),
                    fmt_sig(r.latency_us()),
                    fmt_sig(speedup),
                ]);
            }
        }
    }
    println!("\n# Figure 14(B): end-to-end latency and I-GCN speedups\n");
    println!("{}", table.to_markdown());

    let mut summary = Table::new(vec!["platform", "geomean I-GCN speedup", "paper (avg)"]);
    let paper: &[(&str, &str)] = &[
        ("PyG-CPU (E5-2680v3)", "9568x"),
        ("DGL-CPU (E5-2683v3)", "1243x"),
        ("PyG-GPU (V100)", "368x (PyG GPUs avg)"),
        ("PyG-GPU (RTX 8000)", "368x (PyG GPUs avg)"),
        ("DGL-GPU (V100)", "453x"),
        ("SIGMA", "16x"),
        ("HyGCN", "5.7x (accelerators avg)"),
        ("AWB-GCN", "5.7x (accelerators avg)"),
    ];
    for (name, note) in paper {
        if let Some((lnsum, count)) = geo.get(*name) {
            summary.row(vec![
                name.to_string(),
                fmt_sig((lnsum / *count as f64).exp()),
                note.to_string(),
            ]);
        }
    }
    println!("## Geomean speedups vs paper\n\n{}", summary.to_markdown());
    write_result("fig14b_speedup.csv", table.to_csv().as_bytes());
    let path = write_result("fig14b_summary.csv", summary.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args = HarnessArgs::parse();
    match args.part.as_deref() {
        Some("traffic") => traffic_part(&args),
        Some("speedup") => speedup_part(&args),
        Some(other) => panic!("unknown part {other}; use traffic or speedup"),
        None => {
            traffic_part(&args);
            speedup_part(&args);
        }
    }
}
