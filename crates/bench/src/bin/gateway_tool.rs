//! Gateway tooling: serve a snapshot or shard-manifest fleet over TCP,
//! and drive the built-in open-loop load generator against a
//! self-hosted gateway.
//!
//! ```text
//! gateway_tool serve (--snapshot <path> | --manifest <path>) [--addr host:port]
//! gateway_tool load  [--quick] [--seed N] [--duration-s S] [--rate RPS] [--clients N]
//! ```
//!
//! * **serve** — boots an engine from a standard snapshot (or a whole
//!   fleet from a [`ShardManifest`](igcn_store::ShardManifest)) and
//!   serves it on `--addr` until killed. IO/worker threads come from
//!   `IGCN_IO_THREADS` / `IGCN_WORKER_THREADS`.
//! * **load** — generates the Cora bin, snapshots it, boots a gateway
//!   from that snapshot on an ephemeral port (exercising the same boot
//!   path `serve` uses), then drives open-loop client threads over
//!   **both** wire protocols: each client sends on a fixed schedule
//!   derived from `--rate`, regardless of completions. Sustained RPS
//!   and p50/p99 latency land in `results/gateway_load.json`; the run
//!   exits non-zero if nothing completed or any protocol error was
//!   counted — the CI smoke contract.
//!
//! On a 1-CPU container the absolute RPS/latency numbers are
//! order-of-magnitude wall-clock references, not portable measurements;
//! the JSON says so.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, Table};
use igcn_core::{Accelerator, ExecConfig};
use igcn_gateway::{BinaryClient, Gateway, GatewayConfig, HttpClient, InferReply};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::datasets::Dataset;
use igcn_graph::SparseFeatures;
use igcn_shard::ShardedEngine;
use igcn_store::Snapshot;
use serde::json::{obj, JsonValue};

fn die(e: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(2)
}

struct Flags {
    snapshot: Option<PathBuf>,
    manifest: Option<PathBuf>,
    addr: String,
    seed: u64,
    quick: bool,
    duration_s: Option<f64>,
    rate: Option<f64>,
    clients: Option<usize>,
}

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut flags = Flags {
            snapshot: None,
            manifest: None,
            addr: "127.0.0.1:7171".to_string(),
            seed: 42,
            quick: false,
            duration_s: None,
            rate: None,
            clients: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
            };
            let parse = |name: &str, v: &str| -> f64 {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("{name} value must be a number");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--snapshot" => flags.snapshot = Some(PathBuf::from(value("--snapshot"))),
                "--manifest" => flags.manifest = Some(PathBuf::from(value("--manifest"))),
                "--addr" => flags.addr = value("--addr").clone(),
                "--seed" => flags.seed = parse("--seed", value("--seed")) as u64,
                "--quick" => flags.quick = true,
                "--duration-s" => {
                    flags.duration_s = Some(parse("--duration-s", value("--duration-s")))
                }
                "--rate" => flags.rate = Some(parse("--rate", value("--rate"))),
                "--clients" => {
                    flags.clients = Some(parse("--clients", value("--clients")) as usize)
                }
                other => {
                    eprintln!(
                        "unknown flag {other}; supported: --snapshot --manifest --addr --seed \
                         --quick --duration-s --rate --clients"
                    );
                    std::process::exit(2);
                }
            }
        }
        flags
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: gateway_tool <serve|load> [flags]\nsee the module docs for per-command flags"
        );
        return ExitCode::from(2);
    };
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "serve" => serve(&flags),
        "load" => load(&flags),
        other => {
            eprintln!("unknown command {other:?}; supported: serve, load");
            ExitCode::from(2)
        }
    }
}

fn serve(flags: &Flags) -> ExitCode {
    let backend: Arc<dyn Accelerator> = match (&flags.snapshot, &flags.manifest) {
        (Some(path), None) => {
            let snapshot = match Snapshot::read(path) {
                Ok(s) => s,
                Err(e) => return die(e),
            };
            if snapshot.model.is_none() {
                eprintln!("error: snapshot stores no model; nothing to serve");
                return ExitCode::from(2);
            }
            match snapshot.warm_engine(ExecConfig::default()) {
                Ok(engine) => Arc::new(engine),
                Err(e) => return die(e),
            }
        }
        (None, Some(path)) => match ShardedEngine::from_manifest(path, ExecConfig::default()) {
            Ok(fleet) => Arc::new(fleet),
            Err(e) => return die(e),
        },
        _ => {
            eprintln!("serve requires exactly one of --snapshot <path> or --manifest <path>");
            return ExitCode::from(2);
        }
    };
    let name = backend.name();
    let gateway = match Gateway::serve(backend, flags.addr.as_str(), GatewayConfig::from_env()) {
        Ok(g) => g,
        Err(e) => return die(e),
    };
    println!("serving {name} on {} (both protocols; kill to stop)", gateway.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(60));
        let stats = gateway.stats();
        eprintln!(
            "[stats] admitted={} completed={} shed={} deadline_expired={} protocol_errors={}",
            stats.admitted,
            stats.completed,
            stats.shed,
            stats.deadline_expired,
            stats.protocol_errors
        );
    }
}

/// One load client's tally.
#[derive(Default)]
struct Tally {
    sent: u64,
    completed: u64,
    shed: u64,
    deadline: u64,
    errors: u64,
    /// Completed-request latencies in seconds.
    latencies: Vec<f64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.sent += other.sent;
        self.completed += other.completed;
        self.shed += other.shed;
        self.deadline += other.deadline;
        self.errors += other.errors;
        self.latencies.extend(other.latencies);
    }
}

enum LoadClient {
    Http(HttpClient),
    Binary(BinaryClient),
}

impl LoadClient {
    fn infer(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
    ) -> std::io::Result<InferReply> {
        match self {
            LoadClient::Http(c) => c.infer(id, deadline_ms, features),
            LoadClient::Binary(c) => c.infer(id, deadline_ms, features),
        }
    }
}

/// Open loop: send at `interval` ticks from `start` until `until`,
/// regardless of how long replies take (a late reply just delays the
/// next send past its slot — the schedule does not stretch).
fn drive(mut client: LoadClient, idx: u64, interval: Duration, until: Instant, x: &SparseFeatures) {
    let start = Instant::now();
    let mut tally = Tally::default();
    let mut k: u32 = 0;
    while Instant::now() < until {
        let slot = start + interval.mul_f64(f64::from(k));
        if let Some(wait) = slot.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        k += 1;
        let sent_at = Instant::now();
        tally.sent += 1;
        match client.infer((idx << 32) | u64::from(k), Some(10_000), x) {
            Ok(InferReply::Output { .. }) => {
                tally.completed += 1;
                tally.latencies.push(sent_at.elapsed().as_secs_f64());
            }
            Ok(InferReply::Shed) => tally.shed += 1,
            Ok(InferReply::DeadlineExceeded) => tally.deadline += 1,
            Ok(InferReply::Error(e)) => {
                igcn_log::warn!("gateway_tool", "server error: {e}", client = idx);
                tally.errors += 1;
            }
            Err(e) => {
                igcn_log::warn!("gateway_tool", "transport error: {e}", client = idx);
                tally.errors += 1;
                break;
            }
        }
    }
    TALLIES.lock().expect("tally lock").push((idx, tally));
}

static TALLIES: std::sync::Mutex<Vec<(u64, Tally)>> = std::sync::Mutex::new(Vec::new());

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[allow(clippy::too_many_lines)]
fn load(flags: &Flags) -> ExitCode {
    let duration =
        Duration::from_secs_f64(flags.duration_s.unwrap_or(if flags.quick { 2.0 } else { 10.0 }));
    let rate = flags.rate.unwrap_or(if flags.quick { 40.0 } else { 120.0 });
    let clients = flags.clients.unwrap_or(if flags.quick { 2 } else { 4 }).max(2);

    // The served bin: Cora, snapshotted and booted back — the same
    // path `gateway_tool serve --snapshot` takes.
    let scale = if flags.quick { 0.25 } else { 1.0 };
    let data = Dataset::Cora.generate_scaled(scale, flags.seed);
    let feature_dim = data.features.num_cols();
    let model = GnnModel::gcn(feature_dim, 16, 8);
    let weights = ModelWeights::glorot(&model, flags.seed);
    let graph = Arc::new(data.graph);
    let n = graph.num_nodes();
    eprintln!("[load] islandizing cora x{scale} ({n} nodes)...");
    let mut engine =
        igcn_core::IGcnEngine::builder(Arc::clone(&graph)).build().expect("cora bin is loop-free");
    engine.prepare(&model, &weights).expect("weights match the model");

    let dir = std::env::temp_dir().join(format!("igcn-gateway-load-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return die(e);
    }
    let snap_path = dir.join("cora.snap");
    if let Err(e) = Snapshot::capture(&engine).write_with_checksum(&snap_path) {
        return die(e);
    }
    let snapshot = match Snapshot::read(&snap_path) {
        Ok(s) => s,
        Err(e) => return die(e),
    };
    let backend: Arc<dyn Accelerator> = match snapshot.warm_engine(ExecConfig::default()) {
        Ok(e) => Arc::new(e),
        Err(e) => return die(e),
    };

    let cfg = GatewayConfig::from_env();
    let io_threads = cfg.io_threads;
    let gateway = match Gateway::serve(backend, ("127.0.0.1", 0), cfg) {
        Ok(g) => g,
        Err(e) => return die(e),
    };
    let addr = gateway.local_addr();
    eprintln!(
        "[load] gateway on {addr}; {clients} clients, open loop at {rate} rps for {:.1}s...",
        duration.as_secs_f64()
    );

    let interval = Duration::from_secs_f64(f64::from(clients as u32) / rate);
    let until = Instant::now() + duration;
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let x = data.features.clone();
            std::thread::spawn(move || {
                // Even client indices speak HTTP, odd ones binary.
                let client = if i % 2 == 0 {
                    LoadClient::Http(HttpClient::connect(addr).expect("gateway accepts"))
                } else {
                    LoadClient::Binary(BinaryClient::connect(addr).expect("gateway accepts"))
                };
                drive(client, i as u64, interval, until, &x);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("load client panicked");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = gateway.stats();
    gateway.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // Merge per-protocol tallies (even client index = HTTP).
    let mut http = Tally::default();
    let mut binary = Tally::default();
    for (idx, tally) in TALLIES.lock().expect("tally lock").drain(..) {
        if idx % 2 == 0 {
            http.merge(tally);
        } else {
            binary.merge(tally);
        }
    }
    let completed = http.completed + binary.completed;
    let sustained_rps = completed as f64 / elapsed.max(1e-9);

    let mut table =
        Table::new(vec!["protocol", "sent", "completed", "shed", "p50 (ms)", "p99 (ms)"]);
    let mut proto_json = Vec::new();
    for (name, tally) in [("http", &mut http), ("binary", &mut binary)] {
        tally.latencies.sort_by(f64::total_cmp);
        let p50 = percentile(&tally.latencies, 0.50);
        let p99 = percentile(&tally.latencies, 0.99);
        table.row(vec![
            name.to_string(),
            tally.sent.to_string(),
            tally.completed.to_string(),
            tally.shed.to_string(),
            fmt_sig(p50 * 1e3),
            fmt_sig(p99 * 1e3),
        ]);
        proto_json.push((
            name,
            obj([
                ("sent", JsonValue::Uint(tally.sent)),
                ("completed", JsonValue::Uint(tally.completed)),
                ("shed", JsonValue::Uint(tally.shed)),
                ("deadline_expired", JsonValue::Uint(tally.deadline)),
                ("client_errors", JsonValue::Uint(tally.errors)),
                ("p50_s", JsonValue::from_f64_rounded(p50)),
                ("p99_s", JsonValue::from_f64_rounded(p99)),
            ]),
        ));
    }
    println!("\n# Gateway open-loop load (cora x{scale}, both protocols, one listener)\n");
    println!("{}", table.to_markdown());
    println!(
        "sustained {sustained_rps:.1} rps over {elapsed:.1}s; gateway counters: admitted={} \
         completed={} shed={} deadline_expired={} protocol_errors={}",
        stats.admitted, stats.completed, stats.shed, stats.deadline_expired, stats.protocol_errors
    );

    let result = obj([
        (
            "note",
            JsonValue::Str(
                "recorded on a 1-CPU container: IO threads, workers and load clients share one \
                 core, so RPS/latency are order-of-magnitude wall-clock references, not portable \
                 measurements — re-record on real hardware for the serving story"
                    .to_string(),
            ),
        ),
        (
            "config",
            obj([
                ("bin", JsonValue::Str("cora".to_string())),
                ("scale", JsonValue::from_f64_rounded(scale)),
                ("nodes", JsonValue::Uint(n as u64)),
                ("seed", JsonValue::Uint(flags.seed)),
                ("clients", JsonValue::Uint(clients as u64)),
                ("target_rate_rps", JsonValue::from_f64_rounded(rate)),
                ("duration_s", JsonValue::from_f64_rounded(duration.as_secs_f64())),
                ("io_threads", JsonValue::Uint(io_threads as u64)),
                ("workers", JsonValue::Uint(stats.serving.workers as u64)),
                ("deadline_ms", JsonValue::Uint(10_000)),
            ]),
        ),
        ("elapsed_s", JsonValue::from_f64_rounded(elapsed)),
        ("sustained_rps", JsonValue::from_f64_rounded(sustained_rps)),
        ("http", proto_json.remove(0).1),
        ("binary", proto_json.remove(0).1),
        (
            "gateway",
            obj([
                ("admitted", JsonValue::Uint(stats.admitted)),
                ("dispatched", JsonValue::Uint(stats.dispatched)),
                ("completed", JsonValue::Uint(stats.completed)),
                ("failed", JsonValue::Uint(stats.failed)),
                ("shed", JsonValue::Uint(stats.shed)),
                ("deadline_expired", JsonValue::Uint(stats.deadline_expired)),
                ("protocol_errors", JsonValue::Uint(stats.protocol_errors)),
            ]),
        ),
    ]);
    let path = write_result("gateway_load.json", result.encode_pretty().as_bytes());
    eprintln!("wrote {}", path.display());

    // The CI smoke contract: real completions, zero protocol errors.
    let client_errors = http.errors + binary.errors;
    if completed == 0 || stats.protocol_errors > 0 || client_errors > 0 {
        eprintln!(
            "error: smoke contract failed (completed={completed}, protocol_errors={}, \
             client_errors={client_errors})",
            stats.protocol_errors
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
