//! Table 1: comparison of PULL, PUSH and Islandization methods.
//!
//! Regenerates the paper's qualitative table with *measured* quantities
//! per dataset: minimum on-chip buffer, off-chip traffic of one
//! aggregation, operand reuse, load imbalance and prunable redundancy.
//!
//! Run: `cargo run --release -p igcn-bench --bin table1_methods`

use igcn_baselines::methods::profile_methods;
use igcn_bench::table::fmt_sig;
use igcn_bench::{standard_suite, write_result, HarnessArgs, Table};

fn main() {
    let args = HarnessArgs::parse();
    let suite = standard_suite(&args);
    let mut table = Table::new(vec![
        "dataset",
        "method",
        "on-chip buffer (B)",
        "off-chip (B)",
        "XW fetches/row",
        "A passes",
        "load imbalance",
        "prunable %",
    ]);
    for run in &suite {
        let hidden = run.data.spec.hidden_algo;
        for p in profile_methods(&run.data.graph, hidden) {
            table.row(vec![
                run.dataset.to_string(),
                p.method.clone(),
                p.onchip_buffer_bytes.to_string(),
                p.offchip_bytes.to_string(),
                fmt_sig(p.xw_fetches_per_row),
                fmt_sig(p.a_passes),
                fmt_sig(p.load_imbalance_gini),
                fmt_sig(p.prunable_fraction * 100.0),
            ]);
        }
    }
    println!("\n# Table 1 (measured): PULL vs PUSH vs Islandization\n");
    println!("{}", table.to_markdown());
    println!(
        "Paper's qualitative claims: PULL = small buffer / high off-chip / poor XW reuse;\n\
         PUSH = large buffer / high off-chip / A re-read per channel / load imbalance;\n\
         Islandization = low on both, balanced, redundancy removable."
    );
    let path = write_result("table1_methods.csv", table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
