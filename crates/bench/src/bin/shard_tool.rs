//! Shard tooling: partition a graph into a snapshot fleet, inspect and
//! verify manifests, and benchmark sharded execution.
//!
//! ```text
//! shard_tool partition --out-dir <dir> --name <name> --shards K (--bin <name> | --edge-list <file>) [--seed N] [--quick]
//! shard_tool inspect   --manifest <path>
//! shard_tool verify    --manifest <path> [--deep]
//! shard_tool bench     [--quick] [--seed N] [--shards K,K,...]
//! ```
//!
//! * **partition** — islandizes a dataset bin (or a real edge-list
//!   dump), assigns whole islands to `K` shards (hubs replicated as the
//!   halo), and writes per-shard snapshots + the coordinator image +
//!   the checksummed manifest under `--out-dir`.
//! * **inspect** — prints the manifest header and per-shard routing
//!   metadata without opening the snapshots.
//! * **verify** — fleet cold-start from the manifest, then asserts the
//!   fleet's inference is **bit-identical** to a single engine booted
//!   from the coordinator snapshot. `--deep` also audits every shard
//!   partition's structural invariants.
//! * **bench** — sweeps shard counts over the dataset bins and records
//!   per-shard work / cut / halo statistics plus wall-clock in
//!   `results/shard_scaling.json`. On a 1-CPU container the wall-clock
//!   speedup is ≈1× by construction — the structural columns (balance,
//!   cut fraction, replication, halo bytes) are the portable result;
//!   re-record on multi-core hardware for the scaling story.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, BenchHarness, Table};
use igcn_core::{Accelerator, ExecConfig, IGcnEngine, InferenceRequest};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::datasets::Dataset;
use igcn_graph::generate::barabasi_albert;
use igcn_graph::io::{read_edge_list_flexible, EdgeListOptions};
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_shard::{ShardError, ShardedEngine};
use igcn_store::{ShardManifest, Snapshot};
use serde::json::{obj, JsonValue};

/// The dataset bins of the shard sweep (a citation bin, the serving
/// power-law bin, and the NELL-sized stand-in).
const BINS: [&str; 3] = ["cora", "powerlaw50k", "nell"];

struct BinData {
    graph: Arc<CsrGraph>,
    features: SparseFeatures,
    feature_dim: usize,
}

fn generate_bin(name: &str, seed: u64, quick: bool) -> BinData {
    let dataset_bin = |d: Dataset, scale: f64| {
        let data = d.generate_scaled(scale, seed);
        let feature_dim = data.features.num_cols();
        BinData { graph: Arc::new(data.graph), features: data.features, feature_dim }
    };
    match name {
        "cora" => dataset_bin(Dataset::Cora, if quick { 0.25 } else { 1.0 }),
        "citeseer" => dataset_bin(Dataset::Citeseer, if quick { 0.25 } else { 1.0 }),
        "pubmed" => dataset_bin(Dataset::Pubmed, if quick { 0.1 } else { 1.0 }),
        "nell" => dataset_bin(Dataset::Nell, if quick { 0.05 } else { 1.0 }),
        "powerlaw50k" => {
            let n = if quick { 4_000 } else { 50_000 };
            let feature_dim = 32;
            BinData {
                graph: Arc::new(barabasi_albert(n, 8, seed)),
                features: SparseFeatures::random(n, feature_dim, 0.05, seed + 1),
                feature_dim,
            }
        }
        other => {
            eprintln!("unknown bin {other:?}; supported: {BINS:?} citeseer pubmed");
            std::process::exit(2);
        }
    }
}

fn model_for(bin: &BinData, seed: u64) -> (GnnModel, ModelWeights) {
    let model = GnnModel::gcn(bin.feature_dim, 16, 8);
    let weights = ModelWeights::glorot(&model, seed);
    (model, weights)
}

fn die(e: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(2)
}

struct Flags {
    out_dir: Option<PathBuf>,
    name: String,
    manifest: Option<PathBuf>,
    bin: Option<String>,
    edge_list: Option<PathBuf>,
    shards: Vec<usize>,
    seed: u64,
    quick: bool,
    deep: bool,
}

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut flags = Flags {
            out_dir: None,
            name: "fleet".to_string(),
            manifest: None,
            bin: None,
            edge_list: None,
            shards: Vec::new(),
            seed: 42,
            quick: false,
            deep: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--out-dir" => flags.out_dir = Some(PathBuf::from(value("--out-dir"))),
                "--name" => flags.name = value("--name").clone(),
                "--manifest" => flags.manifest = Some(PathBuf::from(value("--manifest"))),
                "--bin" => flags.bin = Some(value("--bin").clone()),
                "--edge-list" => flags.edge_list = Some(PathBuf::from(value("--edge-list"))),
                "--shards" => {
                    flags.shards = value("--shards")
                        .split(',')
                        .map(|t| {
                            t.trim().parse().unwrap_or_else(|_| {
                                eprintln!("--shards takes comma-separated positive integers");
                                std::process::exit(2);
                            })
                        })
                        .collect()
                }
                "--seed" => {
                    flags.seed = value("--seed").parse().unwrap_or_else(|_| {
                        eprintln!("--seed value must be an integer");
                        std::process::exit(2);
                    })
                }
                "--quick" => flags.quick = true,
                "--deep" => flags.deep = true,
                other => {
                    eprintln!(
                        "unknown flag {other}; supported: --out-dir --name --manifest --bin \
                         --edge-list --shards --seed --quick --deep"
                    );
                    std::process::exit(2);
                }
            }
        }
        flags
    }

    fn manifest_path(&self) -> &PathBuf {
        self.manifest.as_ref().unwrap_or_else(|| {
            eprintln!("--manifest <path> is required");
            std::process::exit(2);
        })
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: shard_tool <partition|inspect|verify|bench> [flags]\n\
             see the module docs for per-command flags"
        );
        return ExitCode::from(2);
    };
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "partition" => partition(&flags),
        "inspect" => inspect(&flags),
        "verify" => verify(&flags),
        "bench" => bench(&flags),
        other => {
            eprintln!("unknown command {other:?}; supported: partition, inspect, verify, bench");
            ExitCode::from(2)
        }
    }
}

fn load_bin(flags: &Flags) -> Result<BinData, ExitCode> {
    match (&flags.edge_list, &flags.bin) {
        (Some(path), _) => {
            eprintln!("[partition] streaming edge list {}...", path.display());
            let file = std::fs::File::open(path).map_err(|e| {
                eprintln!("error: cannot open {}: {e}", path.display());
                ExitCode::from(2)
            })?;
            let graph =
                read_edge_list_flexible(std::io::BufReader::new(file), EdgeListOptions::default())
                    .map_err(die)?;
            let feature_dim = 32;
            let features =
                SparseFeatures::random(graph.num_nodes(), feature_dim, 0.05, flags.seed + 1);
            Ok(BinData { graph: Arc::new(graph), features, feature_dim })
        }
        (None, Some(name)) => Ok(generate_bin(name, flags.seed, flags.quick)),
        (None, None) => {
            eprintln!("partition requires --bin <name> or --edge-list <file>");
            Err(ExitCode::from(2))
        }
    }
}

fn partition(flags: &Flags) -> ExitCode {
    let Some(out_dir) = &flags.out_dir else {
        eprintln!("partition requires --out-dir <dir>");
        return ExitCode::from(2);
    };
    let shards = *flags.shards.first().unwrap_or(&2);
    let bin = match load_bin(flags) {
        Ok(b) => b,
        Err(code) => return code,
    };
    eprintln!(
        "[partition] islandizing {} nodes / {} undirected edges...",
        bin.graph.num_nodes(),
        bin.graph.num_undirected_edges()
    );
    let (model, weights) = model_for(&bin, flags.seed);
    let mut engine =
        IGcnEngine::builder(Arc::clone(&bin.graph)).build().expect("bin graphs are loop-free");
    engine.prepare(&model, &weights).expect("weights match the model");
    let sharded = match ShardedEngine::from_engine(&engine, shards) {
        Ok(s) => s,
        Err(e) => return die(e),
    };
    let manifest_path = match sharded.save_manifest(out_dir, &flags.name) {
        Ok(p) => p,
        Err(e) => return die(e),
    };
    let report = sharded.sharding_report();
    println!(
        "wrote {} ({} shards, {} islands, {} hubs)",
        manifest_path.display(),
        sharded.num_shards(),
        sharded.partition().num_islands(),
        sharded.partition().num_hubs()
    );
    for (s, summary) in report.per_shard.iter().enumerate() {
        println!(
            "  shard {s}: {} islands, {} nodes, {} halo hubs, work {}",
            summary.islands, summary.nodes, summary.replicated_hubs, summary.work
        );
    }
    println!(
        "  cut: {}/{} undirected edges ({:.2}%), hub replication ×{:.2}",
        report.cut_edges,
        report.total_undirected_edges,
        report.cut_fraction * 100.0,
        report.replication_factor
    );
    ExitCode::SUCCESS
}

fn inspect(flags: &Flags) -> ExitCode {
    let path = flags.manifest_path();
    let info = match ShardManifest::inspect(path) {
        Ok(i) => i,
        Err(e) => return die(e),
    };
    println!("manifest {}", path.display());
    println!("  format version : {}", info.version);
    println!("  payload bytes  : {}", info.payload_bytes);
    println!("  checksum       : {:#018x}", info.checksum);
    println!("  checksum ok    : {}", info.checksum_ok);
    if !info.checksum_ok {
        eprintln!("error: payload bytes do not match the recorded checksum");
        return ExitCode::from(1);
    }
    let manifest = match ShardManifest::read(path) {
        Ok(m) => m,
        Err(e) => return die(e),
    };
    println!(
        "  coordinator    : {} (checksum {:#018x})",
        manifest.coordinator.file, manifest.coordinator.checksum
    );
    for (s, shard) in manifest.shards.iter().enumerate() {
        println!(
            "  shard {s} : {} — {} islands, {} halo hubs, {} nodes",
            shard.snapshot.file,
            shard.islands.len(),
            shard.hub_global.len(),
            shard.gather_original.len()
        );
    }
    ExitCode::SUCCESS
}

fn verify(flags: &Flags) -> ExitCode {
    let path = flags.manifest_path();
    let manifest = match ShardManifest::read(path) {
        Ok(m) => m,
        Err(e) => return die(e),
    };
    if let Err(e) = manifest.verify_files(path) {
        return die(e);
    }
    eprintln!("[verify] checksum pairing ok; cold-starting the fleet...");
    let fleet = match ShardedEngine::from_manifest(path, ExecConfig::default()) {
        Ok(f) => f,
        Err(e) => return die(e),
    };
    // The reference: a single engine warm-booted from the coordinator
    // image — the fleet must serve bit-identically to it.
    let coordinator_path = ShardManifest::resolve(path, &manifest.coordinator);
    let snapshot = match Snapshot::read(&coordinator_path) {
        Ok(s) => s,
        Err(e) => return die(e),
    };
    let single = match snapshot.warm_engine(ExecConfig::default()) {
        Ok(e) => e,
        Err(e) => return die(e),
    };
    let n = single.graph().num_nodes();
    let in_dim = snapshot
        .model
        .as_ref()
        .map(|(m, _)| m.layers().first().map(|l| l.in_dim).unwrap_or(0))
        .unwrap_or(0);
    if in_dim == 0 {
        eprintln!("[verify] no model stored; structural checks only");
    } else {
        let probe = InferenceRequest::new(SparseFeatures::random(n, in_dim, 0.05, 7));
        let a = match single.infer(&probe) {
            Ok(r) => r,
            Err(e) => return die(e),
        };
        let b = match fleet.infer(&probe) {
            Ok(r) => r,
            Err(e) => return die(e),
        };
        if a.output != b.output {
            eprintln!("error: fleet output differs from the single-engine reference");
            return ExitCode::from(1);
        }
        println!("ok: fleet inference is bit-identical to the coordinator engine");
    }
    if flags.deep {
        for (s, shard) in fleet.shards().iter().enumerate() {
            if let Err(e) = shard.engine().partition().check_invariants(shard.engine().graph()) {
                eprintln!("error: shard {s} failed its structural audit: {e}");
                return ExitCode::from(1);
            }
        }
        println!("deep ok: every shard partition satisfies the islandization invariants");
    }
    println!(
        "ok: {} shards over {} nodes ({} islands, {} hubs)",
        fleet.num_shards(),
        fleet.graph().num_nodes(),
        fleet.partition().num_islands(),
        fleet.partition().num_hubs()
    );
    ExitCode::SUCCESS
}

struct BenchRow {
    bin: &'static str,
    nodes: usize,
    shards: usize,
    infer_median_s: f64,
    infer_p95_s: f64,
    single_median_s: f64,
    max_shard_work: u64,
    total_work: u64,
    cut_fraction: f64,
    replication_factor: f64,
    halo_bytes: u64,
}

fn bench(flags: &Flags) -> ExitCode {
    let harness = if flags.quick { BenchHarness::new(1, 3) } else { BenchHarness::new(1, 5) };
    let shard_counts: Vec<usize> =
        if flags.shards.is_empty() { vec![1, 2, 4] } else { flags.shards.clone() };
    let mut rows: Vec<BenchRow> = Vec::new();
    for bin_name in BINS {
        let bin = generate_bin(bin_name, flags.seed, flags.quick);
        let (model, weights) = model_for(&bin, flags.seed);
        eprintln!(
            "[bench] {bin_name}: {} nodes, {} undirected edges",
            bin.graph.num_nodes(),
            bin.graph.num_undirected_edges()
        );
        let mut single =
            IGcnEngine::builder(Arc::clone(&bin.graph)).build().expect("bin graphs are loop-free");
        single.prepare(&model, &weights).expect("weights match the model");
        let request = InferenceRequest::new(bin.features.clone());
        let single_stats = harness.run(|| single.infer(&request).expect("single serves"));
        let reference = single.infer(&request).expect("single serves");

        for &k in &shard_counts {
            let sharded = match ShardedEngine::from_engine(&single, k) {
                Ok(s) => s,
                Err(ShardError::ShardUnservable { shard, detail }) => {
                    eprintln!("[bench] {bin_name}: skipping k={k} (shard {shard}: {detail})");
                    continue;
                }
                Err(e) => return die(e),
            };
            let stats = harness.run(|| sharded.infer(&request).expect("fleet serves"));
            // Every bench iteration must be the same computation.
            let out = sharded.infer(&request).expect("fleet serves");
            assert_eq!(
                out.output, reference.output,
                "{bin_name} k={k}: sharded output diverged from single engine"
            );
            let report = sharded.sharding_report();
            let max_shard_work = report.per_shard.iter().map(|s| s.work).max().unwrap_or(0);
            let total_work: u64 = report.per_shard.iter().map(|s| s.work).sum();
            rows.push(BenchRow {
                bin: bin_name,
                nodes: bin.graph.num_nodes(),
                shards: sharded.num_shards(),
                infer_median_s: stats.median_s(),
                infer_p95_s: stats.p95_s(),
                single_median_s: single_stats.median_s(),
                max_shard_work,
                total_work,
                cut_fraction: report.cut_fraction,
                replication_factor: report.replication_factor,
                halo_bytes: sharded.halo_bytes_per_inference(&model),
            });
        }
    }

    let mut table = Table::new(vec![
        "bin",
        "shards",
        "infer (ms)",
        "work balance",
        "cut %",
        "hub repl",
        "halo (KiB)",
    ]);
    for row in &rows {
        let balance = if row.max_shard_work == 0 {
            1.0
        } else {
            row.total_work as f64 / (row.max_shard_work as f64 * row.shards as f64)
        };
        table.row(vec![
            row.bin.to_string(),
            row.shards.to_string(),
            fmt_sig(row.infer_median_s * 1e3),
            fmt_sig(balance),
            fmt_sig(row.cut_fraction * 100.0),
            fmt_sig(row.replication_factor),
            fmt_sig(row.halo_bytes as f64 / 1024.0),
        ]);
    }
    println!("\n# Sharded execution sweep (bit-identical outputs at every shard count)\n");
    println!("{}", table.to_markdown());

    let json_rows: Vec<JsonValue> = rows
        .iter()
        .map(|row| {
            let balance = if row.max_shard_work == 0 {
                1.0
            } else {
                row.total_work as f64 / (row.max_shard_work as f64 * row.shards as f64)
            };
            obj([
                ("bin", JsonValue::Str(row.bin.to_string())),
                ("nodes", JsonValue::Uint(row.nodes as u64)),
                ("shards", JsonValue::Uint(row.shards as u64)),
                ("infer_median_s", JsonValue::from_f64_rounded(row.infer_median_s)),
                ("infer_p95_s", JsonValue::from_f64_rounded(row.infer_p95_s)),
                ("single_engine_median_s", JsonValue::from_f64_rounded(row.single_median_s)),
                ("max_shard_work", JsonValue::Uint(row.max_shard_work)),
                ("total_work", JsonValue::Uint(row.total_work)),
                ("work_balance", JsonValue::from_f64_rounded(balance)),
                ("cut_fraction", JsonValue::from_f64_rounded(row.cut_fraction)),
                ("hub_replication_factor", JsonValue::from_f64_rounded(row.replication_factor)),
                ("halo_bytes_per_inference", JsonValue::Uint(row.halo_bytes)),
            ])
        })
        .collect();
    let result = obj([
        (
            "harness",
            obj([
                ("warmup", JsonValue::Uint(harness.warmup as u64)),
                ("iters", JsonValue::Uint(harness.iters as u64)),
                ("quick", JsonValue::Bool(flags.quick)),
                ("seed", JsonValue::Uint(flags.seed)),
            ]),
        ),
        (
            "note",
            JsonValue::Str(
                "recorded on a 1-CPU container: shards execute sequentially, so wall-clock \
                 speedup is ~1x by construction; the per-shard work/cut/halo columns are the \
                 portable structural result — re-record on multi-core hardware for wall-clock \
                 scaling"
                    .to_string(),
            ),
        ),
        ("rows", JsonValue::Array(json_rows)),
    ]);
    let path = write_result("shard_scaling.json", result.encode_pretty().as_bytes());
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}
