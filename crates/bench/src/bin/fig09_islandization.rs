//! Figure 9: islandization effect on Cora, Citeseer, PubMed and NELL.
//!
//! Reproduces the round-by-round clustering of adjacency non-zeros: after
//! islandization, every non-zero lies in a hub L-shape or an island block
//! along the (anti-)diagonal, and the space between L-shapes is *totally
//! blank* — asserted via the partition's outlier fraction. Emits ASCII
//! spy plots to stdout and PPM images plus per-round stats to `results/`.
//!
//! Run: `cargo run --release -p igcn-bench --bin fig09_islandization`

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, HarnessArgs, Table};
use igcn_core::{IslandLocator, IslandizationConfig};
use igcn_graph::datasets::Dataset;
use igcn_graph::stats::DensityGrid;

fn main() {
    let args = HarnessArgs::parse();
    let mut table = Table::new(vec![
        "dataset",
        "rounds",
        "islands",
        "hubs",
        "hub %",
        "band frac (before)",
        "band frac (after)",
        "outlier nnz %",
    ]);
    // The paper's Figure 9 shows Cora, Citeseer, PubMed and NELL.
    for dataset in [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed, Dataset::Nell] {
        if !args.wants(dataset.id()) {
            continue;
        }
        let scale = if args.quick { 0.25 } else { 1.0 };
        eprintln!("[fig9] {dataset} at scale {scale}...");
        let data = dataset.generate_scaled(scale, args.seed);
        let (partition, stats) = IslandLocator::new(&data.graph, &IslandizationConfig::default())
            .run()
            .expect("islandization converges");
        partition
            .check_invariants(&data.graph)
            .expect("figure 9 claim: the space between L-shapes is blank");

        let grid = 48;
        let before = DensityGrid::compute(&data.graph, None, grid);
        let ordering = partition.ordering_antidiagonal();
        let after = DensityGrid::compute(&data.graph, Some(&ordering), grid);
        let outliers = partition.outlier_fraction(&data.graph);

        println!("\n## {dataset}: adjacency before islandization\n");
        println!("{}", before.to_ascii());
        println!("## {dataset}: after islandization (hub L-shapes + island diagonal)\n");
        println!("{}", after.to_ascii());

        let mut rounds =
            Table::new(vec!["round", "threshold", "hubs", "islands", "island nodes", "bfs cycles"]);
        for r in &stats.rounds {
            rounds.row(vec![
                r.round.to_string(),
                r.threshold.to_string(),
                r.hubs_found.to_string(),
                r.islands_found.to_string(),
                r.island_nodes_classified.to_string(),
                r.bfs_cycles.to_string(),
            ]);
        }
        println!("### {dataset}: locator rounds\n\n{}", rounds.to_markdown());

        write_result(&format!("fig09_{}_before.ppm", dataset.id()), &before.to_ppm());
        write_result(&format!("fig09_{}_after.ppm", dataset.id()), &after.to_ppm());
        write_result(&format!("fig09_{}_rounds.csv", dataset.id()), rounds.to_csv().as_bytes());

        table.row(vec![
            dataset.to_string(),
            stats.num_rounds().to_string(),
            partition.num_islands().to_string(),
            partition.num_hubs().to_string(),
            fmt_sig(partition.hub_fraction() * 100.0),
            fmt_sig(before.diagonal_band_fraction(2)),
            fmt_sig(after.diagonal_band_fraction(2)),
            fmt_sig(outliers * 100.0),
        ]);
    }
    println!("\n# Figure 9 summary\n\n{}", table.to_markdown());
    println!("Paper claim: all non-zeros cluster within several rounds; outlier nnz = 0%.");
    let path = write_result("fig09_summary.csv", table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
