//! Figure 11: hardware consumption breakdown of I-GCN.
//!
//! Regenerates the ALM breakdown of an I-GCN with 4K MACs and 64 TP-BFS
//! engines. The paper reports Island Locator ≈ 34% and Island Consumer
//! ≈ 66% of the accelerator; the parametric area model reproduces the
//! split and exposes the scaling knobs (P1, P2, #MACs, #PEs).
//!
//! Run: `cargo run --release -p igcn-bench --bin fig11_area`

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, HarnessArgs, Table};
use igcn_sim::{AreaModel, HardwareConfig};

fn main() {
    let _args = HarnessArgs::parse();
    let hw = HardwareConfig::paper_default();
    let breakdown = AreaModel::fpga_default().breakdown(&hw);

    let mut table = Table::new(vec!["component", "module", "ALMs (k)", "% of total"]);
    let total = breakdown.total_alms();
    let locator_components = [
        "Hub Detector (FIFOs + filters)",
        "TP-BFS engines",
        "TP-BFS task queues",
        "Island node tables (PR/CR-INT)",
    ];
    for (name, alms) in breakdown.rows() {
        let module =
            if locator_components.contains(&name) { "Island Locator" } else { "Island Consumer" };
        table.row(vec![
            name.to_string(),
            module.to_string(),
            fmt_sig(alms / 1e3),
            fmt_sig(alms / total * 100.0),
        ]);
    }
    println!("\n# Figure 11: hardware consumption breakdown (4K MACs, 64 TP-BFS engines)\n");
    println!("{}", table.to_markdown());
    println!(
        "Island Locator: {:.1}% (paper: 34%) — Island Consumer: {:.1}% (paper: 66%)",
        breakdown.locator_fraction() * 100.0,
        (1.0 - breakdown.locator_fraction()) * 100.0
    );

    // Scaling ablation: how the split moves with engine count.
    let mut scaling = Table::new(vec!["TP-BFS engines", "locator %", "total ALMs (k)"]);
    for engines in [16, 32, 64, 128] {
        let b =
            AreaModel::fpga_default().breakdown(&HardwareConfig { tpbfs_engines: engines, ..hw });
        scaling.row(vec![
            engines.to_string(),
            fmt_sig(b.locator_fraction() * 100.0),
            fmt_sig(b.total_alms() / 1e3),
        ]);
    }
    println!("\n## Locator share vs engine count (ablation)\n\n{}", scaling.to_markdown());

    write_result("fig11_area.csv", table.to_csv().as_bytes());
    let path = write_result("fig11_scaling.csv", scaling.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
