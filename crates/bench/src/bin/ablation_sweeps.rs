//! Ablation sweeps over the design parameters DESIGN.md calls out.
//!
//! Four sweeps on a fixed Cora-scale workload:
//!
//! * `c_max` — the island size bound (buffer size vs closure success);
//! * `k` — the pre-aggregation window width (pruning vs pre-agg cost);
//! * `P2` — TP-BFS engine count (locator cycles, conflict rate);
//! * pre-aggregation policy and redundancy removal on/off.
//!
//! Run: `cargo run --release -p igcn-bench --bin ablation_sweeps`

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, HarnessArgs, Table};
use igcn_core::config::PreaggPolicy;
use igcn_core::{ConsumerConfig, IGcnEngine, IslandLocator, IslandizationConfig};
use igcn_gnn::{GnnKind, GnnModel, ModelConfig};
use igcn_graph::datasets::Dataset;
use igcn_sim::{HardwareConfig, IGcnAccelerator};

fn main() {
    let args = HarnessArgs::parse();
    let scale = if args.quick { 0.25 } else { 1.0 };
    let data = Dataset::Cora.generate_scaled(scale, args.seed);
    let model = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
    let accelerator = IGcnAccelerator::new(HardwareConfig::paper_default());

    // --- c_max sweep. ---
    let mut cmax_table =
        Table::new(vec!["c_max", "islands", "hub %", "overflow drops", "agg pruning %"]);
    for c_max in [8usize, 16, 32, 64, 128] {
        let icfg = IslandizationConfig::default().with_c_max(c_max);
        let engine = IGcnEngine::builder(data.graph.clone()).island_config(icfg).build().unwrap();
        let stats = engine.account(&data.features, &model).unwrap();
        cmax_table.row(vec![
            c_max.to_string(),
            engine.partition().num_islands().to_string(),
            fmt_sig(engine.partition().hub_fraction() * 100.0),
            stats.locator.tasks_dropped_overflow.to_string(),
            fmt_sig(stats.aggregation_pruning_rate() * 100.0),
        ]);
    }
    println!("\n# Ablation: island size bound c_max (Cora, GCN-algo)\n");
    println!("{}", cmax_table.to_markdown());

    // --- k sweep. ---
    let mut k_table =
        Table::new(vec!["k", "agg pruning %", "windows reused", "preagg adds", "sim latency (µs)"]);
    for k in [2usize, 4, 8, 16] {
        let engine = IGcnEngine::builder(data.graph.clone())
            .consumer_config(ConsumerConfig::default().with_k(k))
            .build()
            .unwrap();
        let stats = engine.account(&data.features, &model).unwrap();
        let report = accelerator.report_from_stats(&stats);
        let reused: u64 = stats.layers.iter().map(|l| l.aggregation.windows_reused).sum();
        let preagg: u64 = stats.layers.iter().map(|l| l.aggregation.preagg_vector_adds).sum();
        k_table.row(vec![
            k.to_string(),
            fmt_sig(stats.aggregation_pruning_rate() * 100.0),
            reused.to_string(),
            preagg.to_string(),
            fmt_sig(report.latency_us()),
        ]);
    }
    println!("\n# Ablation: pre-aggregation window k\n");
    println!("{}", k_table.to_markdown());

    // --- P2 engine sweep. ---
    let mut p2_table =
        Table::new(vec!["TP-BFS engines", "locator cycles", "conflict drops", "islands"]);
    for engines in [1usize, 4, 16, 64, 256] {
        let icfg = IslandizationConfig::default().with_engines(engines);
        let (partition, stats) = IslandLocator::new(&data.graph, &icfg).run().unwrap();
        p2_table.row(vec![
            engines.to_string(),
            stats.virtual_cycles.to_string(),
            stats.tasks_dropped_conflict.to_string(),
            partition.num_islands().to_string(),
        ]);
    }
    println!("\n# Ablation: TP-BFS parallelism P2\n");
    println!("{}", p2_table.to_markdown());

    // --- Redundancy removal / pre-aggregation policy. ---
    let mut policy_table = Table::new(vec!["configuration", "agg pruning %", "executed vec ops"]);
    let configs: Vec<(&str, ConsumerConfig)> = vec![
        ("reuse on, eager preagg", ConsumerConfig::default()),
        ("reuse on, lazy preagg", ConsumerConfig::default().with_preagg(PreaggPolicy::Lazy)),
        ("reuse off (ablation)", ConsumerConfig::default().with_redundancy_removal(false)),
    ];
    for (label, ccfg) in configs {
        let engine = IGcnEngine::builder(data.graph.clone()).consumer_config(ccfg).build().unwrap();
        let stats = engine.account(&data.features, &model).unwrap();
        let executed: u64 = stats.layers.iter().map(|l| l.aggregation.executed_vector_ops()).sum();
        policy_table.row(vec![
            label.to_string(),
            fmt_sig(stats.aggregation_pruning_rate() * 100.0),
            executed.to_string(),
        ]);
    }
    println!("\n# Ablation: redundancy-removal policies\n");
    println!("{}", policy_table.to_markdown());

    write_result("ablation_cmax.csv", cmax_table.to_csv().as_bytes());
    write_result("ablation_k.csv", k_table.to_csv().as_bytes());
    write_result("ablation_p2.csv", p2_table.to_csv().as_bytes());
    let path = write_result("ablation_policy.csv", policy_table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
