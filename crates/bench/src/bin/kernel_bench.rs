//! `kernel_bench` — scalar vs SIMD vs blocked A/B micro-benchmarks.
//!
//! Measures the vendored `igcn-simd`-backed kernels against their
//! forced-scalar fallbacks (`igcn_simd::force_scalar`) and the blocked
//! GEMM against a textbook triple loop, then records per-kernel,
//! per-size-bin medians to `results/kernel_speedup.json`:
//!
//! * `kernels` — rows of `{kernel, bin, n, scalar_median_ns,
//!   simd_median_ns, speedup}` (for the `gemm_vs_naive` row "scalar"
//!   is the naive triple loop and "simd" the blocked native kernel);
//! * `quantization` — `max_abs_error`, `error_bound`, `value_bytes`,
//!   `f32_value_bytes` for the int8 feature path;
//! * `caveats` — measurement-environment caveat (see below).
//!
//! Run `--quick` for the CI smoke: fewer iterations plus the same
//! asserts as the full run — per kernel the SIMD median must not
//! regress past the scalar median (with tolerance, below) and the
//! quantization error must honor its documented bound.
//!
//! # 1-CPU caveat
//!
//! On the single-CPU CI container the "scalar" loops are auto-vectorized
//! by LLVM, so scalar-vs-SIMD ratios hover near 1x by construction; the
//! A/B is a *non-regression* check there, not a speedup demo. The same
//! caveat is embedded in the JSON so downstream readers do not quote the
//! ratios as hardware speedups.

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, BenchHarness, HarnessArgs, Table};
use igcn_graph::SparseFeatures;
use igcn_linalg::kernels::{axpy_f32, gemm_blocked_into, scale_f32};
use igcn_linalg::QuantizedFeatures;
use serde::json::{obj, JsonValue};

/// Tolerance on the per-kernel `simd <= scalar` assert: timer noise on
/// the shared 1-CPU container plus the dispatch branch can push an
/// otherwise-equal median a few percent either way.
const NOISE_TOLERANCE: f64 = 1.15;

/// Target elements touched per timed sample, so every bin's sample
/// lands around the same (timer-friendly) duration.
const ELEMS_PER_SAMPLE: usize = 1 << 22;

const CAVEAT: &str = "medians from a shared 1-CPU container where scalar loops \
     auto-vectorize; ratios near 1.0 are expected and the A/B is a \
     non-regression check, not a hardware speedup claim";

/// One scalar-vs-SIMD measurement.
struct AbRow {
    kernel: &'static str,
    bin: String,
    n: usize,
    scalar_ns: f64,
    simd_ns: f64,
    /// Included in the `--quick`/full non-regression assert
    /// (`gemm_vs_naive` is informational only).
    asserted: bool,
}

impl AbRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.simd_ns
    }

    fn json(&self) -> JsonValue {
        obj([
            ("kernel", self.kernel.into()),
            ("bin", self.bin.as_str().into()),
            ("n", JsonValue::Uint(self.n as u64)),
            ("scalar_median_ns", JsonValue::from_f64_rounded(self.scalar_ns)),
            ("simd_median_ns", JsonValue::from_f64_rounded(self.simd_ns)),
            ("speedup", JsonValue::from_f64_rounded(self.speedup())),
        ])
    }
}

/// Deterministic xorshift fill in `[-1, 1)`; no `rand` dependency so
/// the bin stays lean.
fn fill(xs: &mut [f32], seed: &mut u64) {
    for x in xs.iter_mut() {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *x = ((*seed >> 40) as f32) / 8_388_608.0 - 1.0;
    }
}

/// Times `f` under the native (possibly SIMD) dispatch and again with
/// the scalar fallback forced, returning `(scalar_ns, simd_ns)`.
fn ab_median_ns(harness: &BenchHarness, mut f: impl FnMut() -> f32) -> (f64, f64) {
    assert!(!igcn_simd::scalar_forced(), "scalar fallback left forced by a prior measurement");
    let simd = harness.run(&mut f).median_s() * 1e9;
    igcn_simd::force_scalar(true);
    let scalar = harness.run(&mut f).median_s() * 1e9;
    igcn_simd::force_scalar(false);
    (scalar, simd)
}

/// Textbook GEMM triple loop — the pre-blocking reference semantics.
fn gemm_naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    out.fill(0.0);
    for i in 0..m {
        for l in 0..k {
            let av = a[i * k + l];
            for j in 0..n {
                out[i * n + j] += av * b[l * n + j];
            }
        }
    }
}

fn bench_axpy(harness: &BenchHarness, rows: &mut Vec<AbRow>) {
    let bins = [256usize, 4096, 65536];
    for &n in bins.iter() {
        let mut seed = 0x9e37_79b9_7f4a_7c15 ^ n as u64;
        let mut acc = vec![0.0f32; n];
        let mut x = vec![0.0f32; n];
        fill(&mut x, &mut seed);
        let reps = (ELEMS_PER_SAMPLE / n).max(1);
        let (scalar_ns, simd_ns) = ab_median_ns(harness, || {
            for _ in 0..reps {
                axpy_f32(&mut acc, &x, 1e-4);
            }
            acc[0]
        });
        rows.push(AbRow {
            kernel: "axpy",
            bin: format!("len={n}"),
            n: n * reps,
            scalar_ns,
            simd_ns,
            asserted: true,
        });
    }
}

fn bench_scale(harness: &BenchHarness, rows: &mut Vec<AbRow>) {
    let bins = [256usize, 4096, 65536];
    for &n in bins.iter() {
        let mut seed = 0xdead_beef_cafe_f00d ^ n as u64;
        let mut xs = vec![0.0f32; n];
        fill(&mut xs, &mut seed);
        let reps = (ELEMS_PER_SAMPLE / n).max(1);
        let (scalar_ns, simd_ns) = ab_median_ns(harness, || {
            for _ in 0..reps {
                scale_f32(&mut xs, 0.999_999);
            }
            xs[0]
        });
        rows.push(AbRow {
            kernel: "scale",
            bin: format!("len={n}"),
            n: n * reps,
            scalar_ns,
            simd_ns,
            asserted: true,
        });
    }
}

fn bench_gemm(harness: &BenchHarness, rows: &mut Vec<AbRow>) {
    // k stays within one GEMM_KC block so the naive loop is the exact
    // accumulation-order reference and equality below is bitwise.
    let bins = [(64usize, 64usize, 64usize), (128, 96, 64), (192, 128, 96)];
    for &(m, k, n) in bins.iter() {
        let mut seed = 0x1234_5678_9abc_def0 ^ (m * k * n) as u64;
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill(&mut a, &mut seed);
        fill(&mut b, &mut seed);
        let mut out = vec![0.0f32; m * n];
        let mut reference = vec![0.0f32; m * n];
        gemm_naive(&a, m, k, &b, n, &mut reference);
        gemm_blocked_into(&a, m, k, &b, n, &mut out);
        assert_eq!(
            out, reference,
            "blocked GEMM diverged from the naive reference for {m}x{k}x{n}"
        );

        let flops_elems = m * k * n;
        let reps = (ELEMS_PER_SAMPLE / flops_elems).max(1);
        let bin = format!("{m}x{k}x{n}");
        let (scalar_ns, simd_ns) = ab_median_ns(harness, || {
            for _ in 0..reps {
                gemm_blocked_into(&a, m, k, &b, n, &mut out);
            }
            out[0]
        });
        rows.push(AbRow {
            kernel: "gemm",
            bin: bin.clone(),
            n: flops_elems * reps,
            scalar_ns,
            simd_ns,
            asserted: true,
        });

        // Blocked-vs-naive A/B reuses the row schema: "scalar" is the
        // textbook loop, "simd" the blocked native kernel. Excluded
        // from the non-regression assert — on this container the
        // auto-vectorized naive loop is a legitimate near-tie.
        let naive_ns = harness
            .run(|| {
                for _ in 0..reps {
                    gemm_naive(&a, m, k, &b, n, &mut out);
                }
                out[0]
            })
            .median_s()
            * 1e9;
        rows.push(AbRow {
            kernel: "gemm_vs_naive",
            bin,
            n: flops_elems * reps,
            scalar_ns: naive_ns,
            simd_ns,
            asserted: false,
        });
    }
}

fn quantization_report(seed: u64) -> (JsonValue, f32, f32) {
    let x = SparseFeatures::random(4000, 64, 0.15, seed);
    let q = QuantizedFeatures::quantize(&x);
    let err = q.max_abs_error(&x);
    let bound = q.error_bound();
    let json = obj([
        ("max_abs_error", JsonValue::from_f64_rounded(err as f64)),
        ("error_bound", JsonValue::from_f64_rounded(bound as f64)),
        ("value_bytes", JsonValue::Uint(q.value_bytes() as u64)),
        ("f32_value_bytes", JsonValue::Uint(q.f32_value_bytes() as u64)),
    ]);
    (json, err, bound)
}

fn main() {
    let args = HarnessArgs::parse();
    let harness = if args.quick { BenchHarness::quick() } else { BenchHarness::new(2, 9) };

    println!(
        "kernel_bench: backend={:?} quick={} (warmup={}, iters={})",
        igcn_simd::backend(),
        args.quick,
        harness.warmup,
        harness.iters
    );

    let mut rows: Vec<AbRow> = Vec::new();
    bench_axpy(&harness, &mut rows);
    bench_scale(&harness, &mut rows);
    bench_gemm(&harness, &mut rows);

    let mut table =
        Table::new(vec!["kernel", "bin", "scalar median (ns)", "simd median (ns)", "speedup"]);
    for row in &rows {
        table.row(vec![
            row.kernel.to_string(),
            row.bin.clone(),
            fmt_sig(row.scalar_ns),
            fmt_sig(row.simd_ns),
            fmt_sig(row.speedup()),
        ]);
    }
    println!("{}", table.to_markdown());

    let (quant_json, err, bound) = quantization_report(args.seed);
    println!("quantization: max_abs_error={err:.6} bound={bound:.6}");

    let result = obj([
        ("bench", "kernel_bench".into()),
        ("quick", JsonValue::Bool(args.quick)),
        ("seed", JsonValue::Uint(args.seed)),
        ("backend", format!("{:?}", igcn_simd::backend()).as_str().into()),
        ("kernels", JsonValue::Array(rows.iter().map(AbRow::json).collect())),
        ("quantization", quant_json),
        ("caveats", CAVEAT.into()),
    ]);
    let path = write_result("kernel_speedup.json", result.encode_pretty().as_bytes());
    println!("wrote {}", path.display());

    // Smoke asserts (CI runs `--quick`; the full run checks the same
    // invariants). Per kernel the *best* bin's simd/scalar ratio must
    // hold the line: individual bins flake on a shared single core
    // (the 64K-element bins are memory-bound and SIMD-neutral), but a
    // genuinely broken dispatch makes SIMD slower in *every* bin, and
    // that is what this catches.
    let mut best: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    for row in rows.iter().filter(|r| r.asserted) {
        let ratio = row.simd_ns / row.scalar_ns;
        let entry = best.entry(row.kernel).or_insert(f64::INFINITY);
        *entry = entry.min(ratio);
    }
    assert!(!best.is_empty(), "no kernels measured");
    for (kernel, ratio) in best {
        assert!(
            ratio <= NOISE_TOLERANCE,
            "{kernel}: best simd/scalar median ratio {ratio:.2} regressed past \
             {NOISE_TOLERANCE} in every bin",
        );
    }
    assert!(err <= bound, "quantization error {err} exceeds documented bound {bound}");
    println!("kernel_bench asserts passed");
}
