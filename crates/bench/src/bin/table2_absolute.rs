//! Table 2: absolute latency and energy efficiency, I-GCN vs AWB-GCN.
//!
//! Regenerates the paper's absolute-results table: end-to-end latency
//! (µs) and energy efficiency (graphs/kJ) for GCN_algo and GCN_Hy on all
//! five datasets, for both I-GCN and AWB-GCN on the same FPGA budget
//! (4096 fp32 MACs @ 330 MHz). Paper numbers are printed alongside.
//!
//! Run: `cargo run --release -p igcn-bench --bin table2_absolute`

use std::sync::Arc;

use igcn_baselines::AwbGcn;
use igcn_bench::table::fmt_sig;
use igcn_bench::{standard_suite, write_result, HarnessArgs, Table};
use igcn_core::accel::{Accelerator, InferenceRequest};
use igcn_gnn::{GnnKind, GnnModel, ModelConfig, ModelWeights};
use igcn_graph::datasets::Dataset;
use igcn_sim::{HardwareConfig, IGcnAccelerator, SimBackend};

/// Paper Table 2 values: (I-GCN latency µs, I-GCN EE, AWB latency µs,
/// AWB EE) per (dataset, config).
fn paper_values(dataset: Dataset, config: ModelConfig) -> (f64, f64, f64, f64) {
    match (dataset, config) {
        (Dataset::Cora, ModelConfig::Algo) => (1.3, 7.1e6, 2.3, 3.1e6),
        (Dataset::Citeseer, ModelConfig::Algo) => (1.9, 3.7e6, 4.0, 1.9e6),
        (Dataset::Pubmed, ModelConfig::Algo) => (15.1, 5.3e5, 30.0, 2.5e5),
        (Dataset::Nell, ModelConfig::Algo) => (5.9e2, 1.3e4, 1.6e3, 4.1e3),
        (Dataset::Reddit, ModelConfig::Algo) => (3.0e4, 3.5e2, 3.2e4, 2.1e2),
        (Dataset::Cora, ModelConfig::Hy) => (8.2, 9.6e5, 17.0, 4.4e5),
        (Dataset::Citeseer, ModelConfig::Hy) => (12.9, 6.0e5, 29.0, 2.7e5),
        (Dataset::Pubmed, ModelConfig::Hy) => (1.1e2, 8.1e4, 2.3e2, 3.2e4),
        (Dataset::Nell, ModelConfig::Hy) => (1.2e3, 7.5e3, 3.3e3, 2.3e3),
        (Dataset::Reddit, ModelConfig::Hy) => (4.6e4, 2.2e2, 5.0e4, 1.5e2),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let suite = standard_suite(&args);
    let hw = HardwareConfig::paper_default();
    let mut table = Table::new(vec![
        "config",
        "dataset",
        "I-GCN µs",
        "paper",
        "I-GCN EE",
        "paper EE",
        "AWB µs",
        "paper",
        "AWB EE",
        "paper EE",
        "speedup",
        "paper speedup",
    ]);
    for config in [ModelConfig::Algo, ModelConfig::Hy] {
        for run in &suite {
            let model = GnnModel::for_dataset(run.dataset, GnnKind::Gcn, config);
            eprintln!("[table2] {} GCN_{}...", run.dataset, config.id());
            // Both platforms behind the unified serving trait, one graph
            // binding per dataset.
            let graph = Arc::new(run.data.graph.clone());
            let weights = ModelWeights::glorot(&model, args.seed);
            let request = InferenceRequest::new(run.data.features.clone());
            let mut igcn = SimBackend::new(IGcnAccelerator::new(hw), Arc::clone(&graph));
            let mut awb = SimBackend::new(AwbGcn::new(hw), Arc::clone(&graph));
            igcn.prepare(&model, &weights).expect("suite weights match the model");
            awb.prepare(&model, &weights).expect("suite weights match the model");
            let ours = igcn.report(&request).expect("suite features match the suite graph");
            let theirs = awb.report(&request).expect("suite features match the suite graph");
            let (p_igcn, p_igcn_ee, p_awb, p_awb_ee) = paper_values(run.dataset, config);
            let scale_note = if run.data.scale < 1.0 {
                format!("{} (@{:.0}%)", run.dataset, run.data.scale * 100.0)
            } else {
                run.dataset.to_string()
            };
            table.row(vec![
                format!("GCN_{}", config.id()),
                scale_note,
                fmt_sig(ours.latency_us()),
                fmt_sig(p_igcn),
                fmt_sig(ours.graphs_per_kilojoule()),
                fmt_sig(p_igcn_ee),
                fmt_sig(theirs.latency_us()),
                fmt_sig(p_awb),
                fmt_sig(theirs.graphs_per_kilojoule()),
                fmt_sig(p_awb_ee),
                fmt_sig(ours.speedup_over(&theirs)),
                fmt_sig(p_awb / p_igcn),
            ]);
        }
    }
    println!("\n# Table 2: absolute latency (µs) and energy efficiency (graphs/kJ)\n");
    println!("{}", table.to_markdown());
    println!(
        "Scaled datasets (Reddit) are marked with their node-count scale; their paper\n\
         columns correspond to the full-size graph and are shown for shape comparison\n\
         only. Both platforms: 4096 fp32 MACs @ 330 MHz, Stratix-10-class SRAM/DDR4."
    );
    let path = write_result("table2_absolute.csv", table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
