//! Snapshot tooling: build / inspect / verify engine snapshots and
//! benchmark warm-start boot against cold islandization.
//!
//! ```text
//! snapshot_tool build   --out <path> (--bin <name> | --edge-list <file> [--features-csv <file>]) [--seed N] [--quick] [--no-model]
//! snapshot_tool inspect --snapshot <path>
//! snapshot_tool verify  --snapshot <path> [--deep]
//! snapshot_tool bench   [--quick] [--seed N]
//! ```
//!
//! * **build** — islandizes a dataset bin (`cora`, `citeseer`,
//!   `pubmed`, `powerlaw50k`, `nell`) or a real-world edge-list dump
//!   (streamed through `igcn_graph::io::read_edge_list_flexible`) and
//!   writes the complete engine image. With `--features-csv <file>` the
//!   dump's real feature matrix (CSV, one row per node) is ingested
//!   instead of synthesising one; a row count that disagrees with the
//!   graph is a typed `DimensionMismatch` error.
//! * **inspect** — prints the header (version, payload size, checksum)
//!   without decoding the payload.
//! * **verify** — full read: checksum, payload decode, structural
//!   validation, warm engine construction. `--deep` additionally
//!   re-runs islandization cold and asserts the stored partition
//!   matches bit for bit.
//! * **bench** — cold-build vs warm-start boot latency across the five
//!   dataset bins, recorded in `results/warm_start.json`; exits
//!   non-zero if warm boot is slower than cold build on any bin (the
//!   CI contract).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, BenchHarness, Table};
use igcn_core::{Accelerator, IGcnEngine};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::datasets::Dataset;
use igcn_graph::generate::barabasi_albert;
use igcn_graph::io::{read_edge_list_flexible, read_features_csv, EdgeListOptions};
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_store::{from_snapshot, Snapshot, StoreError};
use serde::json::{obj, JsonValue};

/// The five dataset bins of the warm-start evaluation: the three
/// citation stand-ins, the 50k-node power-law serving bin, and the
/// NELL-sized stand-in.
const BINS: [&str; 5] = ["cora", "citeseer", "pubmed", "powerlaw50k", "nell"];

struct BinData {
    graph: Arc<CsrGraph>,
    features: SparseFeatures,
    feature_dim: usize,
}

/// Generates one bin, scaled down under `--quick`.
fn generate_bin(name: &str, seed: u64, quick: bool) -> BinData {
    let dataset_bin = |d: Dataset, scale: f64| {
        let data = d.generate_scaled(scale, seed);
        let feature_dim = data.features.num_cols();
        BinData { graph: Arc::new(data.graph), features: data.features, feature_dim }
    };
    match name {
        "cora" => dataset_bin(Dataset::Cora, if quick { 0.25 } else { 1.0 }),
        "citeseer" => dataset_bin(Dataset::Citeseer, if quick { 0.25 } else { 1.0 }),
        "pubmed" => dataset_bin(Dataset::Pubmed, if quick { 0.1 } else { 1.0 }),
        "nell" => dataset_bin(Dataset::Nell, if quick { 0.05 } else { 1.0 }),
        "powerlaw50k" => {
            let n = if quick { 4_000 } else { 50_000 };
            let feature_dim = 32;
            BinData {
                graph: Arc::new(barabasi_albert(n, 8, seed)),
                features: SparseFeatures::random(n, feature_dim, 0.05, seed + 1),
                feature_dim,
            }
        }
        other => {
            eprintln!("unknown bin {other:?}; supported: {BINS:?}");
            std::process::exit(2);
        }
    }
}

/// Cold path: islandize + compose the layout + prepare the model.
fn cold_build(bin: &BinData, model: &GnnModel, weights: &ModelWeights) -> IGcnEngine {
    let mut engine =
        IGcnEngine::builder(Arc::clone(&bin.graph)).build().expect("bin graphs are loop-free");
    engine.prepare(model, weights).expect("weights match the model");
    engine
}

fn model_for(bin: &BinData, seed: u64) -> (GnnModel, ModelWeights) {
    let model = GnnModel::gcn(bin.feature_dim, 16, 8);
    let weights = ModelWeights::glorot(&model, seed);
    (model, weights)
}

fn die(e: StoreError) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: snapshot_tool <build|inspect|verify|bench> [flags]\n\
             see the module docs for per-command flags"
        );
        return ExitCode::from(2);
    };
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "build" => build(&flags),
        "inspect" => inspect(&flags),
        "verify" => verify(&flags),
        "bench" => bench(&flags),
        other => {
            eprintln!("unknown command {other:?}; supported: build, inspect, verify, bench");
            ExitCode::from(2)
        }
    }
}

/// Minimal flag parsing shared by the subcommands.
struct Flags {
    out: Option<PathBuf>,
    snapshot: Option<PathBuf>,
    bin: Option<String>,
    edge_list: Option<PathBuf>,
    features_csv: Option<PathBuf>,
    seed: u64,
    quick: bool,
    no_model: bool,
    deep: bool,
}

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut flags = Flags {
            out: None,
            snapshot: None,
            bin: None,
            edge_list: None,
            features_csv: None,
            seed: 42,
            quick: false,
            no_model: false,
            deep: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--out" => flags.out = Some(PathBuf::from(value("--out"))),
                "--snapshot" => flags.snapshot = Some(PathBuf::from(value("--snapshot"))),
                "--bin" => flags.bin = Some(value("--bin").clone()),
                "--edge-list" => flags.edge_list = Some(PathBuf::from(value("--edge-list"))),
                "--features-csv" => {
                    flags.features_csv = Some(PathBuf::from(value("--features-csv")))
                }
                "--seed" => {
                    flags.seed = value("--seed").parse().unwrap_or_else(|_| {
                        eprintln!("--seed value must be an integer");
                        std::process::exit(2);
                    })
                }
                "--quick" => flags.quick = true,
                "--no-model" => flags.no_model = true,
                "--deep" => flags.deep = true,
                other => {
                    eprintln!(
                        "unknown flag {other}; supported: --out --snapshot --bin --edge-list \
                         --features-csv --seed --quick --no-model --deep"
                    );
                    std::process::exit(2);
                }
            }
        }
        flags
    }

    fn snapshot_path(&self) -> &PathBuf {
        self.snapshot.as_ref().unwrap_or_else(|| {
            eprintln!("--snapshot <path> is required");
            std::process::exit(2);
        })
    }
}

fn build(flags: &Flags) -> ExitCode {
    let Some(out) = &flags.out else {
        eprintln!("build requires --out <path>");
        return ExitCode::from(2);
    };
    if flags.features_csv.is_some() && flags.edge_list.is_none() {
        eprintln!("--features-csv accompanies --edge-list (dataset bins synthesise features)");
        return ExitCode::from(2);
    }
    let bin = match (&flags.edge_list, &flags.bin) {
        (Some(path), _) => {
            eprintln!("[build] streaming edge list {}...", path.display());
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: cannot open {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let graph = match read_edge_list_flexible(
                std::io::BufReader::new(file),
                EdgeListOptions::default(),
            ) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            // Real feature matrix when the dump ships one; otherwise
            // synthesise a bag-of-words-like matrix so the snapshot is
            // immediately servable.
            let features = match &flags.features_csv {
                Some(csv_path) => {
                    eprintln!("[build] reading features {}...", csv_path.display());
                    let file = match std::fs::File::open(csv_path) {
                        Ok(f) => f,
                        Err(e) => {
                            eprintln!("error: cannot open {}: {e}", csv_path.display());
                            return ExitCode::from(2);
                        }
                    };
                    match read_features_csv(std::io::BufReader::new(file), Some(graph.num_nodes()))
                    {
                        Ok(x) => x,
                        Err(e) => {
                            // Dimension mismatches surface typed, not as
                            // a downstream shape panic.
                            eprintln!("error: {e}");
                            return ExitCode::from(2);
                        }
                    }
                }
                None => SparseFeatures::random(graph.num_nodes(), 32, 0.05, flags.seed + 1),
            };
            let feature_dim = features.num_cols();
            BinData { graph: Arc::new(graph), features, feature_dim }
        }
        (None, Some(name)) => generate_bin(name, flags.seed, flags.quick),
        (None, None) => {
            eprintln!("build requires --bin <name> or --edge-list <file>");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "[build] islandizing {} nodes / {} undirected edges...",
        bin.graph.num_nodes(),
        bin.graph.num_undirected_edges()
    );
    let (model, weights) = model_for(&bin, flags.seed);
    let engine = if flags.no_model {
        IGcnEngine::builder(Arc::clone(&bin.graph)).build().expect("bin graphs are loop-free")
    } else {
        cold_build(&bin, &model, &weights)
    };
    let snapshot = Snapshot::capture(&engine).with_features(bin.features.clone());
    let bytes = match snapshot.write(out) {
        Ok(b) => b,
        Err(e) => return die(e),
    };
    let info = match Snapshot::inspect(out) {
        Ok(i) => i,
        Err(e) => return die(e),
    };
    println!(
        "wrote {} ({} bytes, version {}, checksum {:#018x})",
        out.display(),
        bytes,
        info.version,
        info.checksum
    );
    println!(
        "  {} nodes, {} undirected edges, {} hubs, {} islands, model: {}",
        engine.graph().num_nodes(),
        engine.graph().num_undirected_edges(),
        engine.partition().num_hubs(),
        engine.partition().num_islands(),
        if flags.no_model { "none" } else { "gcn" }
    );
    ExitCode::SUCCESS
}

fn inspect(flags: &Flags) -> ExitCode {
    let path = flags.snapshot_path();
    let info = match Snapshot::inspect(path) {
        Ok(i) => i,
        Err(e) => return die(e),
    };
    println!("snapshot {}", path.display());
    println!("  format version : {}", info.version);
    println!("  payload bytes  : {}", info.payload_bytes);
    println!("  checksum       : {:#018x}", info.checksum);
    println!("  checksum ok    : {}", info.checksum_ok);
    if !info.checksum_ok {
        eprintln!("error: payload bytes do not match the recorded checksum");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn verify(flags: &Flags) -> ExitCode {
    let path = flags.snapshot_path();
    // Header + checksum first (cheap), then the full decode +
    // structural validation + warm engine construction.
    match Snapshot::inspect(path) {
        Ok(info) if !info.checksum_ok => {
            eprintln!("error: payload bytes do not match the recorded checksum");
            return ExitCode::from(1);
        }
        Ok(_) => {}
        Err(e) => return die(e),
    }
    let snapshot = match Snapshot::read(path) {
        Ok(s) => s,
        Err(e) => return die(e),
    };
    let engine = match snapshot.warm_engine(Default::default()) {
        Ok(e) => e,
        Err(e) => return die(e),
    };
    println!(
        "ok: {} nodes, {} islands, {} hubs, model {}",
        engine.graph().num_nodes(),
        engine.partition().num_islands(),
        engine.partition().num_hubs(),
        if snapshot.model.is_some() { "present" } else { "absent" }
    );
    if flags.deep {
        eprintln!("[verify] deep: re-running islandization cold...");
        let cold = IGcnEngine::builder(Arc::clone(&snapshot.graph))
            .island_config(snapshot.island_cfg)
            .consumer_config(snapshot.consumer_cfg)
            .build()
            .expect("snapshot graph is loop-free");
        if cold.partition() != engine.partition() {
            eprintln!("error: stored partition differs from a cold islandization run");
            return ExitCode::from(1);
        }
        if cold.layout() != engine.layout() {
            eprintln!("error: stored layout differs from a cold composition");
            return ExitCode::from(1);
        }
        println!("deep ok: stored partition and layout match a cold rebuild bit for bit");
    }
    ExitCode::SUCCESS
}

struct BenchRow {
    name: &'static str,
    nodes: usize,
    undirected_edges: usize,
    snapshot_bytes: u64,
    cold_median_s: f64,
    cold_p95_s: f64,
    warm_median_s: f64,
    warm_p95_s: f64,
    speedup: f64,
}

/// Bins below this node count are read-dominated: the snapshot file
/// read itself can exceed the whole cold build, so warm ≈ cold there
/// says nothing about the restart-time story and the speedup assertion
/// is skipped (and the row labelled honestly in the JSON).
const LOCATOR_DOMINATED_NODES: usize = 4000;

impl BenchRow {
    /// Which cost regime the bin is in — recorded in the JSON so the
    /// result file carries the caveat, not just the prose around it.
    fn regime(&self) -> &'static str {
        if self.nodes >= LOCATOR_DOMINATED_NODES {
            "islandization-dominated"
        } else {
            "read-dominated"
        }
    }

    /// Whether the CI warm ≤ cold assertion applies to this bin.
    fn speedup_asserted(&self) -> bool {
        self.nodes >= LOCATOR_DOMINATED_NODES
    }
}

fn bench(flags: &Flags) -> ExitCode {
    let harness = if flags.quick { BenchHarness::new(0, 2) } else { BenchHarness::new(0, 3) };
    let tmp_dir = std::env::temp_dir();
    let mut rows: Vec<BenchRow> = Vec::new();
    for name in BINS {
        let bin = generate_bin(name, flags.seed, flags.quick);
        let (model, weights) = model_for(&bin, flags.seed);
        eprintln!(
            "[bench] {name}: {} nodes, {} undirected edges",
            bin.graph.num_nodes(),
            bin.graph.num_undirected_edges()
        );

        eprintln!("[bench] {name}: timing cold build ({} iters)...", harness.iters);
        let cold_stats = harness.run(|| cold_build(&bin, &model, &weights));

        // The bench snapshot is the *engine image* alone (no bundled
        // feature matrix): the cold side's timer covers islandization +
        // layout + prepare over an in-memory graph, so the warm side
        // must cover exactly that state and nothing more.
        let path = tmp_dir.join(format!("igcn-warmstart-{}-{name}.snap", std::process::id()));
        let engine = cold_build(&bin, &model, &weights);
        let snapshot_bytes = Snapshot::capture(&engine).write(&path).expect("snapshot writes");
        drop(engine);

        eprintln!("[bench] {name}: timing warm boot ({} iters)...", harness.iters);
        let warm_stats = harness.run(|| from_snapshot(&path).build().expect("warm boot"));

        // The warm engine must be the same engine: identical partition
        // shape and identical inference on a probe request.
        let warm = from_snapshot(&path).build().expect("warm boot");
        let cold = cold_build(&bin, &model, &weights);
        assert_eq!(warm.partition(), cold.partition(), "{name}: warm partition diverged");
        let probe = igcn_core::InferenceRequest::new(bin.features.clone());
        let a = cold.infer(&probe).expect("cold serves");
        let b = warm.infer(&probe).expect("warm serves");
        assert_eq!(a.output, b.output, "{name}: warm outputs diverged");
        assert_eq!(a.report, b.report, "{name}: warm reports diverged");
        std::fs::remove_file(&path).ok();

        rows.push(BenchRow {
            name,
            nodes: bin.graph.num_nodes(),
            undirected_edges: bin.graph.num_undirected_edges(),
            snapshot_bytes,
            cold_median_s: cold_stats.median_s(),
            cold_p95_s: cold_stats.p95_s(),
            warm_median_s: warm_stats.median_s(),
            warm_p95_s: warm_stats.p95_s(),
            speedup: cold_stats.median_s() / warm_stats.median_s().max(1e-12),
        });
    }

    let mut table = Table::new(vec![
        "bin",
        "nodes",
        "cold build (ms)",
        "warm boot (ms)",
        "speedup",
        "regime",
        "snapshot (MiB)",
    ]);
    for row in &rows {
        table.row(vec![
            row.name.to_string(),
            row.nodes.to_string(),
            fmt_sig(row.cold_median_s * 1e3),
            fmt_sig(row.warm_median_s * 1e3),
            fmt_sig(row.speedup),
            row.regime().to_string(),
            fmt_sig(row.snapshot_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    println!("\n# Warm-start boot vs cold islandization (five dataset bins)\n");
    println!("{}", table.to_markdown());

    let bins: Vec<JsonValue> = rows
        .iter()
        .map(|row| {
            obj([
                ("bin", JsonValue::Str(row.name.to_string())),
                ("nodes", JsonValue::Uint(row.nodes as u64)),
                ("undirected_edges", JsonValue::Uint(row.undirected_edges as u64)),
                ("snapshot_bytes", JsonValue::Uint(row.snapshot_bytes)),
                ("cold_build_median_s", JsonValue::from_f64_rounded(row.cold_median_s)),
                ("cold_build_p95_s", JsonValue::from_f64_rounded(row.cold_p95_s)),
                ("warm_boot_median_s", JsonValue::from_f64_rounded(row.warm_median_s)),
                ("warm_boot_p95_s", JsonValue::from_f64_rounded(row.warm_p95_s)),
                ("warm_start_speedup", JsonValue::from_f64_rounded(row.speedup)),
                ("regime", JsonValue::Str(row.regime().to_string())),
                ("speedup_asserted", JsonValue::Bool(row.speedup_asserted())),
            ])
        })
        .collect();
    let result = obj([
        (
            "harness",
            obj([
                ("warmup", JsonValue::Uint(harness.warmup as u64)),
                ("iters", JsonValue::Uint(harness.iters as u64)),
                ("quick", JsonValue::Bool(flags.quick)),
                ("seed", JsonValue::Uint(flags.seed)),
            ]),
        ),
        ("bins", JsonValue::Array(bins)),
    ]);
    let path = write_result("warm_start.json", result.encode_pretty().as_bytes());
    eprintln!("wrote {}", path.display());

    // The CI contract: booting from the snapshot must not be slower
    // than re-running islandization on any islandization-dominated bin
    // (the power-law bin under --quick; pubmed, powerlaw50k and nell in
    // the full run). Read-dominated bins are labelled as such in the
    // JSON (`regime` / `speedup_asserted`) instead of asserted.
    for row in rows.iter().filter(|r| r.speedup_asserted()) {
        assert!(
            row.warm_median_s <= row.cold_median_s,
            "{}: warm boot median {:.6}s exceeds cold build median {:.6}s",
            row.name,
            row.warm_median_s,
            row.cold_median_s
        );
    }
    ExitCode::SUCCESS
}
