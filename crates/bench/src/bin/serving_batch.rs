//! Batched-serving throughput of the owned I-GCN engine.
//!
//! The ROADMAP north-star is a serving system, and this harness
//! measures the serving path end to end: build one [`IGcnEngine`] over
//! a dataset stand-in, `prepare` a model once, then push batches of
//! [`InferenceRequest`]s through [`Accelerator::infer_batch`] —
//! which amortises the consumer schedule and Ã normalisation across
//! the batch — against one [`Accelerator::infer`] call per request.
//! A final phase applies evolving-graph updates through
//! `IGcnEngine::apply_update` and keeps serving on the updated graph.
//!
//! Run: `cargo run --release -p igcn-bench --bin serving_batch -- --quick`

use std::time::Instant;

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, HarnessArgs, Table};
use igcn_core::accel::{Accelerator, GraphUpdate, InferenceRequest};
use igcn_core::IGcnEngine;
use igcn_gnn::{GnnKind, GnnModel, ModelConfig, ModelWeights};
use igcn_graph::datasets::Dataset;
use igcn_graph::SparseFeatures;

fn main() {
    let args = HarnessArgs::parse();
    let scale = if args.quick { 0.1 } else { 0.5 };
    let data = Dataset::Cora.generate_scaled(scale, args.seed);
    let n = data.graph.num_nodes();
    let model = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
    let weights = ModelWeights::glorot(&model, args.seed);
    let feature_dim = data.spec.feature_dim;

    eprintln!("[serving] islandizing {} nodes...", n);
    let mut engine = IGcnEngine::builder(data.graph.clone()).build().expect("loop-free");
    engine.prepare(&model, &weights).expect("weights match the model");

    let batch_sizes = [1usize, 4, 16, 64];
    let mut table = Table::new(vec![
        "batch",
        "one-by-one (ms)",
        "infer_batch (ms)",
        "batch speedup",
        "req/s (batched)",
    ]);
    // Warm caches/allocator before timing.
    let warmup = InferenceRequest::new(SparseFeatures::random(n, feature_dim, 0.01, 999));
    let _ = engine.infer(&warmup).expect("prepared engine");
    for &batch in &batch_sizes {
        let requests: Vec<InferenceRequest> = (0..batch)
            .map(|i| {
                InferenceRequest::new(SparseFeatures::random(
                    n,
                    feature_dim,
                    0.01,
                    args.seed + i as u64,
                ))
                .with_id(i as u64)
            })
            .collect();

        let t0 = Instant::now();
        let solo: Vec<_> =
            requests.iter().map(|r| engine.infer(r).expect("prepared engine")).collect();
        let solo_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let batched = engine.infer_batch(&requests).expect("prepared engine");
        let batched_s = t1.elapsed().as_secs_f64();

        assert_eq!(solo.len(), batched.len());
        for (a, b) in solo.iter().zip(&batched) {
            assert_eq!(a.output, b.output, "batched path must be bit-identical");
        }
        table.row(vec![
            batch.to_string(),
            fmt_sig(solo_s * 1e3),
            fmt_sig(batched_s * 1e3),
            fmt_sig(solo_s / batched_s.max(1e-12)),
            fmt_sig(batch as f64 / batched_s.max(1e-12)),
        ]);
    }
    println!("\n# Batched serving on the owned I-GCN engine (Cora @ {:.0}%)\n", scale * 100.0);
    println!("{}", table.to_markdown());

    // Evolving-graph serving: apply edge batches and keep answering.
    let mut update_table =
        Table::new(vec!["step", "dissolved islands", "reclassified nodes", "incr cycles"]);
    for step in 0..3u64 {
        // A deterministic not-yet-present edge for this step.
        let mut added = Vec::new();
        'search: for offset in 1..n as u32 {
            let a = (step * 7919) as u32 % n as u32;
            let b = (a + offset) % n as u32;
            if a != b
                && !engine.graph().has_edge(igcn_graph::NodeId::new(a), igcn_graph::NodeId::new(b))
            {
                added.push((a, b));
                break 'search;
            }
        }
        let report = engine
            .apply_update(GraphUpdate::add_edges(added))
            .expect("in-range loop-free updates succeed");
        update_table.row(vec![
            step.to_string(),
            report.dissolved_islands.to_string(),
            report.reclassified_nodes.to_string(),
            report.locator_stats.virtual_cycles.to_string(),
        ]);
        let request = InferenceRequest::new(SparseFeatures::random(
            engine.graph().num_nodes(),
            feature_dim,
            0.01,
            900 + step,
        ));
        let response = engine.infer(&request).expect("serving continues after updates");
        assert_eq!(response.output.rows(), engine.graph().num_nodes());
    }
    println!("\n# Evolving-graph serving: apply_update then keep answering\n");
    println!("{}", update_table.to_markdown());

    let path = write_result("serving_batch.csv", table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}
