//! Batched + parallel serving throughput of the owned I-GCN engine.
//!
//! The ROADMAP north-star is a serving system, and this harness
//! measures the serving path end to end in three phases:
//!
//! 1. **Batching** — push batches of [`InferenceRequest`]s through
//!    [`Accelerator::infer_batch`] (which amortises the consumer
//!    schedule and Ã normalisation across the batch) against one
//!    [`Accelerator::infer`] call per request, then keep serving across
//!    evolving-graph updates via `IGcnEngine::apply_update`.
//! 2. **Thread scaling** — on a generated power-law graph (50k nodes in
//!    the full run), sweep `ExecConfig::num_threads` × batch size and
//!    measure `infer_batch` throughput with the vendored
//!    [`BenchHarness`] (warmup + timed iterations, median/p95), checking
//!    outputs stay bit-identical across thread counts. Results land in
//!    `results/serving_scaling.json`.
//! 3. **Serving front-end** — the same workload through
//!    `igcn_serve::ServingEngine` (bounded queue + worker pool +
//!    micro-batching), sweeping the worker count.
//!
//! Run: `cargo run --release -p igcn-bench --bin serving_batch -- --quick`

use std::sync::Arc;
use std::time::Instant;

use igcn_bench::table::fmt_sig;
use igcn_bench::{write_result, BenchHarness, HarnessArgs, Table};
use igcn_core::accel::{Accelerator, GraphUpdate, InferenceRequest};
use igcn_core::{ExecConfig, IGcnEngine};
use igcn_gnn::{GnnKind, GnnModel, ModelConfig, ModelWeights};
use igcn_graph::datasets::Dataset;
use igcn_graph::generate::barabasi_albert;
use igcn_graph::SparseFeatures;
use igcn_serve::{ServingConfig, ServingEngine};
use serde::json::{obj, JsonValue};

fn main() {
    let args = HarnessArgs::parse();
    scaling_sweep(&args);
    let scale = if args.quick { 0.1 } else { 0.5 };
    let data = Dataset::Cora.generate_scaled(scale, args.seed);
    let n = data.graph.num_nodes();
    let model = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
    let weights = ModelWeights::glorot(&model, args.seed);
    let feature_dim = data.spec.feature_dim;

    eprintln!("[serving] islandizing {} nodes...", n);
    let mut engine = IGcnEngine::builder(data.graph.clone()).build().expect("loop-free");
    engine.prepare(&model, &weights).expect("weights match the model");

    let batch_sizes = [1usize, 4, 16, 64];
    let mut table = Table::new(vec![
        "batch",
        "one-by-one (ms)",
        "infer_batch (ms)",
        "batch speedup",
        "req/s (batched)",
    ]);
    // Warm caches/allocator before timing.
    let warmup = InferenceRequest::new(SparseFeatures::random(n, feature_dim, 0.01, 999));
    let _ = engine.infer(&warmup).expect("prepared engine");
    for &batch in &batch_sizes {
        let requests: Vec<InferenceRequest> = (0..batch)
            .map(|i| {
                InferenceRequest::new(SparseFeatures::random(
                    n,
                    feature_dim,
                    0.01,
                    args.seed + i as u64,
                ))
                .with_id(i as u64)
            })
            .collect();

        let t0 = Instant::now();
        let solo: Vec<_> =
            requests.iter().map(|r| engine.infer(r).expect("prepared engine")).collect();
        let solo_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let batched = engine.infer_batch(&requests).expect("prepared engine");
        let batched_s = t1.elapsed().as_secs_f64();

        assert_eq!(solo.len(), batched.len());
        for (a, b) in solo.iter().zip(&batched) {
            assert_eq!(a.output, b.output, "batched path must be bit-identical");
        }
        table.row(vec![
            batch.to_string(),
            fmt_sig(solo_s * 1e3),
            fmt_sig(batched_s * 1e3),
            fmt_sig(solo_s / batched_s.max(1e-12)),
            fmt_sig(batch as f64 / batched_s.max(1e-12)),
        ]);
    }
    println!("\n# Batched serving on the owned I-GCN engine (Cora @ {:.0}%)\n", scale * 100.0);
    println!("{}", table.to_markdown());

    // Evolving-graph serving: apply edge batches and keep answering.
    let mut update_table =
        Table::new(vec!["step", "dissolved islands", "reclassified nodes", "incr cycles"]);
    for step in 0..3u64 {
        // A deterministic not-yet-present edge for this step.
        let mut added = Vec::new();
        'search: for offset in 1..n as u32 {
            let a = (step * 7919) as u32 % n as u32;
            let b = (a + offset) % n as u32;
            if a != b
                && !engine.graph().has_edge(igcn_graph::NodeId::new(a), igcn_graph::NodeId::new(b))
            {
                added.push((a, b));
                break 'search;
            }
        }
        let report = engine
            .apply_update(GraphUpdate::add_edges(added))
            .expect("in-range loop-free updates succeed");
        update_table.row(vec![
            step.to_string(),
            report.dissolved_islands.to_string(),
            report.reclassified_nodes.to_string(),
            report.locator_stats.virtual_cycles.to_string(),
        ]);
        let request = InferenceRequest::new(SparseFeatures::random(
            engine.graph().num_nodes(),
            feature_dim,
            0.01,
            900 + step,
        ));
        let response = engine.infer(&request).expect("serving continues after updates");
        assert_eq!(response.output.rows(), engine.graph().num_nodes());
    }
    println!("\n# Evolving-graph serving: apply_update then keep answering\n");
    println!("{}", update_table.to_markdown());

    let path = write_result("serving_batch.csv", table.to_csv().as_bytes());
    eprintln!("wrote {}", path.display());
}

/// One measured cell of the thread/batch sweep.
struct SweepRow {
    mode: &'static str,
    threads: usize,
    batch: usize,
    median_s: f64,
    p95_s: f64,
    req_per_s: f64,
    speedup_vs_1_thread: f64,
}

/// Phase 2+3: parallel `infer_batch` scaling and the `ServingEngine`
/// front-end on a power-law graph, recorded in
/// `results/serving_scaling.json`.
fn scaling_sweep(args: &HarnessArgs) {
    let n = if args.quick { 4_000 } else { 50_000 };
    let edges_per_node = 8;
    let feature_dim = 32;
    let density = 0.05;
    let graph = Arc::new(barabasi_albert(n, edges_per_node, args.seed));
    let model = GnnModel::gcn(feature_dim, 16, 8);
    let weights = ModelWeights::glorot(&model, args.seed);
    let host_cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let thread_sweep: &[usize] = if args.quick { &[1, 4] } else { &[1, 2, 4] };
    let batch_sweep: &[usize] = if args.quick { &[8] } else { &[8, 32] };
    let harness = if args.quick { BenchHarness::quick() } else { BenchHarness::new(1, 3) };

    eprintln!("[scaling] power-law graph: {n} nodes, m={edges_per_node}, host_cpus={host_cpus}");
    let max_batch = *batch_sweep.iter().max().expect("non-empty sweep");
    let requests: Vec<InferenceRequest> = (0..max_batch)
        .map(|i| {
            InferenceRequest::new(SparseFeatures::random(
                n,
                feature_dim,
                density,
                args.seed + 1000 + i as u64,
            ))
            .with_id(i as u64)
        })
        .collect();

    let mut rows: Vec<SweepRow> = Vec::new();
    let mut table = Table::new(vec![
        "mode",
        "threads",
        "batch",
        "median (ms)",
        "p95 (ms)",
        "req/s",
        "speedup vs 1T",
    ]);
    // One reference per batch size, so every output of every sweep cell
    // is checked, not just a shared prefix.
    let mut reference_outputs: std::collections::HashMap<usize, Vec<igcn_linalg::DenseMatrix>> =
        std::collections::HashMap::new();

    // Islandize once — the thread count is a runtime knob that never
    // touches the partition, so every sweep point reuses the structure.
    eprintln!("[scaling] islandizing {n} nodes...");
    let mut base_engine =
        IGcnEngine::builder(Arc::clone(&graph)).build().expect("BA graphs are loop-free");
    base_engine.prepare(&model, &weights).expect("weights match the model");

    for &threads in thread_sweep {
        eprintln!("[scaling] measuring with {threads} thread(s)...");
        let mut engine = base_engine.clone();
        engine.set_exec_config(ExecConfig::default().with_threads(threads));

        for &batch in batch_sweep {
            let slice = &requests[..batch];
            let stats = harness.run(|| engine.infer_batch(slice).expect("prepared engine"));
            // Determinism across thread counts: the acceptance contract.
            let outputs: Vec<_> = engine
                .infer_batch(slice)
                .expect("prepared engine")
                .into_iter()
                .map(|r| r.output)
                .collect();
            match reference_outputs.get(&batch) {
                None => {
                    reference_outputs.insert(batch, outputs);
                }
                Some(reference) => {
                    assert_eq!(reference.len(), outputs.len());
                    for (a, b) in reference.iter().zip(&outputs) {
                        assert_eq!(a, b, "outputs diverged at {threads} threads");
                    }
                }
            }
            let baseline = rows
                .iter()
                .find(|r| r.mode == "infer_batch" && r.threads == 1 && r.batch == batch)
                .map(|r| r.median_s);
            let speedup = baseline.map_or(1.0, |b| b / stats.median_s());
            let row = SweepRow {
                mode: "infer_batch",
                threads,
                batch,
                median_s: stats.median_s(),
                p95_s: stats.p95_s(),
                req_per_s: stats.throughput(batch),
                speedup_vs_1_thread: speedup,
            };
            table.row(vec![
                row.mode.to_string(),
                threads.to_string(),
                batch.to_string(),
                fmt_sig(row.median_s * 1e3),
                fmt_sig(row.p95_s * 1e3),
                fmt_sig(row.req_per_s),
                fmt_sig(row.speedup_vs_1_thread),
            ]);
            rows.push(row);
        }

        // Phase 3: the ServingEngine front-end over this backend, same
        // workload through the bounded queue + micro-batching workers.
        let serving = ServingEngine::start(
            Arc::new(engine),
            ServingConfig::default()
                .with_workers(threads)
                .with_queue_capacity(2 * max_batch)
                .with_max_batch(8),
        );
        let batch = max_batch;
        let stats = harness.run(|| {
            let tickets =
                serving.submit_batch(requests.clone()).expect("engine accepts while running");
            for ticket in tickets {
                ticket.wait().expect("backend answers");
            }
        });
        let baseline = rows
            .iter()
            .find(|r| r.mode == "serving_engine" && r.threads == 1 && r.batch == batch)
            .map(|r| r.median_s);
        let row = SweepRow {
            mode: "serving_engine",
            threads,
            batch,
            median_s: stats.median_s(),
            p95_s: stats.p95_s(),
            req_per_s: stats.throughput(batch),
            speedup_vs_1_thread: baseline.map_or(1.0, |b| b / stats.median_s()),
        };
        table.row(vec![
            row.mode.to_string(),
            threads.to_string(),
            batch.to_string(),
            fmt_sig(row.median_s * 1e3),
            fmt_sig(row.p95_s * 1e3),
            fmt_sig(row.req_per_s),
            fmt_sig(row.speedup_vs_1_thread),
        ]);
        rows.push(row);
        serving.shutdown();
    }

    println!("\n# Parallel serving scaling (power-law, {n} nodes, {host_cpus} host CPU(s))\n");
    println!("{}", table.to_markdown());
    if host_cpus == 1 {
        eprintln!(
            "[scaling] note: only one host CPU is available — thread scaling is \
             measured but cannot exceed 1x on this machine"
        );
    }

    let sweep: Vec<JsonValue> = rows
        .iter()
        .map(|row| {
            obj([
                ("mode", JsonValue::Str(row.mode.to_string())),
                ("threads", JsonValue::Uint(row.threads as u64)),
                ("batch", JsonValue::Uint(row.batch as u64)),
                ("median_s", JsonValue::from_f64_rounded(row.median_s)),
                ("p95_s", JsonValue::from_f64_rounded(row.p95_s)),
                ("req_per_s", JsonValue::from_f64_rounded(row.req_per_s)),
                ("speedup_vs_1_thread", JsonValue::from_f64_rounded(row.speedup_vs_1_thread)),
            ])
        })
        .collect();
    let result = obj([
        ("host_cpus", JsonValue::Uint(host_cpus as u64)),
        (
            "graph",
            obj([
                ("kind", JsonValue::Str("barabasi_albert".to_string())),
                ("nodes", JsonValue::Uint(n as u64)),
                ("edges_per_node", JsonValue::Uint(edges_per_node as u64)),
                ("seed", JsonValue::Uint(args.seed)),
            ]),
        ),
        (
            "model",
            obj([
                ("kind", JsonValue::Str("gcn".to_string())),
                ("in_dim", JsonValue::Uint(feature_dim as u64)),
                ("hidden", JsonValue::Uint(16)),
                ("classes", JsonValue::Uint(8)),
            ]),
        ),
        (
            "harness",
            obj([
                ("warmup", JsonValue::Uint(harness.warmup as u64)),
                ("iters", JsonValue::Uint(harness.iters as u64)),
            ]),
        ),
        ("sweep", JsonValue::Array(sweep)),
    ]);
    let path = write_result("serving_scaling.json", result.encode_pretty().as_bytes());
    eprintln!("wrote {}", path.display());
}
