//! Seeded failpoint chaos campaigns over the durability and fleet
//! layers, plus the disabled-failpoint overhead probe.
//!
//! ```text
//! chaos_tool [--quick] [--seed N]
//! ```
//!
//! Three campaigns run back to back and every one must end with the
//! system fully recovered, or the tool panics (non-zero exit — the CI
//! contract):
//!
//! * **store** — cycles every registered `igcn_store` failpoint
//!   (`igcn_store::FAILPOINTS`) through its reachable fault plans:
//!   WAL appends that die or tear mid-record, checkpoints that die
//!   before/after the publish rename, snapshot reads that fail or
//!   serve a torn prefix. After every injection the store is booted
//!   like a crash-restarted serving node and its engine must be
//!   **bit-identical** (outputs *and* `ExecStats`) to a shadow engine
//!   that holds exactly the acknowledged updates — `apply_update`
//!   returning `Ok` is the acknowledgement line; nothing behind it may
//!   be lost, nothing in front of it may survive.
//! * **shard** — arms `shard::run_layer` (`igcn_shard::FAILPOINTS`)
//!   with rotating panic/delay schedules against a 3-shard fleet, on
//!   both the sequential and the pooled fan-out path. Every kill must
//!   be contained (typed `BackendFailed`, degraded health, fail-fast),
//!   `heal()` must rebuild exactly the dead shards, and the healed
//!   fleet must match the pristine fleet bit for bit.
//! * **overhead** — measures `igcn_fail::eval` with no point armed
//!   (the production configuration) and asserts it stays under 1 µs
//!   per call; the armed-registry cost is recorded alongside for
//!   scale.
//!
//! Both campaigns also reconcile the telemetry layer against their own
//! fault tallies: `shard_contained_panics` must tick once per shard
//! observed Down, `store_wal_rollbacks` once per observed engine
//! rejection, and no registry counter may go backwards across a
//! `heal()` or a recovery boot.
//!
//! Results land in `results/chaos.json`. The committed numbers come
//! from a 1-CPU container: injection counts and recovery rates are
//! machine-independent, the overhead timings are not.

use std::path::PathBuf;
use std::time::Instant;

use igcn_bench::write_result;
use igcn_core::{
    Accelerator, BackendHealth, CoreError, ExecConfig, GraphUpdate, IGcnEngine, InferenceRequest,
};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::generate::HubIslandConfig;
use igcn_graph::SparseFeatures;
use igcn_shard::ShardedEngine;
use igcn_store::{EngineStore, StoreError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json::{obj, JsonValue};

const DIM: usize = 12;

struct Args {
    quick: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, seed: 7 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                let value = it.next().and_then(|v| v.parse().ok());
                let Some(seed) = value else {
                    eprintln!("--seed needs an integer value");
                    std::process::exit(2);
                };
                args.seed = seed;
            }
            other => {
                eprintln!("unknown flag {other:?}; usage: chaos_tool [--quick] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Tally of one campaign: how many faults actually fired and how many
/// recovery cycles (boot / heal + bit-identity check) were proven.
#[derive(Default)]
struct Tally {
    rounds: u64,
    injections: u64,
    recoveries: u64,
}

fn engine_with_model(n: usize, seed: u64) -> IGcnEngine {
    let g = HubIslandConfig::new(n, 10).noise_fraction(0.03).generate(seed);
    let mut engine = IGcnEngine::builder(g.graph).build().expect("generated graphs are loop-free");
    let model = GnnModel::gcn(DIM, 9, 5);
    let weights = ModelWeights::glorot(&model, seed + 1);
    engine.prepare(&model, &weights).expect("weights match the model");
    engine
}

/// Asserts no registry counter went backwards since `before` — the
/// telemetry contract across recovery: heal/boot may reset engines,
/// never metrics.
fn assert_counters_monotonic(before: &[(String, u64)], context: &str) {
    let now = igcn_obs::snapshot().counters;
    for (name, was) in before {
        let is = now.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v);
        assert!(is >= *was, "{context}: counter {name} went backwards ({was} -> {is})");
    }
}

fn assert_bit_identical(a: &IGcnEngine, b: &IGcnEngine, seed: u64, context: &str) {
    assert_eq!(a.graph().num_nodes(), b.graph().num_nodes(), "{context}: node counts diverged");
    let req = InferenceRequest::new(SparseFeatures::random(a.graph().num_nodes(), DIM, 0.3, seed));
    let ra = a.infer(&req).expect("recovered engine serves");
    let rb = b.infer(&req).expect("shadow engine serves");
    assert_eq!(ra.output, rb.output, "{context}: recovered output is not bit-identical");
    assert_eq!(ra.report, rb.report, "{context}: recovered ExecStats diverged");
}

/// What the store campaign does while a failpoint is armed.
#[derive(Clone, Copy, Debug)]
enum StoreOp {
    /// One WAL-first `apply_update` (may or may not be acknowledged).
    Churn,
    /// One `checkpoint` (rotate + publish + WAL reset).
    Checkpoint,
    /// One crash-restart `boot`.
    Boot,
    /// Two clean checkpoints, then a faulted `boot`: the WAL is empty
    /// and both generations hold the same state, so even a boot that
    /// quarantines a *healthy-but-torn-read* current snapshot and
    /// falls back to the previous generation loses nothing.
    BootAfterDoubleCheckpoint,
}

/// Every (failpoint, spec pattern, operation) plan the store campaign
/// cycles through. `{K}` is replaced with a seeded tear offset; `{W}`
/// with one capped below the 12-byte WAL record header — tearing at or
/// past the record's end writes the whole record durably before the
/// error, which is the genuinely ambiguous crashed-after-commit window
/// and correctly replays at boot.
const STORE_PLANS: &[(&str, &str, StoreOp)] = &[
    ("store::wal::append", "once:return", StoreOp::Churn),
    ("store::wal::append", "once:truncate({W})", StoreOp::Churn),
    ("store::io::write", "once:return", StoreOp::Checkpoint),
    ("store::io::write", "once:truncate({K})", StoreOp::Checkpoint),
    ("store::snapshot::publish", "once:return", StoreOp::Checkpoint),
    ("store::snapshot::publish", "once:truncate({K})", StoreOp::Checkpoint),
    ("store::checkpoint::rotated", "once:return", StoreOp::Checkpoint),
    ("store::io::rename", "once:return", StoreOp::Checkpoint),
    ("store::wal::reset", "once:return", StoreOp::Checkpoint),
    ("store::io::read", "once:return", StoreOp::Boot),
    ("store::io::read", "once:truncate({K})", StoreOp::BootAfterDoubleCheckpoint),
];

/// Runs the store campaign until `target` faults have fired. Every
/// round injects one fault plan, then proves recovery: a crash-restart
/// boot that is bit-identical to the shadow engine holding exactly the
/// acknowledged updates.
fn store_campaign(dir: &std::path::Path, seed: u64, target: u64) -> Tally {
    // Make sure the plan table and the crate's registry agree — a new
    // failpoint must be added to the campaign, not silently skipped.
    for point in igcn_store::FAILPOINTS {
        assert!(
            STORE_PLANS.iter().any(|(name, _, _)| name == point),
            "store failpoint {point} has no chaos plan"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let store = EngineStore::at(dir.join("chaos.snap"));
    let mut engine = engine_with_model(220, seed);
    let mut shadow = engine_with_model(220, seed);
    store.checkpoint(&engine).expect("initial checkpoint");
    // Telemetry reconciliation: every engine rejection the campaign
    // observes must tick `store_wal_rollbacks` exactly once (injected
    // I/O faults fail *before* the engine apply, so they must not).
    let rollbacks_before = igcn_obs::counter("store_wal_rollbacks").get();
    let mut observed_rejections: u64 = 0;

    let mut tally = Tally::default();
    let mut plan_idx = 0usize;
    while tally.injections < target {
        assert!(
            tally.rounds < target * 8,
            "store campaign stalled: {} injections after {} rounds",
            tally.injections,
            tally.rounds
        );
        let (point, spec_pattern, op) = STORE_PLANS[plan_idx % STORE_PLANS.len()];
        plan_idx += 1;
        tally.rounds += 1;

        // One acknowledged update per round keeps the state (and the
        // WAL the faults land on) evolving.
        let update = next_update(&engine, &mut rng);
        store.apply_update(&mut engine, update.clone()).expect("unarmed update is acknowledged");
        shadow.apply_update(update).expect("shadow applies the acknowledged update");

        let spec = spec_pattern
            .replace("{K}", &rng.gen_range(0u64..96).to_string())
            .replace("{W}", &rng.gen_range(0u64..12).to_string());
        if matches!(op, StoreOp::BootAfterDoubleCheckpoint) {
            // Fold the WAL twice so both generations carry this exact
            // state before the torn-read boot quarantines one of them.
            store.checkpoint(&engine).expect("pre-fault checkpoint");
            store.checkpoint(&engine).expect("pre-fault checkpoint");
        }
        igcn_fail::cfg(point, &spec).expect("plan specs parse");
        match op {
            StoreOp::Churn => {
                let update = next_update(&engine, &mut rng);
                match store.apply_update(&mut engine, update.clone()) {
                    // Acknowledged despite the armed point (e.g. the
                    // fault was spent elsewhere): the shadow keeps it.
                    Ok(_) => shadow.apply_update(update).map(|_| ()).expect("shadow applies"),
                    // Engine rejection: the WAL record was rolled back.
                    Err(StoreError::Core(_)) => observed_rejections += 1,
                    // Injected I/O fault: died before the engine apply.
                    Err(_) => {}
                }
            }
            StoreOp::Checkpoint => {
                // Err is the injection surfacing as a typed StoreError;
                // recovery below proves nothing acknowledged was lost.
                let _ = store.checkpoint(&engine);
            }
            StoreOp::Boot | StoreOp::BootAfterDoubleCheckpoint => {
                let _ = store.boot(ExecConfig::default());
            }
        }
        tally.injections += igcn_fail::fired(point);
        igcn_fail::remove(point);

        // Crash-restart: the recovered node must hold exactly the
        // acknowledged state, bit for bit — and recovery must never
        // rewind a metric.
        let counters = igcn_obs::snapshot().counters;
        let boot = store.boot(ExecConfig::default()).expect("recovery boot succeeds");
        assert_bit_identical(&boot.engine, &shadow, rng.gen(), &format!("{point} [{spec}]"));
        assert_counters_monotonic(&counters, &format!("{point} [{spec}] recovery boot"));
        engine = boot.engine;
        tally.recoveries += 1;
        // Repair the store like a restarted node would, so the next
        // round starts from a healthy generation pair.
        store.checkpoint(&engine).expect("post-recovery checkpoint");
    }
    assert_eq!(
        igcn_obs::counter("store_wal_rollbacks").get() - rollbacks_before,
        observed_rejections,
        "store_wal_rollbacks must tick once per observed engine rejection"
    );
    igcn_fail::teardown();
    tally
}

/// A structural update: mostly fresh nodes wired to a hub (always
/// valid), sometimes an edge between existing nodes (occasionally a
/// duplicate — exercising the engine-rejection + WAL-rollback path).
fn next_update(engine: &IGcnEngine, rng: &mut StdRng) -> GraphUpdate {
    let n = engine.graph().num_nodes() as u32;
    let hub = engine.partition().hubs().first().copied().unwrap_or(0);
    if rng.gen_bool(0.7) {
        GraphUpdate::add_edges(vec![(n, hub)]).with_num_nodes(n as usize + 1)
    } else {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            GraphUpdate::add_edges(vec![(n, hub)]).with_num_nodes(n as usize + 1)
        } else {
            GraphUpdate::add_edges(vec![(a, b)])
        }
    }
}

/// Panic/delay schedules the shard campaign rotates through. `nth`
/// indexes layer-seam hits within one inference: 3 shards × 2 layers =
/// 6 hits sequentially, so every schedule can fire.
const SHARD_SPECS: &[&str] = &[
    "nth(1):panic",
    "nth(2):panic",
    "nth(3):panic",
    "nth(4):panic",
    "nth(5):panic",
    "nth(6):panic",
    "panic",
    "prob(0.5,11):panic",
    "delay(1)",
];

/// Runs the shard campaign until `target` faults have fired: inject a
/// kill schedule, require containment + degraded health + fail-fast,
/// heal, and require bit-identity with the pristine fleet.
fn shard_campaign(seed: u64, target: u64) -> Tally {
    assert_eq!(igcn_shard::FAILPOINTS, ["shard::run_layer"], "new shard failpoints need plans");
    // Injected shard panics are contained at the fan-out seam, but the
    // default hook would still print a backtrace per kill — hundreds of
    // them. Filter exactly those; everything else keeps reporting.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.contains("injected panic") {
            previous_hook(info);
        }
    }));
    let reference = engine_with_model(320, seed);
    let features = SparseFeatures::random(reference.graph().num_nodes(), DIM, 0.3, seed + 9);
    let request = InferenceRequest::new(features).with_id(1);
    let want = reference.infer(&request).expect("reference serves");
    // The fleet's ExecReport embeds its own backend name and the
    // fan-out path's per-worker cycle split, so the stats baselines
    // come from an undamaged fleet under each exec config — not from
    // the single engine.
    let mut pristine = ShardedEngine::from_engine(&reference, 3).expect("fleet partitions");
    let want_report_seq = pristine.infer(&request).expect("pristine fleet serves").report;
    pristine.set_exec_config(ExecConfig::default().with_threads(3));
    let want_report_pooled = pristine.infer(&request).expect("pristine fleet serves").report;
    let mut fleet = ShardedEngine::from_engine(&reference, 3).expect("fleet partitions");

    // Telemetry reconciliation: the fan-out seam counts one
    // `shard_contained_panics` per shard it marks Down, and the fleet
    // fails fast while degraded — so the counter delta must equal the
    // campaign's own tally of downed shards, exactly.
    let panics_before = igcn_obs::counter("shard_contained_panics").get();
    let mut observed_down: u64 = 0;

    let mut tally = Tally::default();
    let mut spec_idx = 0usize;
    while tally.injections < target {
        assert!(
            tally.rounds < target * 8,
            "shard campaign stalled: {} injections after {} rounds",
            tally.injections,
            tally.rounds
        );
        let spec = SHARD_SPECS[spec_idx % SHARD_SPECS.len()];
        spec_idx += 1;
        tally.rounds += 1;
        // Alternate the sequential and the pooled fan-out path.
        let pooled = tally.rounds % 2 == 0;
        let exec =
            if pooled { ExecConfig::default().with_threads(3) } else { ExecConfig::default() };
        fleet.set_exec_config(exec);

        igcn_fail::cfg("shard::run_layer", spec).expect("shard specs parse");
        let outcome = fleet.infer(&request);
        tally.injections += igcn_fail::fired("shard::run_layer");
        igcn_fail::remove("shard::run_layer");

        let down = fleet.down_shards();
        if down.is_empty() {
            // The schedule did not kill anything (delay, or prob that
            // never fired): the request must have served bit-exactly.
            let got = outcome.expect("no shard died, so the request serves");
            assert_eq!(got.output, want.output, "{spec}: undamaged fleet output diverged");
        } else {
            // Containment: typed error, degraded health, fail-fast.
            assert!(
                matches!(outcome, Err(CoreError::BackendFailed { .. })),
                "{spec}: a shard kill must surface as BackendFailed"
            );
            assert!(
                matches!(fleet.health(), BackendHealth::Degraded { .. }),
                "{spec}: a down shard must degrade fleet health"
            );
            assert!(
                fleet.infer(&request).is_err(),
                "{spec}: a degraded fleet must fail fast, not serve through a dead shard"
            );
            observed_down += down.len() as u64;
            let counters = igcn_obs::snapshot().counters;
            let healed = fleet.heal().expect("heal rebuilds the dead shards");
            assert_eq!(healed, down, "{spec}: heal must rebuild exactly the dead shards");
            assert_counters_monotonic(&counters, &format!("{spec}: heal"));
            tally.recoveries += 1;
        }
        assert!(fleet.health().is_ready(), "{spec}: fleet must be ready after the round");
        let want_report = if pooled { &want_report_pooled } else { &want_report_seq };
        let got = fleet.infer(&request).expect("healed fleet serves");
        assert_eq!(got.output, want.output, "{spec}: post-heal output is not bit-identical");
        assert_eq!(&got.report, want_report, "{spec}: post-heal ExecStats diverged");
    }
    assert_eq!(
        igcn_obs::counter("shard_contained_panics").get() - panics_before,
        observed_down,
        "shard_contained_panics must tick once per shard the campaign saw go down"
    );
    igcn_fail::teardown();
    tally
}

/// Times `igcn_fail::eval` per call: once with the registry empty (the
/// production configuration — one relaxed atomic load) and once with
/// an armed registry (the chaos configuration — a registry lock per
/// hit, using a never-firing trigger so only lookup cost is measured).
fn overhead_probe(iters: u64) -> (f64, f64) {
    igcn_fail::teardown();
    let timed = |iters: u64| {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(igcn_fail::eval(std::hint::black_box("chaos::probe")));
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    let disabled_ns = timed(iters);
    igcn_fail::cfg("chaos::probe", &format!("nth({}):return", u64::MAX)).expect("spec parses");
    // The armed path serializes on the registry lock, so probe fewer
    // iterations — the point is the order of magnitude.
    let armed_ns = timed(iters / 8 + 1);
    igcn_fail::teardown();
    (disabled_ns, armed_ns)
}

fn tally_json(t: &Tally) -> JsonValue {
    obj([
        ("rounds", JsonValue::Uint(t.rounds)),
        ("injections", JsonValue::Uint(t.injections)),
        ("recovery_cycles", JsonValue::Uint(t.recoveries)),
        // Recovery is asserted per cycle, so surviving to the report
        // IS the 100%; the field makes the contract greppable.
        ("recovery_rate", JsonValue::from_f64_rounded(1.0)),
    ])
}

fn main() {
    let args = parse_args();
    let (store_target, shard_target, probe_iters) =
        if args.quick { (120, 100, 200_000) } else { (400, 280, 2_000_000) };

    let dir: PathBuf = std::env::temp_dir().join(format!("igcn-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");

    eprintln!("store campaign: target {store_target} injections...");
    let store = store_campaign(&dir, args.seed, store_target);
    std::fs::remove_dir_all(&dir).ok();
    eprintln!(
        "  {} injections / {} rounds, {} recovery cycles, all bit-identical",
        store.injections, store.rounds, store.recoveries
    );

    eprintln!("shard campaign: target {shard_target} injections...");
    let shard = shard_campaign(args.seed + 1, shard_target);
    eprintln!(
        "  {} injections / {} rounds, {} heal cycles, all bit-identical",
        shard.injections, shard.rounds, shard.recoveries
    );

    let (disabled_ns, armed_ns) = overhead_probe(probe_iters);
    eprintln!("failpoint eval: disabled {disabled_ns:.2} ns/call, armed {armed_ns:.1} ns/call");
    assert!(
        disabled_ns < 1_000.0,
        "a disabled failpoint must cost nanoseconds, measured {disabled_ns:.1} ns/call"
    );

    let total = store.injections + shard.injections;
    assert!(total >= 200, "campaign total must reach 200 injections, got {total}");

    let result = obj([
        ("seed", JsonValue::Uint(args.seed)),
        ("quick", JsonValue::Bool(args.quick)),
        ("total_injections", JsonValue::Uint(total)),
        ("store", tally_json(&store)),
        ("shard", tally_json(&shard)),
        (
            "failpoint_eval",
            obj([
                ("disabled_ns_per_call", JsonValue::from_f64_rounded(disabled_ns)),
                ("armed_ns_per_call", JsonValue::from_f64_rounded(armed_ns)),
                ("probe_iters", JsonValue::Uint(probe_iters)),
            ]),
        ),
        (
            // Reconciled against the campaigns' own fault tallies (and
            // checked monotonic across every heal/boot) — asserted
            // above, recorded here.
            "telemetry",
            obj([
                (
                    "shard_contained_panics",
                    JsonValue::Uint(igcn_obs::counter("shard_contained_panics").get()),
                ),
                (
                    "store_wal_rollbacks",
                    JsonValue::Uint(igcn_obs::counter("store_wal_rollbacks").get()),
                ),
            ]),
        ),
        (
            "note",
            JsonValue::Str(
                "committed numbers come from a 1-CPU container; injection counts and \
                 recovery rates are machine-independent, eval timings are not"
                    .to_string(),
            ),
        ),
    ]);
    let path = write_result("chaos.json", result.encode_pretty().as_bytes());
    eprintln!("wrote {}", path.display());
}
