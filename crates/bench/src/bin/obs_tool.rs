//! Telemetry smoke + measurement tool: proves the observability layer
//! end to end and records per-stage latency for both wire protocols.
//!
//! ```text
//! obs_tool [--quick] [--seed N] [--requests N]
//! ```
//!
//! One run walks the whole telemetry contract, asserting each step
//! (any violation panics — the CI contract):
//!
//! * **overhead** — probes the disabled-span fast path before anything
//!   enables telemetry and asserts it stays at single-digit
//!   nanoseconds per span: instrumented code must be free to leave
//!   spans in place unconditionally.
//! * **neutrality** — runs the same inference on a sharded fleet with
//!   telemetry off and on; output *and* `ExecStats` must be
//!   bit-identical. Instrumentation observes, never perturbs.
//! * **store** — an `apply_update` + `checkpoint` campaign populates
//!   the `wal_append`/`checkpoint` stage histograms and provokes one
//!   engine rejection so the `store_wal_rollbacks` counter ticks.
//! * **gateway** — serves the fleet over TCP and drives HTTP then
//!   binary requests with caller-supplied trace IDs (each echo is
//!   asserted). Per-stage histograms are snapshotted around each
//!   phase, so the recorded p50/p99 are per protocol.
//! * **scrape** — `GET /metrics` must parse line-by-line as Prometheus
//!   text and `GET /stats` must carry the per-stage JSON; the flight
//!   recorder must hold traced entries for the driven requests.
//! * **coverage** — every declared stage in [`igcn_obs::stage::ALL`]
//!   must have recorded at least one sample by the end of the run.
//!
//! Per-stage p50/p99 land in `results/telemetry.json`. The committed
//! numbers come from a 1-CPU container: stage *ratios* are meaningful,
//! absolute nanoseconds are wall-clock references only.

use std::sync::Arc;
use std::time::Instant;

use igcn_bench::write_result;
use igcn_core::{Accelerator, GraphUpdate, IGcnEngine, InferenceRequest};
use igcn_gateway::{BinaryClient, Gateway, GatewayConfig, HttpClient, InferReply};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::generate::HubIslandConfig;
use igcn_graph::SparseFeatures;
use igcn_obs::{HistogramSnapshot, MetricsSnapshot};
use igcn_shard::ShardedEngine;
use igcn_store::EngineStore;
use serde::json::{obj, JsonValue};

const DIM: usize = 12;

struct Args {
    quick: bool,
    seed: u64,
    requests: u64,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, seed: 11, requests: 0 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs an integer value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--seed" => args.seed = value("--seed"),
            "--requests" => args.requests = value("--requests"),
            other => {
                eprintln!(
                    "unknown flag {other:?}; usage: obs_tool [--quick] [--seed N] [--requests N]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.requests == 0 {
        args.requests = if args.quick { 40 } else { 200 };
    }
    args
}

fn engine_with_model(n: usize, seed: u64) -> IGcnEngine {
    let g = HubIslandConfig::new(n, 10).noise_fraction(0.03).generate(seed);
    let mut engine = IGcnEngine::builder(g.graph).build().expect("generated graphs are loop-free");
    let model = GnnModel::gcn(DIM, 9, 5);
    let weights = ModelWeights::glorot(&model, seed + 1);
    engine.prepare(&model, &weights).expect("weights match the model");
    engine
}

/// The per-stage histogram delta between two registry snapshots (zero
/// when the stage never recorded in either).
fn stage_delta(
    before: &MetricsSnapshot,
    after: &MetricsSnapshot,
    stage: &str,
) -> HistogramSnapshot {
    let name = format!("stage_ns/{stage}");
    let find = |snap: &MetricsSnapshot| {
        snap.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h.clone()).unwrap_or_default()
    };
    find(after).delta_since(&find(before))
}

fn stage_json(delta: &HistogramSnapshot) -> JsonValue {
    obj([
        ("count", JsonValue::Uint(delta.count())),
        ("p50_ns", JsonValue::Uint(delta.quantile(0.50))),
        ("p99_ns", JsonValue::Uint(delta.quantile(0.99))),
        ("max_ns", JsonValue::Uint(delta.max)),
    ])
}

/// All stages that recorded inside the phase, as a JSON object in
/// declaration order.
fn phase_json(before: &MetricsSnapshot, after: &MetricsSnapshot) -> JsonValue {
    let mut rows = Vec::new();
    for stage in igcn_obs::stage::ALL {
        let delta = stage_delta(before, after, stage);
        if delta.count() > 0 {
            rows.push(((*stage).to_string(), stage_json(&delta)));
        }
    }
    JsonValue::Object(rows)
}

/// Proves instrumentation neutrality: the same request on the same
/// fleet, telemetry off vs on, must be bit-identical in output and
/// `ExecStats`.
fn assert_instrumentation_neutral(fleet: &ShardedEngine, seed: u64) {
    let x = SparseFeatures::random(fleet.graph().num_nodes(), DIM, 0.3, seed);
    let request = InferenceRequest::new(x).with_id(7);
    igcn_obs::set_enabled(false);
    let off = fleet.infer(&request).expect("fleet serves with telemetry off");
    igcn_obs::set_enabled(true);
    let on = fleet.infer(&request).expect("fleet serves with telemetry on");
    assert_eq!(off.output, on.output, "telemetry changed inference output");
    assert_eq!(off.report, on.report, "telemetry changed ExecStats");
}

/// Populates the `wal_append`/`checkpoint` stages and ticks the
/// rollback counter once via a duplicate-edge rejection.
fn store_campaign(dir: &std::path::Path, seed: u64, updates: u64) {
    let store = EngineStore::at(dir.join("obs.snap"));
    let mut engine = engine_with_model(160, seed);
    store.checkpoint(&engine).expect("initial checkpoint");
    let hub = engine.partition().hubs().first().copied().unwrap_or(0);
    for _ in 0..updates {
        let n = engine.graph().num_nodes();
        let update = GraphUpdate::add_edges(vec![(n as u32, hub)]).with_num_nodes(n + 1);
        store.apply_update(&mut engine, update).expect("fresh-node update is acknowledged");
    }
    store.checkpoint(&engine).expect("mid-campaign checkpoint");
    // A self-loop is rejected by the engine after the WAL append,
    // driving the rollback path (and its counter) exactly once.
    let rollbacks_before = igcn_obs::counter("store_wal_rollbacks").get();
    store
        .apply_update(&mut engine, GraphUpdate::add_edges(vec![(hub, hub)]))
        .expect_err("self-loop is rejected");
    assert_eq!(
        igcn_obs::counter("store_wal_rollbacks").get(),
        rollbacks_before + 1,
        "a rejected update must tick store_wal_rollbacks"
    );
    store.checkpoint(&engine).expect("final checkpoint");
}

/// Every non-comment `/metrics` line must be `name[ {labels}] value`
/// with a parseable numeric value — the Prometheus text contract —
/// and every `# TYPE` family must be introduced by a `# HELP` line.
fn assert_prometheus_parses(text: &str) {
    let mut samples = 0usize;
    let mut last_help: Option<&str> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            last_help = rest.split(' ').next();
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split(' ').next().unwrap_or("");
            assert_eq!(
                last_help,
                Some(family),
                "# TYPE {family} must be preceded by its # HELP line"
            );
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value = line.rsplit(' ').next().unwrap_or("");
        assert!(value.parse::<f64>().is_ok(), "unparseable /metrics sample line: {line:?}");
        samples += 1;
    }
    assert!(samples > 0, "/metrics rendered no samples");
    for family in [
        "igcn_stage_ns",
        "igcn_gateway_admitted_total",
        "igcn_gateway_connections_total",
        "igcn_gateway_queue_depth",
        "igcn_gateway_inflight",
        "igcn_gateway_shed_reason_total{reason=\"queue_full\"}",
    ] {
        assert!(text.contains(family), "/metrics is missing the {family} family");
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();
    let probe_iters: u64 = if args.quick { 400_000 } else { 4_000_000 };

    // 1. Disabled-span overhead, probed before anything turns
    //    telemetry on: this is the cost every instrumented callsite
    //    pays in a process that never observes.
    let overhead_ns = igcn_obs::disabled_span_overhead_ns(probe_iters);
    eprintln!("[obs] disabled span: {overhead_ns:.2} ns/span over {probe_iters} iters");
    assert!(overhead_ns <= 5.0, "disabled spans must cost <= 5 ns, measured {overhead_ns:.2} ns");

    // 2. Neutrality on a sharded fleet (covers the halo spans too).
    let reference = engine_with_model(300, args.seed);
    let fleet = ShardedEngine::from_engine(&reference, 2).expect("fleet partitions");
    assert_instrumentation_neutral(&fleet, args.seed + 3);
    eprintln!("[obs] instrumentation neutral: output and ExecStats bit-identical off/on");

    igcn_obs::set_enabled(true);

    // 3. Store campaign: wal_append + checkpoint stages, rollback
    //    counter.
    let dir = std::env::temp_dir().join(format!("igcn-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let store_updates = if args.quick { 16 } else { 64 };
    let store_before = igcn_obs::snapshot();
    store_campaign(&dir, args.seed + 5, store_updates);
    std::fs::remove_dir_all(&dir).ok();
    let store_after = igcn_obs::snapshot();
    eprintln!(
        "[obs] store campaign: {} wal appends, {} checkpoints",
        stage_delta(&store_before, &store_after, igcn_obs::stage::WAL_APPEND).count(),
        stage_delta(&store_before, &store_after, igcn_obs::stage::CHECKPOINT).count()
    );

    // 4. Gateway phases: HTTP then binary, caller-minted trace IDs.
    let backend: Arc<dyn Accelerator> = Arc::new(fleet);
    let gateway = match Gateway::serve(backend, ("127.0.0.1", 0), GatewayConfig::from_env()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: gateway bind failed: {e}");
            std::process::exit(2);
        }
    };
    let addr = gateway.local_addr();
    let x = SparseFeatures::random(reference.graph().num_nodes(), DIM, 0.3, args.seed + 4);
    eprintln!("[obs] gateway on {addr}; driving {} requests per protocol...", args.requests);

    let started = Instant::now();
    let http_before = igcn_obs::snapshot();
    let mut http = HttpClient::connect(addr).expect("gateway accepts");
    for k in 0..args.requests {
        let trace = 0x0B50_0000_0000_0000 | (k + 1);
        let (reply, echoed) =
            http.infer_traced(k + 1, Some(10_000), &x, trace).expect("http request round-trips");
        assert!(
            matches!(reply, InferReply::Output { .. }),
            "unloaded gateway must serve, got {reply:?}"
        );
        assert_eq!(echoed, trace, "http reply must echo the supplied trace id");
    }
    let http_after = igcn_obs::snapshot();

    let mut binary = BinaryClient::connect(addr).expect("gateway accepts");
    for k in 0..args.requests {
        let trace = 0x0B11_0000_0000_0000 | (k + 1);
        let (reply, echoed) = binary
            .infer_traced(k + 1, Some(10_000), &x, trace)
            .expect("binary request round-trips");
        assert!(
            matches!(reply, InferReply::Output { .. }),
            "unloaded gateway must serve, got {reply:?}"
        );
        assert_eq!(echoed, trace, "binary reply must echo the supplied trace id");
    }
    let binary_after = igcn_obs::snapshot();
    let elapsed = started.elapsed().as_secs_f64();

    // 5. Scrape endpoints + flight recorder.
    let (status, metrics_text, _) = http.get_traced("/metrics", 0).expect("/metrics round-trips");
    assert_eq!(status, 200, "/metrics must serve 200");
    assert_prometheus_parses(&metrics_text);
    let (status, stats_body, _) = http.get_traced("/stats", 0).expect("/stats round-trips");
    assert_eq!(status, 200, "/stats must serve 200");
    for key in ["\"stages\"", "\"queue_wait\"", "\"shards\""] {
        assert!(stats_body.contains(key), "/stats is missing {key}");
    }
    let (status, flight_body, _) =
        http.get_traced("/debug/flight", 0).expect("/debug/flight round-trips");
    assert_eq!(status, 200, "/debug/flight must serve 200");
    assert!(
        flight_body.contains("\"entries\"") && flight_body.contains("\"stages_us\""),
        "/debug/flight must serve the flight-recorder ring as JSON"
    );
    let flights = igcn_obs::flight_entries();
    assert!(!flights.is_empty(), "flight recorder must hold the driven requests");
    assert!(flights.len() <= igcn_obs::FLIGHT_CAPACITY, "flight recorder overflowed its ring");
    assert!(
        flights.iter().all(|f| f.trace_id != 0),
        "every flight entry must carry a nonzero trace id"
    );
    let stats = gateway.stats();
    gateway.shutdown();

    // 6. Coverage: all declared stages recorded somewhere in this run.
    let end = igcn_obs::snapshot();
    for stage in igcn_obs::stage::ALL {
        let name = format!("stage_ns/{stage}");
        let count = end.histograms.iter().find(|(n, _)| *n == name).map_or(0, |(_, h)| h.count());
        assert!(count > 0, "stage {stage} recorded no samples this run");
    }
    eprintln!(
        "[obs] all {} stages populated; {} flight entries; {} requests served",
        igcn_obs::stage::ALL.len(),
        flights.len(),
        stats.completed
    );

    let result = obj([
        (
            "note",
            JsonValue::Str(
                "recorded on a 1-CPU container: stage ratios are meaningful, absolute \
                 nanoseconds are wall-clock references only — re-record on real hardware \
                 for the serving story"
                    .to_string(),
            ),
        ),
        (
            "config",
            obj([
                ("seed", JsonValue::Uint(args.seed)),
                ("quick", JsonValue::Bool(args.quick)),
                ("requests_per_protocol", JsonValue::Uint(args.requests)),
                ("store_updates", JsonValue::Uint(store_updates)),
                ("shards", JsonValue::Uint(2)),
                ("elapsed_s", JsonValue::from_f64_rounded(elapsed)),
            ]),
        ),
        (
            "disabled_span",
            obj([
                ("ns_per_span", JsonValue::from_f64_rounded(overhead_ns)),
                ("probe_iters", JsonValue::Uint(probe_iters)),
                ("budget_ns", JsonValue::Uint(5)),
            ]),
        ),
        ("http_stages", phase_json(&http_before, &http_after)),
        ("binary_stages", phase_json(&http_after, &binary_after)),
        ("store_stages", phase_json(&store_before, &store_after)),
        (
            "flight_recorder",
            obj([
                ("entries", JsonValue::Uint(flights.len() as u64)),
                ("capacity", JsonValue::Uint(igcn_obs::FLIGHT_CAPACITY as u64)),
            ]),
        ),
        (
            "gateway",
            obj([
                ("admitted", JsonValue::Uint(stats.admitted)),
                ("completed", JsonValue::Uint(stats.completed)),
                ("protocol_errors", JsonValue::Uint(stats.protocol_errors)),
            ]),
        ),
    ]);
    let path = write_result("telemetry.json", result.encode_pretty().as_bytes());
    eprintln!("wrote {}", path.display());
}
