//! Trace-tree smoke + export tool: proves the hierarchical tracing
//! path end to end against a live sharded gateway.
//!
//! ```text
//! trace_tool [--quick] [--seed N] [--requests N]
//! ```
//!
//! One run asserts the whole trace contract (any violation panics —
//! the CI contract):
//!
//! * **capture** — a 4-shard fleet serves traced HTTP and binary
//!   requests with the tail-sampling threshold forced to zero, so
//!   every request's tree is retained.
//! * **listing** — `GET /traces` must list the driven trace ids with
//!   their status and span counts.
//! * **export** — `GET /trace/{id}` must serve Chrome trace-event
//!   JSON whose events include the full request skeleton (request,
//!   decode, queue_wait, dispatch, per-layer execute, halo exchange
//!   and merge) and at least one `shard_execute` event per shard,
//!   each on its own `tid` track; every non-root event's `parent_id`
//!   must resolve to another event in the same export.
//! * **flight** — `GET /debug/flight` must report the driven
//!   requests; unknown trace ids must 404.
//! * **drain** — after shutdown no in-progress trace may be leaked
//!   and the retention ring must hold its budget.

use std::collections::BTreeSet;
use std::sync::Arc;

use igcn_bench::write_result;
use igcn_core::{Accelerator, IGcnEngine};
use igcn_gateway::{BinaryClient, Gateway, GatewayConfig, HttpClient, InferReply};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::generate::HubIslandConfig;
use igcn_graph::SparseFeatures;
use igcn_shard::ShardedEngine;
use serde::json::{obj, JsonValue};

const DIM: usize = 12;
const SHARDS: usize = 4;

struct Args {
    quick: bool,
    seed: u64,
    requests: u64,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, seed: 17, requests: 0 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs an integer value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--seed" => args.seed = value("--seed"),
            "--requests" => args.requests = value("--requests"),
            other => {
                eprintln!(
                    "unknown flag {other:?}; usage: trace_tool [--quick] [--seed N] [--requests N]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.requests == 0 {
        args.requests = if args.quick { 6 } else { 24 };
    }
    args
}

fn engine_with_model(n: usize, seed: u64) -> IGcnEngine {
    let g = HubIslandConfig::new(n, 10).noise_fraction(0.03).generate(seed);
    let mut engine = IGcnEngine::builder(g.graph).build().expect("generated graphs are loop-free");
    let model = GnnModel::gcn(DIM, 9, 5);
    let weights = ModelWeights::glorot(&model, seed + 1);
    engine.prepare(&model, &weights).expect("weights match the model");
    engine
}

/// The names and (span_id, parent_id, shard-tag) triples of every
/// `ph:"X"` event in a Chrome export.
struct ChromeEvents {
    names: Vec<String>,
    span_ids: BTreeSet<u64>,
    parent_ids: Vec<u64>,
    shards: BTreeSet<u64>,
    tids: BTreeSet<u64>,
}

fn parse_chrome(body: &str) -> ChromeEvents {
    let doc = JsonValue::parse(body).expect("/trace/{id} body must parse as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("export must carry a traceEvents array");
    let mut out = ChromeEvents {
        names: Vec::new(),
        span_ids: BTreeSet::new(),
        parent_ids: Vec::new(),
        shards: BTreeSet::new(),
        tids: BTreeSet::new(),
    };
    for event in events {
        let ph = event.get("ph").and_then(JsonValue::as_str).unwrap_or_default();
        if ph != "X" {
            continue;
        }
        let name = event.get("name").and_then(JsonValue::as_str).expect("event has a name");
        let args = event.get("args").expect("event has args");
        let id = |key: &str| match args.get(key) {
            Some(&JsonValue::Uint(v)) => v,
            other => panic!("event {name} args.{key} must be an integer, got {other:?}"),
        };
        out.span_ids.insert(id("span_id"));
        out.parent_ids.push(id("parent_id"));
        if let Some(JsonValue::Str(shard)) = args.get("shard") {
            out.shards.insert(shard.parse().expect("shard tags are integers"));
        }
        if let Some(&JsonValue::Uint(tid)) = event.get("tid") {
            out.tids.insert(tid);
        }
        out.names.push(name.to_string());
    }
    out
}

fn count(events: &ChromeEvents, name: &str) -> usize {
    events.names.iter().filter(|n| *n == name).count()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();

    igcn_obs::set_enabled(true);
    // Tail sampling would keep only slow/errored trees; this tool
    // wants every tree, so the threshold drops to zero for the run.
    igcn_obs::trace::set_slow_threshold_ns(0);
    igcn_obs::trace::reset_traces();

    let reference = engine_with_model(300, args.seed);
    let fleet =
        ShardedEngine::from_engine(&reference, SHARDS).expect("fleet partitions into 4 shards");
    let layers = 2u64; // GnnModel::gcn is 2 layers
    let backend: Arc<dyn Accelerator> = Arc::new(fleet);
    let gateway = match Gateway::serve(backend, ("127.0.0.1", 0), GatewayConfig::from_env()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: gateway bind failed: {e}");
            std::process::exit(2);
        }
    };
    let addr = gateway.local_addr();
    let x = SparseFeatures::random(reference.graph().num_nodes(), DIM, 0.3, args.seed + 4);
    eprintln!("[trace] gateway on {addr}; driving {} traced requests...", args.requests);

    // Drive traced requests over both protocols.
    let mut http = HttpClient::connect(addr).expect("gateway accepts");
    let mut http_traces = Vec::new();
    for k in 0..args.requests {
        let trace = 0x7_1ACE_0000_0000 | (k + 1);
        let (reply, echoed) =
            http.infer_traced(k + 1, Some(10_000), &x, trace).expect("http request round-trips");
        assert!(matches!(reply, InferReply::Output { .. }), "unloaded gateway must serve");
        assert_eq!(echoed, trace, "http reply must echo the supplied trace id");
        http_traces.push(trace);
    }
    let mut binary = BinaryClient::connect(addr).expect("gateway accepts");
    let binary_trace = 0xB_1ACE_0000_0001u64;
    let (reply, echoed) =
        binary.infer_traced(1, Some(10_000), &x, binary_trace).expect("binary round-trips");
    assert!(matches!(reply, InferReply::Output { .. }), "unloaded gateway must serve");
    assert_eq!(echoed, binary_trace, "binary reply must echo the supplied trace id");

    // Listing: every driven trace id shows up, status ok.
    let (status, listing, _) = http.get_traced("/traces", 0).expect("/traces round-trips");
    assert_eq!(status, 200, "/traces must serve 200");
    let doc = JsonValue::parse(&listing).expect("/traces body must parse as JSON");
    let retained = doc
        .get("retained")
        .and_then(JsonValue::as_array)
        .expect("/traces body must carry a retained array");
    let listed: Vec<&str> = retained
        .iter()
        .map(|row| {
            assert_eq!(
                row.get("status").and_then(JsonValue::as_str),
                Some("ok"),
                "every driven request completed, so every retained trace must be ok"
            );
            row.get("trace_id").and_then(JsonValue::as_str).expect("rows carry trace_id")
        })
        .collect();
    for trace in http_traces.iter().chain([&binary_trace]) {
        let id = format!("{trace:016x}");
        assert!(listed.contains(&id.as_str()), "/traces must list driven trace {id}");
    }
    let retention = igcn_obs::trace::retention();
    assert!(retained.len() <= retention, "retained {} > budget {retention}", retained.len());

    // Export: the last HTTP trace, straight from the wire.
    let probe = *http_traces.last().expect("at least one request");
    let (status, body, _) =
        http.get_traced(&format!("/trace/{probe:016x}"), 0).expect("/trace/{id} round-trips");
    assert_eq!(status, 200, "/trace/{{id}} must serve 200 for a retained trace");
    let events = parse_chrome(&body);
    for name in [
        "request",
        igcn_obs::stage::GATEWAY_DECODE_HTTP,
        igcn_obs::stage::QUEUE_WAIT,
        igcn_obs::stage::DISPATCH,
        igcn_obs::stage::LAYER_EXECUTE,
        igcn_obs::stage::HALO_EXCHANGE,
        igcn_obs::stage::HALO_MERGE,
        "shard_execute",
    ] {
        assert!(count(&events, name) > 0, "export is missing {name:?} events");
    }
    assert_eq!(
        count(&events, igcn_obs::stage::LAYER_EXECUTE) as u64,
        layers,
        "one layer_execute span per layer"
    );
    assert_eq!(
        count(&events, "shard_execute") as u64,
        layers * SHARDS as u64,
        "one shard_execute span per shard per layer"
    );
    assert_eq!(
        events.shards,
        (0..SHARDS as u64).collect::<BTreeSet<_>>(),
        "shard_execute spans must cover all {SHARDS} shards"
    );
    assert!(
        (1..=SHARDS as u64).all(|t| events.tids.contains(&t)),
        "each shard must render on its own Chrome track (tid = shard + 1), got {:?}",
        events.tids
    );
    // Tree integrity as exported: every non-root parent id resolves.
    let roots = events.parent_ids.iter().filter(|&&p| p == 0).count();
    assert_eq!(roots, 1, "exactly one root event, got {roots}");
    for &parent in &events.parent_ids {
        assert!(
            parent == 0 || events.span_ids.contains(&parent),
            "dangling parent_id {parent} in export"
        );
    }

    // The binary trace exports too, with the binary decode stage.
    let (status, body, _) = http
        .get_traced(&format!("/trace/{binary_trace:016x}"), 0)
        .expect("/trace/{id} round-trips");
    assert_eq!(status, 200, "binary trace must be retained");
    let binary_events = parse_chrome(&body);
    assert!(
        count(&binary_events, igcn_obs::stage::GATEWAY_DECODE_BINARY) > 0,
        "binary trace must carry the binary decode stage"
    );

    // Unknown ids 404; the flight recorder saw the requests.
    let (status, _, _) =
        http.get_traced("/trace/00000000000000aa", 0).expect("unknown id round-trips");
    assert_eq!(status, 404, "an unretained trace id must 404");
    let (status, flight, _) = http.get_traced("/debug/flight", 0).expect("/debug/flight serves");
    assert_eq!(status, 200, "/debug/flight must serve 200");
    let doc = JsonValue::parse(&flight).expect("/debug/flight body must parse as JSON");
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("/debug/flight carries an entries array");
    assert!(entries.len() as u64 >= args.requests, "flight recorder must hold the driven requests");

    let stats = gateway.stats();
    gateway.shutdown();

    // Drain: nothing in progress, retention honoured.
    assert_eq!(igcn_obs::trace::in_progress_count(), 0, "shutdown leaked in-progress traces");
    assert!(igcn_obs::trace::retained_count() <= retention, "retention budget violated");
    eprintln!(
        "[trace] {} traces retained, probe export carried {} events across {} tracks",
        igcn_obs::trace::retained_count(),
        events.names.len(),
        events.tids.len()
    );

    let result = obj([
        (
            "note",
            JsonValue::Str(
                "trace-tree smoke: structural assertions all passed; counts are the \
                 interesting part, timings are not recorded here"
                    .to_string(),
            ),
        ),
        (
            "config",
            obj([
                ("seed", JsonValue::Uint(args.seed)),
                ("quick", JsonValue::Bool(args.quick)),
                ("requests", JsonValue::Uint(args.requests)),
                ("shards", JsonValue::Uint(SHARDS as u64)),
            ]),
        ),
        (
            "probe_trace",
            obj([
                ("trace_id", JsonValue::Str(format!("{probe:016x}"))),
                ("events", JsonValue::Uint(events.names.len() as u64)),
                ("layer_execute", JsonValue::Uint(count(&events, "layer_execute") as u64)),
                ("shard_execute", JsonValue::Uint(count(&events, "shard_execute") as u64)),
                ("tracks", JsonValue::Uint(events.tids.len() as u64)),
            ]),
        ),
        (
            "gateway",
            obj([
                ("admitted", JsonValue::Uint(stats.admitted)),
                ("completed", JsonValue::Uint(stats.completed)),
                ("inflight_after_drain", JsonValue::Uint(stats.inflight)),
            ]),
        ),
        ("retained", JsonValue::Uint(igcn_obs::trace::retained_count() as u64)),
        ("retention_budget", JsonValue::Uint(retention as u64)),
    ]);
    let path = write_result("trace_smoke.json", result.encode_pretty().as_bytes());
    eprintln!("wrote {}", path.display());
}
