//! Markdown table rendering and CSV export.

/// A simple column-aligned table that renders to markdown and CSV.
///
/// # Example
///
/// ```
/// use igcn_bench::Table;
///
/// let mut t = Table::new(vec!["dataset", "latency (µs)"]);
/// t.row(vec!["Cora".to_string(), "1.3".to_string()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| Cora"));
/// assert!(t.to_csv().starts_with("dataset,latency (µs)\n"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (comma-separated, no quoting — harness cells never
    /// contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with engineering-style precision matching the paper's
/// tables (3 significant digits, scientific for large magnitudes).
pub fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-2..1e5).contains(&a) {
        format!("{v:.2e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(1.234), "1.23");
        assert_eq!(fmt_sig(12.34), "12.3");
        assert_eq!(fmt_sig(123.4), "123");
        assert_eq!(fmt_sig(3.0e6), "3.00e6");
        assert_eq!(fmt_sig(0.001), "1.00e-3");
    }
}
