//! Island Consumer layer-execution bench on the vendored harness.
//!
//! Measures the software island-granular layer execution with and
//! without redundancy removal, across pre-aggregation window widths
//! `k`, against the accounting-only pass, and — the PR-3 headline —
//! legacy vs physical-layout execution (the ablations behind Figure 10,
//! the §3.3.1 design choice and the locality claim).
//!
//! Formerly a criterion bench (gated out of hermetic builds); now a
//! plain `harness = false` main over `igcn_bench::harness`.
//! Run: `cargo bench -p igcn-bench --bench consumer`

use igcn_bench::table::fmt_sig;
use igcn_bench::{BenchHarness, Table};
use igcn_core::consumer::hotpath::{self, LayerScratch};
use igcn_core::consumer::{IslandConsumer, LayerInput};
use igcn_core::{islandize, ConsumerConfig, IslandLayout, IslandizationConfig};
use igcn_gnn::Activation;
use igcn_graph::generate::HubIslandConfig;
use igcn_graph::SparseFeatures;
use igcn_linalg::{DenseMatrix, GcnNormalization};

fn main() {
    let harness = BenchHarness::new(2, 10);
    let g = HubIslandConfig::new(4_000, 160).island_density(0.5).generate(6);
    let partition = islandize(&g.graph, &IslandizationConfig::default());
    let x = SparseFeatures::random(4_000, 64, 0.05, 7);
    let w = DenseMatrix::from_vec(64, 16, vec![0.1f32; 64 * 16]);
    let norm = GcnNormalization::symmetric(&g.graph);

    let mut table = Table::new(vec!["case", "median (ms)", "p95 (ms)"]);
    let mut record = |label: String, stats: igcn_bench::BenchStats| {
        table.row(vec![label, fmt_sig(stats.median_s() * 1e3), fmt_sig(stats.p95_s() * 1e3)]);
    };

    for redundancy in [true, false] {
        let cfg = ConsumerConfig::default().with_redundancy_removal(redundancy);
        let consumer = IslandConsumer::new(&g.graph, &partition, cfg);
        let label = if redundancy { "layer/with_reuse" } else { "layer/no_reuse" };
        let stats = harness
            .run(|| consumer.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::Relu));
        record(label.to_string(), stats);
    }
    for k in [2usize, 4, 8] {
        let cfg = ConsumerConfig::default().with_k(k);
        let consumer = IslandConsumer::new(&g.graph, &partition, cfg);
        let stats = harness
            .run(|| consumer.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::Relu));
        record(format!("layer/k={k}"), stats);
    }
    {
        let consumer = IslandConsumer::new(&g.graph, &partition, ConsumerConfig::default());
        let stats = harness.run(|| consumer.account_layer(LayerInput::Sparse(&x), 16, &norm));
        record("account_only".to_string(), stats);
    }
    {
        // The zero-allocation hot path over the physical layout.
        let cfg = ConsumerConfig::default();
        let layout = IslandLayout::new(&g.graph, &partition, cfg.num_pes);
        let hot_norm = GcnNormalization::symmetric(layout.graph());
        let gathered = x.gather_rows(layout.gather_order());
        let mut scratch = LayerScratch::new();
        let mut out = vec![0.0f32; g.graph.num_nodes() * 16];
        let stats = harness.run(|| {
            hotpath::execute_layer(
                &layout,
                cfg,
                LayerInput::Sparse(&gathered),
                &w,
                &hot_norm,
                Activation::Relu,
                &mut scratch,
                &mut out,
            )
        });
        record("layer/hotpath".to_string(), stats);
    }

    println!("\n# Island Consumer layer execution (4000 nodes, 64→16)\n");
    println!("{}", table.to_markdown());
}
