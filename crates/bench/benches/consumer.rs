//! Criterion bench: Island Consumer layer execution.
//!
//! Measures the software island-granular layer execution with and without
//! redundancy removal, and across pre-aggregation window widths `k` — the
//! ablations behind Figure 10 and the §3.3.1 design choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use igcn_core::consumer::{IslandConsumer, LayerInput};
use igcn_core::{islandize, ConsumerConfig, IslandizationConfig};
use igcn_gnn::Activation;
use igcn_graph::generate::HubIslandConfig;
use igcn_graph::SparseFeatures;
use igcn_linalg::{DenseMatrix, GcnNormalization};

fn bench_consumer(c: &mut Criterion) {
    let mut group = c.benchmark_group("island_consumer");
    group.sample_size(20);
    let g = HubIslandConfig::new(4_000, 160).island_density(0.5).generate(6);
    let partition = islandize(&g.graph, &IslandizationConfig::default());
    let x = SparseFeatures::random(4_000, 64, 0.05, 7);
    let w = DenseMatrix::from_vec(64, 16, vec![0.1f32; 64 * 16]);
    let norm = GcnNormalization::symmetric(&g.graph);

    for redundancy in [true, false] {
        let cfg = ConsumerConfig::default().with_redundancy_removal(redundancy);
        let consumer = IslandConsumer::new(&g.graph, &partition, cfg);
        let label = if redundancy { "with_reuse" } else { "no_reuse" };
        group.bench_function(BenchmarkId::new("layer", label), |b| {
            b.iter(|| consumer.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::Relu))
        });
    }
    for k in [2usize, 4, 8] {
        let cfg = ConsumerConfig::default().with_k(k);
        let consumer = IslandConsumer::new(&g.graph, &partition, cfg);
        group.bench_function(BenchmarkId::new("k", k), |b| {
            b.iter(|| consumer.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::Relu))
        });
    }
    group.bench_function("account_only", |b| {
        let consumer = IslandConsumer::new(&g.graph, &partition, ConsumerConfig::default());
        b.iter(|| consumer.account_layer(LayerInput::Sparse(&x), 16, &norm))
    });
    group.finish();
}

criterion_group!(benches, bench_consumer);
criterion_main!(benches);
