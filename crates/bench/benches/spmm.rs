//! The four SpMM dataflows of Figure 2 on the vendored harness.
//!
//! Same product, four loop orders — the software throughput difference
//! echoes the locality argument of §2.2 (pull re-touches B rows, push
//! re-touches result rows).
//!
//! Formerly a criterion bench (gated out of hermetic builds); now a
//! plain `harness = false` main over `igcn_bench::harness`.
//! Run: `cargo bench -p igcn-bench --bench spmm`

use igcn_bench::table::fmt_sig;
use igcn_bench::{BenchHarness, Table};
use igcn_graph::generate::HubIslandConfig;
use igcn_linalg::spmm::SpmmMethod;
use igcn_linalg::{CsrMatrix, DenseMatrix, GcnNormalization};

fn main() {
    let harness = BenchHarness::new(1, 7);
    let mut table = Table::new(vec!["dataflow", "median (ms)", "p95 (ms)"]);
    let mut record = |label: String, stats: igcn_bench::BenchStats| {
        table.row(vec![label, fmt_sig(stats.median_s() * 1e3), fmt_sig(stats.p95_s() * 1e3)]);
    };

    let g = HubIslandConfig::new(4_000, 160).generate(3);
    let norm = GcnNormalization::symmetric(&g.graph);
    let a = norm.to_explicit_matrix(&g.graph);
    let b = DenseMatrix::from_vec(4_000, 32, vec![0.5f32; 4_000 * 32]);
    for method in SpmmMethod::ALL {
        let stats = harness.run(|| method.run(&a, &b));
        record(method.name().to_string(), stats);
    }

    // Sparse-input first-layer combination X·W.
    let x = igcn_graph::SparseFeatures::random(4_000, 512, 0.01, 5);
    let xm = CsrMatrix::from(&x);
    let w = CsrMatrix::from_triplets(
        512,
        16,
        &(0..512u32).flat_map(|r| (0..16u32).map(move |c| (r, c, 0.01))).collect::<Vec<_>>(),
    );
    let stats = harness.run(|| igcn_linalg::spmm::sparse_sparse_dense(&xm, &w));
    record("sparse_x_times_w".to_string(), stats);

    println!("\n# SpMM dataflows (4000 nodes, width 32)\n");
    println!("{}", table.to_markdown());
}
