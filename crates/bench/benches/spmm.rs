//! Criterion bench: the four SpMM dataflows of Figure 2.
//!
//! Same product, four loop orders — the software throughput difference
//! echoes the locality argument of §2.2 (pull re-touches B rows, push
//! re-touches result rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use igcn_graph::generate::HubIslandConfig;
use igcn_linalg::spmm::SpmmMethod;
use igcn_linalg::{CsrMatrix, DenseMatrix, GcnNormalization};

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(20);
    let g = HubIslandConfig::new(4_000, 160).generate(3);
    let norm = GcnNormalization::symmetric(&g.graph);
    let a = norm.to_explicit_matrix(&g.graph);
    let b = DenseMatrix::from_vec(4_000, 32, vec![0.5f32; 4_000 * 32]);
    for method in SpmmMethod::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |bench, m| bench.iter(|| m.run(&a, &b)),
        );
    }
    group.finish();
}

fn bench_sparse_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_sparse_input");
    group.sample_size(20);
    let g = HubIslandConfig::new(4_000, 160).generate(4);
    let x = igcn_graph::SparseFeatures::random(4_000, 512, 0.01, 5);
    let xm = CsrMatrix::from(&x);
    let w = CsrMatrix::from_triplets(
        512,
        16,
        &(0..512u32)
            .flat_map(|r| (0..16u32).map(move |c| (r, c, 0.01)))
            .collect::<Vec<_>>(),
    );
    group.bench_function("sparse_x_times_w", |bench| {
        bench.iter(|| igcn_linalg::spmm::sparse_sparse_dense(&xm, &w))
    });
    let _ = g;
    group.finish();
}

criterion_group!(benches, bench_spmm, bench_sparse_sparse);
criterion_main!(benches);
