//! Criterion bench: reordering-algorithm cost (Figure 12's offline side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use igcn_graph::generate::HubIslandConfig;
use igcn_reorder::{figure12_baselines, Rcm, Reorderer, SlashBurn};

fn bench_reorderers(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder");
    group.sample_size(15);
    let g = HubIslandConfig::new(3_000, 120).generate(8);
    for r in figure12_baselines() {
        group.bench_function(BenchmarkId::from_parameter(r.name()), |b| {
            b.iter(|| r.reorder(&g.graph))
        });
    }
    group.bench_function("slashburn", |b| {
        let r = SlashBurn::default();
        b.iter(|| r.reorder(&g.graph))
    });
    group.bench_function("rcm", |b| b.iter(|| Rcm.reorder(&g.graph)));
    group.finish();
}

criterion_group!(benches, bench_reorderers);
criterion_main!(benches);
