//! Reordering-algorithm cost bench (Figure 12's offline side) on the
//! vendored harness.
//!
//! Formerly a criterion bench (gated out of hermetic builds); now a
//! plain `harness = false` main over `igcn_bench::harness`.
//! Run: `cargo bench -p igcn-bench --bench reorder`

use igcn_bench::table::fmt_sig;
use igcn_bench::{BenchHarness, Table};
use igcn_graph::generate::HubIslandConfig;
use igcn_reorder::{figure12_baselines, Rcm, Reorderer, SlashBurn};

fn main() {
    let harness = BenchHarness::new(1, 7);
    let g = HubIslandConfig::new(3_000, 120).generate(8);
    let mut table = Table::new(vec!["reorderer", "median (ms)", "p95 (ms)"]);
    let mut record = |label: String, stats: igcn_bench::BenchStats| {
        table.row(vec![label, fmt_sig(stats.median_s() * 1e3), fmt_sig(stats.p95_s() * 1e3)]);
    };

    for r in figure12_baselines() {
        let stats = harness.run(|| r.reorder(&g.graph));
        record(r.name().to_string(), stats);
    }
    {
        let r = SlashBurn::default();
        let stats = harness.run(|| r.reorder(&g.graph));
        record("slashburn".to_string(), stats);
    }
    {
        let stats = harness.run(|| Rcm.reorder(&g.graph));
        record("rcm".to_string(), stats);
    }

    println!("\n# Reordering-algorithm cost (3000 nodes)\n");
    println!("{}", table.to_markdown());
}
