//! Island Locator throughput bench on the vendored harness.
//!
//! Measures the software islandization pass (Algorithms 1–4 under
//! deterministic lock-step) across graph sizes, community strengths and
//! TP-BFS engine counts — the cost the hardware pays once per graph and
//! overlaps with layer 0.
//!
//! Formerly a criterion bench (gated out of hermetic builds); now a
//! plain `harness = false` main over `igcn_bench::harness`.
//! Run: `cargo bench -p igcn-bench --bench islandization`

use igcn_bench::table::fmt_sig;
use igcn_bench::{BenchHarness, Table};
use igcn_core::{islandize, IslandizationConfig};
use igcn_graph::generate::HubIslandConfig;

fn main() {
    let harness = BenchHarness::new(1, 7);
    let mut table = Table::new(vec!["case", "median (ms)", "p95 (ms)"]);
    let mut record = |label: String, stats: igcn_bench::BenchStats| {
        table.row(vec![label, fmt_sig(stats.median_s() * 1e3), fmt_sig(stats.p95_s() * 1e3)]);
    };

    for &n in &[1_000usize, 4_000, 16_000] {
        let g = HubIslandConfig::new(n, n / 25).noise_fraction(0.02).generate(7);
        let stats = harness.run(|| islandize(&g.graph, &IslandizationConfig::default()));
        record(format!("hub_island/n={n}"), stats);
    }
    // Community strength sweep at fixed size.
    for &noise in &[0.0f64, 0.1, 0.3] {
        let g = HubIslandConfig::new(4_000, 160).noise_fraction(noise).generate(9);
        let stats = harness.run(|| islandize(&g.graph, &IslandizationConfig::default()));
        record(format!("noise={noise:.1}"), stats);
    }
    // TP-BFS engine scaling (modelled lock-step parallelism).
    let g = HubIslandConfig::new(8_000, 320).generate(11);
    for &engines in &[1usize, 8, 64] {
        let cfg = IslandizationConfig::default().with_engines(engines);
        let stats = harness.run(|| islandize(&g.graph, &cfg));
        record(format!("tpbfs_engines={engines}"), stats);
    }

    println!("\n# Island Locator throughput\n");
    println!("{}", table.to_markdown());
}
