//! Criterion bench: Island Locator throughput.
//!
//! Measures the software islandization pass (Algorithms 1–4 under
//! deterministic lock-step) across graph sizes and community strengths —
//! the cost the hardware pays once per graph and overlaps with layer 0.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use igcn_core::{islandize, IslandizationConfig};
use igcn_graph::generate::HubIslandConfig;

fn bench_islandization(c: &mut Criterion) {
    let mut group = c.benchmark_group("islandization");
    group.sample_size(20);
    for &n in &[1_000usize, 4_000, 16_000] {
        let g = HubIslandConfig::new(n, n / 25).noise_fraction(0.02).generate(7);
        group.bench_with_input(BenchmarkId::new("hub_island", n), &g.graph, |b, graph| {
            b.iter(|| islandize(graph, &IslandizationConfig::default()))
        });
    }
    // Community strength sweep at fixed size.
    for &noise in &[0.0f64, 0.1, 0.3] {
        let g = HubIslandConfig::new(4_000, 160).noise_fraction(noise).generate(9);
        group.bench_with_input(
            BenchmarkId::new("noise", format!("{noise:.1}")),
            &g.graph,
            |b, graph| b.iter(|| islandize(graph, &IslandizationConfig::default())),
        );
    }
    group.finish();
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpbfs_engines");
    group.sample_size(20);
    let g = HubIslandConfig::new(8_000, 320).generate(11);
    for &engines in &[1usize, 8, 64] {
        let cfg = IslandizationConfig::default().with_engines(engines);
        group.bench_with_input(BenchmarkId::from_parameter(engines), &cfg, |b, cfg| {
            b.iter(|| islandize(&g.graph, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_islandization, bench_engine_scaling);
criterion_main!(benches);
