//! Row-major dense matrices.

use serde::{Deserialize, Serialize};

/// A row-major dense `f32` matrix.
///
/// Used for feature matrices after the first combination (`X·W` is dense),
/// for weight matrices, and as the output of every SpMM dataflow.
///
/// # Example
///
/// ```
/// use igcn_linalg::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(0, 2, 5.0);
/// assert_eq!(m.get(0, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 0.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes the matrix in place to `rows × cols`, reusing the
    /// existing buffer (no allocation once the buffer has grown to its
    /// steady-state size). The contents are unspecified afterwards —
    /// callers are expected to overwrite every row, as the islandized
    /// layer execution does.
    pub fn resize_in_place(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// The full row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The full mutable row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dense-dense product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Scales every element of row `r` by `s`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn scale_row(&mut self, r: usize, s: f32) {
        for v in self.row_mut(r) {
            *v *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Maximum absolute elementwise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::zeros(2, 2);
        assert_eq!(m.get(1, 1), 0.0);
        m.set(1, 0, 3.5);
        assert_eq!(m.get(1, 0), 3.5);
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[6.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scale_and_map() {
        let mut m = DenseMatrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        m.scale_row(0, 2.0);
        assert_eq!(m.as_slice(), &[2.0, -4.0, 6.0]);
        m.map_inplace(|v| v.max(0.0));
        assert_eq!(m.as_slice(), &[2.0, 0.0, 6.0]);
    }

    #[test]
    fn diff_and_norm() {
        let a = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        let b = DenseMatrix::from_vec(1, 2, vec![3.0, 4.5]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_wrong_len_panics() {
        let _ = DenseMatrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
