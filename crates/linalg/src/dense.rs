//! Row-major dense matrices.

use serde::{Deserialize, Serialize};

/// A row-major dense `f32` matrix.
///
/// Used for feature matrices after the first combination (`X·W` is dense),
/// for weight matrices, and as the output of every SpMM dataflow.
///
/// # Example
///
/// ```
/// use igcn_linalg::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(0, 2, 5.0);
/// assert_eq!(m.get(0, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 0.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes the matrix in place to `rows × cols`, reusing the
    /// existing buffer (no allocation once the buffer has grown to its
    /// steady-state size). The contents are unspecified afterwards —
    /// callers are expected to overwrite every row, as the islandized
    /// layer execution does.
    pub fn resize_in_place(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// The full row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The full mutable row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dense-dense product `self × rhs` through the cache-blocked SIMD
    /// GEMM ([`crate::kernels::gemm_blocked_into`]).
    ///
    /// Bit-identical to the historical branchy triple loop for finite
    /// operands: the old `a == 0.0` skip only elided `±0.0` products,
    /// which can never change an accumulator's bits (pinned by
    /// `matmul_agrees_with_sparse_aware_bitwise`). Inputs with
    /// infinities or NaNs in the *rhs* rows behind a zero lhs entry
    /// should use [`DenseMatrix::matmul_sparse_aware`], which preserves
    /// the skip.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Allocation-free `out = self × rhs`: resizes `out` in place
    /// (reusing its buffer at steady state — e.g. an engine scratch
    /// slab) and runs the cache-blocked SIMD GEMM into it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        out.resize_in_place(self.rows, rhs.cols);
        crate::kernels::gemm_blocked_into(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
    }

    /// Sparse-aware dense product: the historical scalar triple loop
    /// with the `a == 0.0` row-entry skip. Same bits as
    /// [`DenseMatrix::matmul`] for finite operands (zero products never
    /// flip accumulator bits); prefer it only when the lhs is mostly
    /// zeros **and** the rhs may carry non-finite values the skip must
    /// shield.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_sparse_aware(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Scales every element of row `r` by `s` (SIMD elementwise —
    /// bit-identical to the scalar loop).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn scale_row(&mut self, r: usize, s: f32) {
        crate::kernels::scale_f32(self.row_mut(r), s);
    }

    /// Scales every element of the whole matrix by `s` (SIMD
    /// elementwise) — the vectorized fast path for what
    /// [`DenseMatrix::map_inplace`] with a multiply closure would do.
    pub fn scale_inplace(&mut self, s: f32) {
        crate::kernels::scale_f32(&mut self.data, s);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Maximum absolute elementwise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::zeros(2, 2);
        assert_eq!(m.get(1, 1), 0.0);
        m.set(1, 0, 3.5);
        assert_eq!(m.get(1, 0), 3.5);
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[6.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scale_and_map() {
        let mut m = DenseMatrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        m.scale_row(0, 2.0);
        assert_eq!(m.as_slice(), &[2.0, -4.0, 6.0]);
        m.map_inplace(|v| v.max(0.0));
        assert_eq!(m.as_slice(), &[2.0, 0.0, 6.0]);
    }

    #[test]
    fn diff_and_norm() {
        let a = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        let b = DenseMatrix::from_vec(1, 2, vec![3.0, 4.5]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_wrong_len_panics() {
        let _ = DenseMatrix::from_vec(2, 2, vec![0.0; 3]);
    }

    fn pseudo_matrix(seed: u64, rows: usize, cols: usize, zero_every: u64) -> DenseMatrix {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if zero_every != 0 && s.is_multiple_of(zero_every) {
                    0.0
                } else {
                    ((s >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 1.0
                }
            })
            .collect();
        DenseMatrix::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_agrees_with_sparse_aware_bitwise() {
        // The zero-skip regression pin: the blocked SIMD path and the
        // historical branchy loop must agree bit for bit, including on
        // inputs riddled with exact zeros and with widths off the
        // 8-lane grid.
        for &(m, k, n, zero_every) in
            &[(5, 7, 9, 3), (8, 16, 8, 2), (1, 1, 1, 0), (13, 300, 19, 4), (4, 32, 33, 5)]
        {
            let a = pseudo_matrix(m as u64 * 31 + n as u64, m, k, zero_every);
            let b = pseudo_matrix(k as u64 * 17 + 5, k, n, 0);
            let fast = a.matmul(&b);
            let skip = a.matmul_sparse_aware(&b);
            assert_eq!(fast.rows(), skip.rows());
            assert_eq!(fast.cols(), skip.cols());
            for (x, y) in fast.as_slice().iter().zip(skip.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} zero_every={zero_every}");
            }
        }
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = pseudo_matrix(1, 6, 10, 3);
        let b = pseudo_matrix(2, 10, 4, 0);
        let mut out = DenseMatrix::zeros(6, 4);
        let cap = out.data.capacity();
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data.capacity(), cap, "steady-state matmul_into must not reallocate");
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn scale_row_matches_scalar_loop_bitwise() {
        let mut simd = pseudo_matrix(3, 4, 37, 5);
        let mut scalar = simd.clone();
        for r in 0..4 {
            let s = 0.1 * (r as f32 + 1.0);
            simd.scale_row(r, s);
            for v in scalar.row_mut(r) {
                *v *= s;
            }
        }
        for (x, y) in simd.as_slice().iter().zip(scalar.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        simd.scale_inplace(-2.5);
        scalar.map_inplace(|v| v * -2.5);
        for (x, y) in simd.as_slice().iter().zip(scalar.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
