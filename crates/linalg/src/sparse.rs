//! Weighted CSR sparse matrices.

use serde::{Deserialize, Serialize};

use igcn_graph::{CsrGraph, SparseFeatures};

use crate::dense::DenseMatrix;

/// A weighted sparse matrix in compressed-sparse-row form.
///
/// The adjacency operand `Ã` of Equation 1 and the sparse feature matrix
/// `X` of the first layer both take this form.
///
/// # Example
///
/// ```
/// use igcn_linalg::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 2, 4.0)]);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!((r as usize) < rows, "row {r} out of range");
            assert!((c as usize) < cols, "col {c} out of range");
        }
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in sorted {
            if last == Some((r, c)) {
                *values.last_mut().expect("non-empty after push") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r as usize + 1] += 1;
                last = Some((r, c));
            }
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Builds the binary adjacency matrix of a graph (all stored edges get
    /// value 1.0), shape `n × n`.
    pub fn binary_adjacency(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let row_ptr = graph.row_ptr().to_vec();
        let col_idx = graph.col_idx().to_vec();
        let values = vec![1.0f32; col_idx.len()];
        CsrMatrix { rows: n, cols: n, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored entries of row `r` as parallel `(columns, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        assert!(r < self.rows, "row {r} out of bounds");
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Raw row-pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw value array parallel to [`CsrMatrix::col_idx`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Transposed copy (CSC view materialised as CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((c, r as u32, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out.set(r, c as usize, v);
            }
        }
        out
    }
}

impl From<&SparseFeatures> for CsrMatrix {
    fn from(x: &SparseFeatures) -> Self {
        CsrMatrix {
            rows: x.num_rows(),
            cols: x.num_cols(),
            row_ptr: x.row_ptr().to_vec(),
            col_idx: x.col_idx().to_vec(),
            values: x.values().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]);
        assert_eq!(m.nnz(), 1);
        let (_, vals) = m.row(0);
        assert_eq!(vals, &[3.0]);
    }

    #[test]
    fn rows_are_sorted() {
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 1, 2.0)]);
        let (cols, _) = m.row(0);
        assert_eq!(cols, &[1, 3]);
    }

    #[test]
    fn binary_adjacency_matches_graph() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let m = CsrMatrix::binary_adjacency(&g);
        assert_eq!(m.nnz(), 4);
        assert!(m.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, 7.0)]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn to_dense_matches() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 4.0)]);
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 3.0);
        assert_eq!(d.get(1, 0), 4.0);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn from_sparse_features() {
        let x = SparseFeatures::from_rows(2, 3, vec![vec![(1, 2.0)], vec![(0, 1.0)]]);
        let m = CsrMatrix::from(&x);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_triplet_panics() {
        let _ = CsrMatrix::from_triplets(1, 1, &[(0, 5, 1.0)]);
    }
}
