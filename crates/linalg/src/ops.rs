//! Arithmetic-operation and traffic accounting.

use serde::{Deserialize, Serialize};

/// Counts of arithmetic operations performed by a kernel.
///
/// The pruning-rate results of Figure 10 and the latency models of the
/// accelerator simulators are all derived from these counters, so every
/// SpMM dataflow and the island consumer report them exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounter {
    /// Fused multiply-accumulate operations (one multiply + one add).
    pub macs: u64,
    /// Standalone additions (vector accumulation during aggregation).
    pub adds: u64,
    /// Standalone subtractions (pre-aggregation reuse corrections).
    pub subs: u64,
    /// Standalone multiplies (scaling by normalisation factors).
    pub muls: u64,
}

impl OpCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total scalar operations, counting a MAC as one fused op (the unit
    /// the paper's MAC arrays execute per cycle).
    pub fn total(&self) -> u64 {
        self.macs + self.adds + self.subs + self.muls
    }

    /// Adds another counter's tallies into this one.
    pub fn merge(&mut self, other: &OpCounter) {
        self.macs += other.macs;
        self.adds += other.adds;
        self.subs += other.subs;
        self.muls += other.muls;
    }
}

impl std::ops::Add for OpCounter {
    type Output = OpCounter;

    fn add(self, rhs: OpCounter) -> OpCounter {
        OpCounter {
            macs: self.macs + rhs.macs,
            adds: self.adds + rhs.adds,
            subs: self.subs + rhs.subs,
            muls: self.muls + rhs.muls,
        }
    }
}

impl std::ops::AddAssign for OpCounter {
    fn add_assign(&mut self, rhs: OpCounter) {
        self.merge(&rhs);
    }
}

impl std::fmt::Display for OpCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "macs={} adds={} subs={} muls={} (total {})",
            self.macs,
            self.adds,
            self.subs,
            self.muls,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_fields() {
        let c = OpCounter { macs: 1, adds: 2, subs: 3, muls: 4 };
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn add_and_merge_agree() {
        let a = OpCounter { macs: 1, adds: 1, subs: 0, muls: 0 };
        let b = OpCounter { macs: 2, adds: 0, subs: 1, muls: 5 };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, a + b);
        let mut n = a;
        n += b;
        assert_eq!(n, m);
    }

    #[test]
    fn display_nonempty() {
        let c = OpCounter::default();
        assert!(c.to_string().contains("total 0"));
    }
}
