//! The four SpMM dataflows of Figure 2.
//!
//! All four compute the same product `A × B` (`A` sparse, `B` dense) and
//! return identical results up to floating-point reassociation; they differ
//! in *loop order* and therefore in data-access pattern — which is exactly
//! the distinction §2.2 of the paper draws between PULL- and PUSH-based
//! aggregation:
//!
//! | function | paper name | outer loop | locality problem |
//! |---|---|---|---|
//! | [`pull_row_wise`] | PULL-Row-Wise (Fig 2-b1) | rows of `A` | random rows of `B` (XW) |
//! | [`pull_inner_product`] | PULL-Inner-Product (Fig 2-b2) | rows of `A`, per channel | random columns of `B` |
//! | [`push_column_wise`] | PUSH-Column-Wise (Fig 2-c1) | channels of `B` | random rows of result, `A` re-read per channel |
//! | [`push_outer_product`] | PUSH-Outer-Product (Fig 2-c2) | columns of `A` | random rows of result |

use serde::{Deserialize, Serialize};

use crate::dense::DenseMatrix;
use crate::ops::OpCounter;
use crate::sparse::CsrMatrix;

/// Identifies one of the four SpMM dataflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpmmMethod {
    /// PULL-Row-Wise (Figure 2-b1).
    PullRowWise,
    /// PULL-Inner-Product (Figure 2-b2).
    PullInnerProduct,
    /// PUSH-Column-Wise (Figure 2-c1).
    PushColumnWise,
    /// PUSH-Outer-Product (Figure 2-c2).
    PushOuterProduct,
}

impl SpmmMethod {
    /// All four dataflows.
    pub const ALL: [SpmmMethod; 4] = [
        SpmmMethod::PullRowWise,
        SpmmMethod::PullInnerProduct,
        SpmmMethod::PushColumnWise,
        SpmmMethod::PushOuterProduct,
    ];

    /// The paper's name for the dataflow.
    pub fn name(self) -> &'static str {
        match self {
            SpmmMethod::PullRowWise => "PULL-Row-Wise",
            SpmmMethod::PullInnerProduct => "PULL-Inner-Product",
            SpmmMethod::PushColumnWise => "PUSH-Column-Wise",
            SpmmMethod::PushOuterProduct => "PUSH-Outer-Product",
        }
    }

    /// Runs the dataflow.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn run(self, a: &CsrMatrix, b: &DenseMatrix) -> (DenseMatrix, OpCounter) {
        match self {
            SpmmMethod::PullRowWise => pull_row_wise(a, b),
            SpmmMethod::PullInnerProduct => pull_inner_product(a, b),
            SpmmMethod::PushColumnWise => push_column_wise(a, b),
            SpmmMethod::PushOuterProduct => push_outer_product(a, b),
        }
    }
}

impl std::fmt::Display for SpmmMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn check_dims(a: &CsrMatrix, b: &DenseMatrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimension mismatch: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

/// PULL-Row-Wise: nodes are aggregated one output row at a time; for each
/// non-zero of the row the *entire* corresponding row of `B` is fetched and
/// scaled-accumulated. Good result reuse, poor `B` locality.
pub fn pull_row_wise(a: &CsrMatrix, b: &DenseMatrix) -> (DenseMatrix, OpCounter) {
    check_dims(a, b);
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    let mut ops = OpCounter::new();
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        let out_row = out.row_mut(r);
        for (&c, &v) in cols.iter().zip(vals) {
            let b_row = b.row(c as usize);
            for (o, &x) in out_row.iter_mut().zip(b_row) {
                *o += v * x;
            }
            ops.macs += b.cols() as u64;
        }
    }
    (out, ops)
}

/// PULL-Inner-Product: each output element is a full inner product; `B` is
/// walked by column.
pub fn pull_inner_product(a: &CsrMatrix, b: &DenseMatrix) -> (DenseMatrix, OpCounter) {
    check_dims(a, b);
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    let mut ops = OpCounter::new();
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * b.get(c as usize, j);
                ops.macs += 1;
            }
            out.set(r, j, acc);
        }
    }
    (out, ops)
}

/// PUSH-Column-Wise: one output channel at a time; every node broadcasts
/// its channel-`k` value to its neighbors. `A` is effectively re-read per
/// channel; the result column is updated randomly.
pub fn push_column_wise(a: &CsrMatrix, b: &DenseMatrix) -> (DenseMatrix, OpCounter) {
    check_dims(a, b);
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    let mut ops = OpCounter::new();
    for k in 0..b.cols() {
        for r in 0..a.rows() {
            let (cols, vals) = a.row(r);
            let mut acc = out.get(r, k);
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * b.get(c as usize, k);
                ops.macs += 1;
            }
            out.set(r, k, acc);
        }
    }
    (out, ops)
}

/// PUSH-Outer-Product: one source node at a time; its full feature row is
/// broadcast to all nodes that reference it (a column of `A`). This is the
/// execution order I-GCN uses for inter-hub tasks.
pub fn push_outer_product(a: &CsrMatrix, b: &DenseMatrix) -> (DenseMatrix, OpCounter) {
    check_dims(a, b);
    let at = a.transpose();
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    let mut ops = OpCounter::new();
    // Row `j` of the transpose lists the destinations of source node `j`.
    for j in 0..at.rows() {
        let (dests, vals) = at.row(j);
        let b_row = b.row(j);
        for (&i, &v) in dests.iter().zip(vals) {
            let out_row = out.row_mut(i as usize);
            for (o, &x) in out_row.iter_mut().zip(b_row) {
                *o += v * x;
            }
            ops.macs += b.cols() as u64;
        }
    }
    (out, ops)
}

/// Multiplies a sparse matrix by a dense one exploiting sparsity of *both*
/// operand values (skipping explicit zeros in `B` is not attempted; `B` is
/// dense). Reference kernel used by the correctness tests.
pub fn sparse_dense(a: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    pull_row_wise(a, b).0
}

/// Multiplies two sparse matrices producing a dense result, counting one
/// MAC per `(nnz_a_row_entry, nnz_b_row_entry)` pair — the operation count
/// a sparsity-aware accelerator (AWB-GCN, I-GCN) incurs for the first-layer
/// combination `X·W` where `X` is sparse.
pub fn sparse_sparse_dense(a: &CsrMatrix, b: &CsrMatrix) -> (DenseMatrix, OpCounter) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    let mut ops = OpCounter::new();
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            let (bcols, bvals) = b.row(c as usize);
            let out_row = out.row_mut(r);
            for (&bc, &bv) in bcols.iter().zip(bvals) {
                out_row[bc as usize] += v * bv;
                ops.macs += 1;
            }
        }
    }
    (out, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> (CsrMatrix, DenseMatrix) {
        // A = [[1, 0, 2], [0, 3, 0]]
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        // B = [[1, 2], [3, 4], [5, 6]]
        let b = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        (a, b)
    }

    #[test]
    fn all_methods_agree_with_dense_reference() {
        let (a, b) = example();
        let reference = a.to_dense().matmul(&b);
        for method in SpmmMethod::ALL {
            let (out, _) = method.run(&a, &b);
            assert!(out.max_abs_diff(&reference) < 1e-5, "{method} disagrees with dense reference");
        }
    }

    #[test]
    fn known_product() {
        let (a, b) = example();
        let (out, ops) = pull_row_wise(&a, &b);
        // Row 0: 1*[1,2] + 2*[5,6] = [11, 14]; row 1: 3*[3,4] = [9, 12].
        assert_eq!(out.as_slice(), &[11.0, 14.0, 9.0, 12.0]);
        assert_eq!(ops.macs, 3 * 2);
    }

    #[test]
    fn op_counts_identical_across_methods() {
        let (a, b) = example();
        let counts: Vec<u64> = SpmmMethod::ALL.iter().map(|m| m.run(&a, &b).1.macs).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "counts {counts:?}");
    }

    #[test]
    fn sparse_sparse_matches_dense() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
        let x = CsrMatrix::from_triplets(2, 3, &[(0, 1, 1.0), (1, 2, 4.0)]);
        let (out, ops) = sparse_sparse_dense(&a, &x);
        let reference = a.to_dense().matmul(&x.to_dense());
        assert!(out.max_abs_diff(&reference) < 1e-6);
        // Ops only for nnz pairs: row0 has 1 nnz * 1 nnz(X row0), row1 1*1.
        assert_eq!(ops.macs, 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(SpmmMethod::PullRowWise.to_string(), "PULL-Row-Wise");
        assert_eq!(SpmmMethod::PushOuterProduct.to_string(), "PUSH-Outer-Product");
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dim_mismatch_panics() {
        let a = CsrMatrix::from_triplets(2, 3, &[]);
        let b = DenseMatrix::zeros(2, 2);
        let _ = pull_row_wise(&a, &b);
    }
}
