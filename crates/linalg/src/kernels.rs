//! Column-vectorized hot kernels over the vendored SIMD layer.
//!
//! Everything here preserves the workspace's **bit-identity contract**:
//! per output element, floating-point operations happen in exactly the
//! order the plain scalar loops used — kernels vectorize across
//! *independent* elements (feature columns), never by re-associating a
//! reduction, and every multiply-accumulate is non-fused (see
//! `igcn_simd`'s crate docs). Flipping `igcn_simd::force_scalar` or
//! moving between CPUs changes speed, never bits.

use igcn_simd as simd;

/// `acc[i] += alpha * x[i]` over `min(acc.len(), x.len())` elements —
/// the row-aggregation primitive of the island hot path, dispatched
/// once per call to the active SIMD backend.
#[inline]
pub fn axpy_f32(acc: &mut [f32], x: &[f32], alpha: f32) {
    simd::axpy(acc, x, alpha);
}

/// `xs[i] *= s` for every element (the normalisation-scale application),
/// dispatched once per call to the active SIMD backend.
#[inline]
pub fn scale_f32(xs: &mut [f32], s: f32) {
    simd::scale(xs, s);
}

/// k-dimension cache-block size of [`gemm_blocked_into`]: one block of
/// B (`GEMM_KC × n` floats) stays resident while a sweep of A row tiles
/// streams past. 256 rows × 32 columns × 4 bytes = 32 KiB, sized for a
/// typical L1d.
pub const GEMM_KC: usize = 256;

/// `out += a × b` for row-major `a` (`m × k`), `b` (`k × n`) and `out`
/// (`m × n`), cache-blocked over `k` ([`GEMM_KC`]) with
/// [`igcn_simd::GEMM_MR`]-row register tiles.
///
/// Per output element the products accumulate in ascending `k` order
/// with non-fused multiply + add — **bit-identical** to the textbook
/// triple loop `for r { for k { for j { out += a*b } } }` at every
/// shape.
///
/// # Panics
///
/// Panics if the slice lengths do not match the stated shapes.
pub fn gemm_blocked_acc(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A buffer does not match {m}x{k}");
    assert_eq!(b.len(), k * n, "B buffer does not match {k}x{n}");
    assert_eq!(out.len(), m * n, "out buffer does not match {m}x{n}");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for k0 in (0..k).step_by(GEMM_KC) {
        let kc = GEMM_KC.min(k - k0);
        let b_block = &b[k0 * n..(k0 + kc) * n];
        for r0 in (0..m).step_by(simd::GEMM_MR) {
            let mr = simd::GEMM_MR.min(m - r0);
            simd::gemm_panel(
                &a[r0 * k + k0..],
                k,
                b_block,
                n,
                &mut out[r0 * n..(r0 + mr) * n],
                mr,
                kc,
            );
        }
    }
}

/// `out = a × b`: zeroes `out`, then [`gemm_blocked_acc`]. This is the
/// allocation-free GEMM entry point — callers own `out` (typically a
/// reused scratch slab) and no buffer is allocated here.
///
/// # Panics
///
/// Panics if the slice lengths do not match the stated shapes.
pub fn gemm_blocked_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(out.len(), m * n, "out buffer does not match {m}x{n}");
    out.fill(0.0);
    gemm_blocked_acc(a, m, k, b, n, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference semantics: the branch-free textbook triple loop.
    fn naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for r in 0..m {
            for kk in 0..k {
                let av = a[r * k + kk];
                for j in 0..n {
                    out[r * n + j] += av * b[kk * n + j];
                }
            }
        }
        out
    }

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // Mix in exact zeros so the sparse-aware comparison paths
                // are exercised too.
                if s.is_multiple_of(5) {
                    0.0
                } else {
                    ((s >> 11) as f32 / (1u64 << 53) as f32) * 4.0 - 2.0
                }
            })
            .collect()
    }

    #[test]
    fn blocked_gemm_matches_naive_bitwise_over_ragged_shapes() {
        // Deterministic sweep standing in for a proptest: ragged shapes
        // including 0-column, 0-row, width-not-multiple-of-8, single
        // element, k larger than one cache block, and tile remainders.
        let shapes: &[(usize, usize, usize)] = &[
            (1, 1, 1),
            (0, 3, 4),
            (3, 0, 4),
            (3, 4, 0),
            (4, 8, 8),
            (5, 7, 9),
            (4, 300, 8), // k spans two GEMM_KC blocks
            (13, 260, 19),
            (2, 17, 31),
            (9, 3, 33),
            (6, 512, 5),
        ];
        for (i, &(m, k, n)) in shapes.iter().enumerate() {
            let a = pseudo(100 + i as u64, m * k);
            let b = pseudo(200 + i as u64, k * n);
            let expect = naive(&a, m, k, &b, n);
            let mut got = vec![f32::NAN; m * n]; // gemm_blocked_into must overwrite
            gemm_blocked_into(&a, m, k, &b, n, &mut got);
            for e in 0..m * n {
                assert_eq!(got[e].to_bits(), expect[e].to_bits(), "shape {m}x{k}x{n} element {e}");
            }
            // The accumulating form must continue bit-exactly from a
            // non-zero starting value.
            let mut acc = expect.clone();
            gemm_blocked_acc(&a, m, k, &b, n, &mut acc);
            let mut expect_acc = expect.clone();
            for r in 0..m {
                for kk in 0..k {
                    let av = a[r * k + kk];
                    for j in 0..n {
                        expect_acc[r * n + j] += av * b[kk * n + j];
                    }
                }
            }
            for e in 0..m * n {
                assert_eq!(acc[e].to_bits(), expect_acc[e].to_bits(), "acc element {e}");
            }
        }
    }

    #[test]
    fn blocked_gemm_identical_across_backends() {
        let (m, k, n) = (7, 33, 21);
        let a = pseudo(1, m * k);
        let b = pseudo(2, k * n);
        let mut native = vec![0.0f32; m * n];
        gemm_blocked_into(&a, m, k, &b, n, &mut native);
        igcn_simd::force_scalar(true);
        let mut scalar = vec![0.0f32; m * n];
        gemm_blocked_into(&a, m, k, &b, n, &mut scalar);
        igcn_simd::force_scalar(false);
        for e in 0..m * n {
            assert_eq!(native[e].to_bits(), scalar[e].to_bits(), "element {e}");
        }
    }

    #[test]
    fn axpy_and_scale_wrappers_match_plain_loops() {
        let x = pseudo(3, 37);
        let mut acc = pseudo(4, 37);
        let mut expect = acc.clone();
        axpy_f32(&mut acc, &x, -1.5);
        for (e, &v) in expect.iter_mut().zip(&x) {
            *e += -1.5 * v;
        }
        assert_eq!(acc, expect);
        scale_f32(&mut acc, 0.25);
        for e in &mut expect {
            *e *= 0.25;
        }
        assert_eq!(acc, expect);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let mut out = vec![0.0f32; 4];
        gemm_blocked_into(&[1.0; 6], 2, 3, &[1.0; 5], 2, &mut out);
    }
}
