//! Int8 quantized feature storage with f32 accumulation.
//!
//! Follows LW-GCN's fixed-point feature quantization (PAPERS.md):
//! input features are stored as **per-column symmetric int8** —
//! `q = round(v / scale_c)` clamped to `[-127, 127]` with
//! `scale_c = max_abs(column c) / 127` — and dequantized back to f32
//! (`q as f32 * scale_c`) before any arithmetic, so every downstream
//! kernel still accumulates in f32. Feature value storage drops from 4
//! bytes to 1 byte per non-zero, which is the point: the first-layer
//! combination is bandwidth-bound on sparse real-world features.
//!
//! # Error bound
//!
//! Symmetric rounding quantization has per-value absolute error at most
//! `scale_c / 2`; [`QuantizedFeatures::error_bound`] reports
//! `max_c scale_c / 2` with a `1e-5` relative slack covering the f32
//! divide/round/multiply round trip. The bound is asserted in debug
//! builds every time the engine quantizes a request
//! (`ExecConfig::quantized_features`) and checked by `kernel_bench`.
//!
//! # What stays exact
//!
//! Quantization **preserves the CSR structure bit for bit**: entries
//! whose value rounds to zero stay stored (with value `0`), so row
//! pointers, column indices and therefore every structural statistic —
//! operation counts, window decisions, `ExecStats` — are identical to
//! the f32 path, and `IGcnEngine::account` still matches
//! `IGcnEngine::run` under quantization. Only the *values* carry the
//! bounded error. Traffic accounting still models f32 feature bytes;
//! the realized 4×-smaller value stream is reported by `kernel_bench`
//! rather than folded into the canonical statistics.

use igcn_graph::SparseFeatures;

/// Relative slack on the analytic `scale/2` rounding bound, covering
/// the f32 quantize/dequantize round trip (divide, round, multiply —
/// each within 0.5 ulp, far inside `1e-5` relative).
pub const QUANT_BOUND_SLACK: f32 = 1e-5;

/// A [`SparseFeatures`] matrix with int8-quantized values (per-column
/// symmetric scales) and the original CSR structure.
///
/// # Example
///
/// ```
/// use igcn_graph::SparseFeatures;
/// use igcn_linalg::QuantizedFeatures;
///
/// let x = SparseFeatures::random(50, 16, 0.3, 7);
/// let q = QuantizedFeatures::quantize(&x);
/// assert!(q.max_abs_error(&x) <= q.error_bound());
/// assert_eq!(q.value_bytes() * 4, q.f32_value_bytes());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedFeatures {
    num_rows: usize,
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    qvalues: Vec<i8>,
    /// Per-column dequantization scale (`0.0` for all-zero columns).
    scales: Vec<f32>,
}

impl QuantizedFeatures {
    /// Quantizes `features` into a fresh matrix.
    pub fn quantize(features: &SparseFeatures) -> Self {
        let mut out = QuantizedFeatures {
            num_rows: 0,
            num_cols: 0,
            row_ptr: Vec::new(),
            col_idx: Vec::new(),
            qvalues: Vec::new(),
            scales: Vec::new(),
        };
        out.quantize_from(features);
        out
    }

    /// In-place variant of [`QuantizedFeatures::quantize`], reusing this
    /// matrix's buffers (no allocation at steady state — the serving
    /// hot-path contract).
    pub fn quantize_from(&mut self, features: &SparseFeatures) {
        self.num_rows = features.num_rows();
        self.num_cols = features.num_cols();

        // Pass 1: per-column max |v| → symmetric scale max_abs / 127.
        self.scales.clear();
        self.scales.resize(self.num_cols, 0.0);
        for (&c, &v) in features.col_idx().iter().zip(features.values()) {
            let m = &mut self.scales[c as usize];
            *m = m.max(v.abs());
        }
        for s in &mut self.scales {
            *s /= 127.0;
        }

        // Pass 2: quantize every stored value. Structure is copied
        // verbatim — values that round to 0 stay stored, so the CSR
        // shape (and every structural statistic) is untouched.
        self.row_ptr.clear();
        self.row_ptr.extend_from_slice(features.row_ptr());
        self.col_idx.clear();
        self.col_idx.extend_from_slice(features.col_idx());
        self.qvalues.clear();
        self.qvalues.reserve(features.nnz());
        for (&c, &v) in features.col_idx().iter().zip(features.values()) {
            let scale = self.scales[c as usize];
            let q = if scale == 0.0 {
                0 // all-zero column: nothing to encode
            } else {
                (v / scale).round().clamp(-127.0, 127.0) as i8
            };
            self.qvalues.push(q);
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries (identical to the source matrix's nnz).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Per-column dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The documented worst-case absolute dequantization error:
    /// `max_c scale_c / 2`, widened by [`QUANT_BOUND_SLACK`].
    pub fn error_bound(&self) -> f32 {
        let max_scale = self.scales.iter().fold(0.0f32, |m, &s| m.max(s));
        0.5 * max_scale * (1.0 + QUANT_BOUND_SLACK)
    }

    /// Measured maximum absolute error of the dequantized values against
    /// the original matrix (which must have identical structure).
    ///
    /// # Panics
    ///
    /// Panics if `original` has a different CSR structure.
    pub fn max_abs_error(&self, original: &SparseFeatures) -> f32 {
        assert_eq!(self.row_ptr, original.row_ptr(), "structure mismatch");
        assert_eq!(self.col_idx, original.col_idx(), "structure mismatch");
        let mut worst = 0.0f32;
        for ((&c, &q), &v) in self.col_idx.iter().zip(&self.qvalues).zip(original.values()) {
            let deq = q as f32 * self.scales[c as usize];
            worst = worst.max((deq - v).abs());
        }
        worst
    }

    /// Dequantizing row gather: rebuilds `out` so its row `i` is the
    /// dequantized row `order[i]`, reusing `out`'s buffers — the
    /// quantized twin of [`SparseFeatures::gather_rows_into`], used by
    /// the engine when `ExecConfig::quantized_features` is on.
    ///
    /// # Panics
    ///
    /// Panics if any entry of `order` is out of range.
    pub fn gather_rows_into(&self, order: &[u32], out: &mut SparseFeatures) {
        let mut writer = out.begin_rebuild(self.num_cols);
        writer.reserve(order.len() + 1, self.nnz());
        for &src in order {
            let r = src as usize;
            assert!(r < self.num_rows, "row {src} out of range for {} rows", self.num_rows);
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[i];
                writer.push_entry(c, self.qvalues[i] as f32 * self.scales[c as usize]);
            }
            writer.finish_row();
        }
    }

    /// Bytes of quantized value storage (1 per non-zero).
    pub fn value_bytes(&self) -> usize {
        self.qvalues.len()
    }

    /// Bytes the same values occupy in f32 form (4 per non-zero).
    pub fn f32_value_bytes(&self) -> usize {
        self.qvalues.len() * 4
    }
}

impl Default for QuantizedFeatures {
    fn default() -> Self {
        QuantizedFeatures::quantize(&SparseFeatures::from_rows(0, 0, Vec::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::NodeId;

    #[test]
    fn quantization_honors_error_bound() {
        for seed in 0..5 {
            let x = SparseFeatures::random(60, 24, 0.25, seed);
            let q = QuantizedFeatures::quantize(&x);
            let err = q.max_abs_error(&x);
            let bound = q.error_bound();
            assert!(err <= bound, "seed {seed}: error {err} exceeds bound {bound}");
            // The bound must be meaningful: values are in [0, 1), so
            // scale ≤ 1/127 and the bound stays below ~0.004.
            assert!(bound < 0.005, "seed {seed}: bound {bound} implausibly loose");
        }
    }

    #[test]
    fn structure_is_preserved_exactly() {
        let x = SparseFeatures::from_rows(
            3,
            4,
            vec![
                vec![(0, 1.0e-6), (2, 1.0)], // tiny value rounds to q=0 but stays stored
                vec![],
                vec![(1, -0.5), (3, 0.25)],
            ],
        );
        let q = QuantizedFeatures::quantize(&x);
        assert_eq!(q.nnz(), x.nnz());
        assert_eq!(q.num_rows(), 3);
        // Gather in identity order and compare structure.
        let mut out = SparseFeatures::from_rows(0, 0, Vec::new());
        q.gather_rows_into(&[0, 1, 2], &mut out);
        assert_eq!(out.row_ptr(), x.row_ptr());
        assert_eq!(out.col_idx(), x.col_idx());
    }

    #[test]
    fn gather_dequantizes_and_reorders() {
        let x = SparseFeatures::random(20, 8, 0.4, 9);
        let q = QuantizedFeatures::quantize(&x);
        let order: Vec<u32> = (0..20u32).rev().collect();
        let mut out = SparseFeatures::from_rows(0, 0, Vec::new());
        q.gather_rows_into(&order, &mut out);
        let bound = q.error_bound();
        for (i, &src) in order.iter().enumerate() {
            let (gc, gv) = out.row(NodeId::new(i as u32));
            let (xc, xv) = x.row(NodeId::new(src));
            assert_eq!(gc, xc, "structure of gathered row {i}");
            for (&g, &v) in gv.iter().zip(xv) {
                assert!((g - v).abs() <= bound, "row {i}: {g} vs {v} exceeds {bound}");
            }
        }
    }

    #[test]
    fn gather_into_reuses_buffers() {
        let x = SparseFeatures::random(30, 8, 0.3, 13);
        let q = QuantizedFeatures::quantize(&x);
        let order: Vec<u32> = (0..30u32).collect();
        let mut out = SparseFeatures::from_rows(0, 0, Vec::new());
        q.gather_rows_into(&order, &mut out);
        let nnz = out.nnz();
        q.gather_rows_into(&order, &mut out);
        assert_eq!(out.nnz(), nnz, "steady-state gather must be stable");
    }

    #[test]
    fn quantize_from_reuses_buffers_and_matches_fresh() {
        let a = SparseFeatures::random(40, 16, 0.2, 1);
        let b = SparseFeatures::random(40, 16, 0.2, 2);
        let mut q = QuantizedFeatures::quantize(&a);
        q.quantize_from(&b);
        assert_eq!(q, QuantizedFeatures::quantize(&b));
    }

    #[test]
    fn negative_and_extreme_values_clamp() {
        let x = SparseFeatures::from_rows(1, 2, vec![vec![(0, -3.0), (1, 3.0)]]);
        let q = QuantizedFeatures::quantize(&x);
        // max_abs = 3.0 per column → scale = 3/127; the extremes map to
        // exactly ±127 and dequantize to ±3.0 (error 0 at the extremes).
        assert!(q.max_abs_error(&x) <= q.error_bound());
        let mut out = SparseFeatures::from_rows(0, 0, Vec::new());
        q.gather_rows_into(&[0], &mut out);
        let (_, vals) = out.row(NodeId::new(0));
        assert!((vals[0] + 3.0).abs() < 1e-6);
        assert!((vals[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn byte_accounting() {
        let x = SparseFeatures::random(10, 4, 0.5, 3);
        let q = QuantizedFeatures::quantize(&x);
        assert_eq!(q.value_bytes(), x.nnz());
        assert_eq!(q.f32_value_bytes(), x.nnz() * 4);
        assert_eq!(q.scales().len(), 4);
    }
}
