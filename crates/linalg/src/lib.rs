//! Dense/sparse linear algebra for the I-GCN reproduction.
//!
//! GCN layers compute `σ(Ã · X · W)` (Equation 1 of the paper). Both
//! multiplications are sparse-dense matrix products (SpMM), and §2.2 of the
//! paper maps the PULL/PUSH graph-aggregation styles onto the four classic
//! SpMM dataflows. This crate implements all of them with exact operation
//! accounting so Table 1 and the baseline accelerator models can be
//! regenerated:
//!
//! * [`spmm::pull_row_wise`] — PULL, row-wise product (HyGCN-style);
//! * [`spmm::pull_inner_product`] — PULL, inner product;
//! * [`spmm::push_column_wise`] — PUSH, column-wise product (AWB-GCN-style);
//! * [`spmm::push_outer_product`] — PUSH, outer product (I-GCN inter-hub
//!   task order).
//!
//! It also provides [`DenseMatrix`], [`CsrMatrix`], and the GCN symmetric
//! normalisation [`norm::GcnNormalization`] in the *factored* form
//! `ã_ij = s_out(i) · s_in(j)` that islandization relies on for lossless
//! shared-neighbor reuse (see DESIGN.md §3).

//! # Kernels & SIMD
//!
//! The hot loops live in [`kernels`] ([`kernels::axpy_f32`],
//! [`kernels::scale_f32`], [`kernels::gemm_blocked_into`]) on top of the
//! vendored `igcn-simd` backend layer (scalar / AVX2 / NEON, dispatched
//! once per call). Every kernel vectorizes across *feature columns* —
//! independent output elements — and uses non-fused multiply + add, so
//! per-element accumulation order is exactly the scalar loops' order and
//! results are **bit-identical** on every backend
//! (`igcn_simd::force_scalar` flips the paths without changing a bit).
//! [`quant`] adds the int8 feature path: per-column symmetric scales,
//! f32 accumulation, documented `scale/2` error bound.

pub mod dense;
pub mod kernels;
pub mod norm;
pub mod ops;
pub mod quant;
pub mod sparse;
pub mod spmm;

pub use dense::DenseMatrix;
pub use norm::GcnNormalization;
pub use ops::OpCounter;
pub use quant::QuantizedFeatures;
pub use sparse::CsrMatrix;
