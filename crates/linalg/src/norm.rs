//! Factored GCN adjacency normalisation.

use serde::{Deserialize, Serialize};

use igcn_graph::{CsrGraph, NodeId};

use crate::sparse::CsrMatrix;

/// The symmetric GCN normalisation `Ã = D^(-1/2) (A + I) D^(-1/2)` in
/// *factored* form.
///
/// Every normalised entry decomposes as `ã_ij = s(i) · s(j)` with
/// `s(v) = 1/sqrt(degree(v) + 1)`. I-GCN's redundancy removal depends on
/// this factoring: combination results are pre-scaled by `s(j)`, the island
/// bitmap scan then performs *unweighted* accumulation (enabling
/// pre-aggregated group reuse for shared neighbors), and outputs are
/// post-scaled by `s(i)`. The factored execution is numerically identical
/// (up to FP reassociation) to multiplying by the explicit `Ã`.
///
/// GraphSage's mean aggregator (`s_out = 1/(d+1)`, `s_in = 1`) and GIN's
/// sum aggregator (`s = 1`, self-weight `1 + ε`) use the same interface.
///
/// # Example
///
/// ```
/// use igcn_graph::{CsrGraph, NodeId};
/// use igcn_linalg::GcnNormalization;
///
/// let g = CsrGraph::from_undirected_edges(2, &[(0, 1)]).unwrap();
/// let norm = GcnNormalization::symmetric(&g);
/// let s = norm.in_scale(NodeId::new(0));
/// assert!((s - 1.0 / 2f32.sqrt()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnNormalization {
    in_scale: Vec<f32>,
    out_scale: Vec<f32>,
    self_weight: f32,
}

impl GcnNormalization {
    /// Symmetric GCN normalisation over `A + I` (self-loops added
    /// implicitly; the graph itself should not contain them).
    pub fn symmetric(graph: &CsrGraph) -> Self {
        let scale: Vec<f32> =
            graph.degrees().iter().map(|&d| 1.0 / ((d as f32) + 1.0).sqrt()).collect();
        GcnNormalization { in_scale: scale.clone(), out_scale: scale, self_weight: 1.0 }
    }

    /// GraphSage-style mean aggregation over `N(v) ∪ {v}`.
    pub fn mean(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let out_scale: Vec<f32> =
            graph.degrees().iter().map(|&d| 1.0 / ((d as f32) + 1.0)).collect();
        GcnNormalization { in_scale: vec![1.0; n], out_scale, self_weight: 1.0 }
    }

    /// GIN-style sum aggregation with self weight `1 + ε`.
    pub fn gin(graph: &CsrGraph, epsilon: f32) -> Self {
        let n = graph.num_nodes();
        GcnNormalization {
            in_scale: vec![1.0; n],
            out_scale: vec![1.0; n],
            self_weight: 1.0 + epsilon,
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.in_scale.len()
    }

    /// Whether the normalisation covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.in_scale.is_empty()
    }

    /// Pre-scale applied to node `v`'s combination result before
    /// aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn in_scale(&self, v: NodeId) -> f32 {
        self.in_scale[v.index()]
    }

    /// Post-scale applied to node `v`'s aggregated result.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn out_scale(&self, v: NodeId) -> f32 {
        self.out_scale[v.index()]
    }

    /// Weight of the implicit self-contribution (in units of the node's own
    /// *pre-scaled* combination result).
    #[inline]
    pub fn self_weight(&self) -> f32 {
        self.self_weight
    }

    /// Builds the normalisation of a node subset: entry `i` of the
    /// result carries the scales of node `order[i]`, bit-for-bit. This
    /// is the row-gather twin of `SparseFeatures::gather_rows`, used by
    /// sharded execution to hand each shard the *global*-degree scales
    /// of its local nodes (a shard subgraph truncates replicated-hub
    /// degrees, so recomputing scales locally would change values).
    ///
    /// # Panics
    ///
    /// Panics if any entry of `order` is out of range.
    pub fn gather(&self, order: &[u32]) -> GcnNormalization {
        let pick = |scales: &[f32]| -> Vec<f32> {
            order
                .iter()
                .map(|&v| {
                    assert!(
                        (v as usize) < scales.len(),
                        "node {v} out of range for {} scales",
                        scales.len()
                    );
                    scales[v as usize]
                })
                .collect()
        };
        GcnNormalization {
            in_scale: pick(&self.in_scale),
            out_scale: pick(&self.out_scale),
            self_weight: self.self_weight,
        }
    }

    /// Materialises the explicit normalised adjacency
    /// `ã_ij = out(i)·in(j)` for every edge plus
    /// `ã_ii = out(i)·in(i)·self_weight` — the reference operand the
    /// islandized execution is verified against.
    pub fn to_explicit_matrix(&self, graph: &CsrGraph) -> CsrMatrix {
        let n = graph.num_nodes();
        assert_eq!(n, self.len(), "normalisation/graph size mismatch");
        let mut triplets: Vec<(u32, u32, f32)> = Vec::with_capacity(graph.num_directed_edges() + n);
        for (u, v) in graph.iter_edges() {
            triplets.push((
                u.value(),
                v.value(),
                self.out_scale[u.index()] * self.in_scale[v.index()],
            ));
        }
        for i in 0..n {
            triplets.push((
                i as u32,
                i as u32,
                self.out_scale[i] * self.in_scale[i] * self.self_weight,
            ));
        }
        CsrMatrix::from_triplets(n, n, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn symmetric_scales() {
        let g = triangle();
        let n = GcnNormalization::symmetric(&g);
        // Every node has degree 2, so scale = 1/sqrt(3).
        for v in g.iter_nodes() {
            assert!((n.in_scale(v) - 1.0 / 3f32.sqrt()).abs() < 1e-6);
            assert_eq!(n.in_scale(v), n.out_scale(v));
        }
        assert_eq!(n.self_weight(), 1.0);
    }

    #[test]
    fn mean_scales() {
        let g = triangle();
        let n = GcnNormalization::mean(&g);
        for v in g.iter_nodes() {
            assert_eq!(n.in_scale(v), 1.0);
            assert!((n.out_scale(v) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gin_self_weight() {
        let g = triangle();
        let n = GcnNormalization::gin(&g, 0.25);
        assert!((n.self_weight() - 1.25).abs() < 1e-6);
        assert_eq!(n.in_scale(NodeId::new(0)), 1.0);
    }

    #[test]
    fn explicit_matrix_row_sums() {
        // For symmetric normalisation on a d-regular graph the row sum is
        // (d+1) * 1/(d+1) = 1.
        let g = triangle();
        let n = GcnNormalization::symmetric(&g);
        let m = n.to_explicit_matrix(&g);
        for r in 0..3 {
            let (_, vals) = m.row(r);
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn gather_picks_scales_bitwise() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]).unwrap();
        let n = GcnNormalization::symmetric(&g);
        let sub = n.gather(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.in_scale(NodeId::new(0)), n.in_scale(NodeId::new(3)));
        assert_eq!(sub.out_scale(NodeId::new(1)), n.out_scale(NodeId::new(1)));
        assert_eq!(sub.self_weight(), n.self_weight());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rejects_bad_index() {
        let g = triangle();
        let _ = GcnNormalization::symmetric(&g).gather(&[0, 9]);
    }

    #[test]
    fn explicit_matrix_has_diagonal() {
        let g = triangle();
        let m = GcnNormalization::symmetric(&g).to_explicit_matrix(&g);
        assert_eq!(m.nnz(), g.num_directed_edges() + 3);
    }
}
