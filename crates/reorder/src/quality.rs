//! Locality-quality metrics for the Figure 13 comparison.

use serde::Serialize;

use igcn_graph::stats::{mean_edge_span, DensityGrid};
use igcn_graph::{CsrGraph, Permutation};

/// Clustering-quality scores of one ordering over one graph.
///
/// Figure 13's claim is qualitative — I-GCN pushes *all* non-zeros into
/// L-shapes and the anti-diagonal while reorderings "leave many outlying
/// non-zeros". These scalars make the comparison quantitative:
///
/// * `band_fraction` — share of non-zeros within a narrow diagonal band
///   of the density grid (higher = more clustered);
/// * `mean_span` — average |pos(u) − pos(v)| over edges, normalised by
///   node count (lower = more local);
/// * `window_hit_rate` — fraction of edges whose endpoints fall within a
///   fixed-size window (a proxy for on-chip working-set hits).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OrderingQuality {
    /// Share of nnz within ±1 grid cell of the diagonal (64×64 grid).
    pub band_fraction: f64,
    /// Mean edge span divided by the node count.
    pub normalized_span: f64,
    /// Fraction of edges with |pos(u) − pos(v)| ≤ window.
    pub window_hit_rate: f64,
}

/// Computes [`OrderingQuality`] for `ordering` (`None` = natural order)
/// with the given working-set `window` (in node positions).
pub fn ordering_quality(
    graph: &CsrGraph,
    ordering: Option<&Permutation>,
    window: usize,
) -> OrderingQuality {
    let grid = DensityGrid::compute(graph, ordering, 64.min(graph.num_nodes().max(1)));
    let band_fraction = grid.diagonal_band_fraction(1);
    let n = graph.num_nodes().max(1) as f64;
    let normalized_span = mean_edge_span(graph, ordering) / n;
    let mut hits = 0u64;
    let mut total = 0u64;
    for (u, v) in graph.iter_edges() {
        let (pu, pv) = match ordering {
            Some(p) => (p.map(u).index(), p.map(v).index()),
            None => (u.index(), v.index()),
        };
        total += 1;
        if pu.abs_diff(pv) <= window {
            hits += 1;
        }
    }
    let window_hit_rate = if total == 0 { 1.0 } else { hits as f64 / total as f64 };
    OrderingQuality { band_fraction, normalized_span, window_hit_rate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rabbit, RandomOrder, Reorderer};
    use igcn_graph::generate::HubIslandConfig;

    #[test]
    fn clustered_ordering_beats_random() {
        let g = HubIslandConfig::new(500, 16).noise_fraction(0.0).generate(20);
        let rabbit = Rabbit::default().reorder(&g.graph);
        let random = RandomOrder::default().reorder(&g.graph);
        let q_rabbit = ordering_quality(&g.graph, Some(&rabbit), 64);
        let q_random = ordering_quality(&g.graph, Some(&random), 64);
        assert!(q_rabbit.window_hit_rate > q_random.window_hit_rate);
        assert!(q_rabbit.normalized_span < q_random.normalized_span);
    }

    #[test]
    fn empty_graph_degenerate() {
        let g = CsrGraph::from_directed_edges(0, &[]).unwrap();
        let q = ordering_quality(&g, None, 8);
        assert_eq!(q.window_hit_rate, 1.0);
    }

    #[test]
    fn path_graph_perfect_locality() {
        let edges: Vec<(u32, u32)> = (0..49).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_undirected_edges(50, &edges).unwrap();
        let q = ordering_quality(&g, None, 1);
        assert_eq!(q.window_hit_rate, 1.0);
        assert!(q.band_fraction > 0.99);
    }
}
