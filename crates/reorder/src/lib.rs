//! Graph reordering baselines for the Figure 12/13 comparisons.
//!
//! §4.5 of the paper compares I-GCN's online islandization against six
//! traditional *lightweight* reordering algorithms run offline on a
//! 64-thread Xeon: Rabbit, DBG, HubSort, HubCluster, DBG-HubSort and
//! DBG-HubCluster (taxonomy of Faldu et al., IISWC'19; Rabbit from Arai
//! et al., IPDPS'16). This crate reimplements all six in Rust, plus
//! SlashBurn (Lim et al.) and Reverse Cuthill-McKee as supplementary
//! baselines, with:
//!
//! * a common [`Reorderer`] trait producing [`Permutation`]s;
//! * wall-clock timing ([`timing`]) for the Figure 12 latency bars;
//! * locality-quality metrics ([`quality`]) for the Figure 13 clustering
//!   comparison.
//!
//! All reorderings are *valid permutations* and leave GCN inference
//! results invariant up to row relabelling — property-tested in the
//! workspace integration suite.

pub mod combined;
pub mod dbg;
pub mod hubcluster;
pub mod hubsort;
pub mod quality;
pub mod rabbit;
pub mod rcm;
pub mod simple;
pub mod slashburn;
pub mod timing;
pub mod traits;

pub use combined::{DbgHubCluster, DbgHubSort};
pub use dbg::Dbg;
pub use hubcluster::HubCluster;
pub use hubsort::HubSort;
pub use rabbit::Rabbit;
pub use rcm::Rcm;
pub use simple::{Identity, RandomOrder};
pub use slashburn::SlashBurn;
pub use traits::Reorderer;

/// The six lightweight baselines of Figure 12, in the paper's order.
pub fn figure12_baselines() -> Vec<Box<dyn Reorderer>> {
    vec![
        Box::new(Rabbit::default()),
        Box::new(Dbg),
        Box::new(HubSort),
        Box::new(HubCluster),
        Box::new(DbgHubSort),
        Box::new(DbgHubCluster),
    ]
}
