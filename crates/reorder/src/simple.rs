//! Trivial orderings used as controls.

use rand::rngs::StdRng;
use rand::SeedableRng;

use igcn_graph::{CsrGraph, Permutation};

use crate::traits::{order_to_permutation, Reorderer};

/// The identity ordering (no reordering) — the "natural order" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Reorderer for Identity {
    fn name(&self) -> String {
        "identity".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        Permutation::identity(graph.num_nodes())
    }
}

/// A seeded random shuffle — the worst-case locality control.
#[derive(Debug, Clone, Copy)]
pub struct RandomOrder {
    seed: u64,
}

impl RandomOrder {
    /// Creates a shuffler with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomOrder { seed }
    }
}

impl Default for RandomOrder {
    fn default() -> Self {
        RandomOrder { seed: 0x5EED }
    }
}

impl Reorderer for RandomOrder {
    fn name(&self) -> String {
        "random".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<u32> = (0..graph.num_nodes() as u32).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order_to_permutation("random", &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::erdos_renyi;

    #[test]
    fn identity_is_identity() {
        let g = erdos_renyi(50, 100, 1);
        assert!(Identity.reorder(&g).is_identity());
    }

    #[test]
    fn random_is_valid_and_seeded() {
        let g = erdos_renyi(50, 100, 1);
        let a = RandomOrder::new(7).reorder(&g);
        let b = RandomOrder::new(7).reorder(&g);
        let c = RandomOrder::new(8).reorder(&g);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
    }
}
