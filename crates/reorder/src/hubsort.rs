//! HubSort (Zhang et al. / Faldu et al. taxonomy).

use igcn_graph::{CsrGraph, Permutation};

use crate::traits::{order_to_permutation, Reorderer};

/// HubSort: *hot* vertices (degree above the average) are packed to the
/// front sorted by descending degree; *cold* vertices keep their relative
/// order behind them.
///
/// Sorting only the hot set keeps the cost low (the "lightweight" in
/// lightweight reordering) while concentrating the high-reuse rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct HubSort;

impl Reorderer for HubSort {
    fn name(&self) -> String {
        "hubsort".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        let degrees = graph.degrees();
        let avg = graph.avg_degree();
        let mut hot: Vec<u32> = Vec::new();
        let mut cold: Vec<u32> = Vec::new();
        for v in 0..graph.num_nodes() as u32 {
            if degrees[v as usize] as f64 > avg {
                hot.push(v);
            } else {
                cold.push(v);
            }
        }
        // Stable sort: equal degrees keep ascending-ID order.
        hot.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
        hot.extend_from_slice(&cold);
        order_to_permutation("hubsort", &hot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::barabasi_albert;
    use igcn_graph::NodeId;

    #[test]
    fn hottest_node_first() {
        let g = barabasi_albert(200, 2, 1);
        let p = HubSort.reorder(&g);
        let degrees = g.degrees();
        let hottest = (0..200u32).max_by_key(|&v| (degrees[v as usize], v)).unwrap();
        // The maximum-degree node must land at position 0 (ties broken by
        // the stable sort keep the first max).
        let winner_pos = p.map(NodeId::new(hottest)).index();
        let max_deg = degrees[hottest as usize];
        let first_max = (0..200u32).find(|&v| degrees[v as usize] == max_deg).unwrap();
        assert_eq!(p.map(NodeId::new(first_max)).index(), 0);
        assert!(winner_pos < 200);
    }

    #[test]
    fn cold_nodes_keep_relative_order() {
        let g = barabasi_albert(100, 2, 2);
        let p = HubSort.reorder(&g);
        let degrees = g.degrees();
        let avg = g.avg_degree();
        let cold: Vec<u32> = (0..100u32).filter(|&v| degrees[v as usize] as f64 <= avg).collect();
        let positions: Vec<usize> = cold.iter().map(|&v| p.map(NodeId::new(v)).index()).collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "cold order not preserved");
    }

    #[test]
    fn valid_permutation() {
        let g = barabasi_albert(150, 3, 3);
        assert_eq!(HubSort.reorder(&g).len(), 150);
    }
}
