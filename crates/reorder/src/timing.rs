//! Wall-clock timing of reordering algorithms (Figure 12).
//!
//! §4.5 measures the six lightweight reorderers on a 64-thread Xeon and
//! finds the *reordering latency alone* exceeds I-GCN's entire inference
//! — by over 100× on the citation graphs. The harness here measures our
//! Rust reimplementations on the host, which demonstrates the same gap
//! (host CPU vs µs-scale accelerator inference).

use std::time::{Duration, Instant};

use serde::Serialize;

use igcn_graph::{CsrGraph, Permutation};

use crate::traits::Reorderer;

/// The timing result of one reordering run.
#[derive(Debug, Clone, Serialize)]
pub struct TimedReorder {
    /// Algorithm name.
    pub name: String,
    /// Best-of-N wall-clock time in seconds.
    pub seconds: f64,
    /// The permutation produced.
    #[serde(skip)]
    pub permutation: Permutation,
}

impl TimedReorder {
    /// Reordering latency in microseconds (the unit of Figure 12).
    pub fn micros(&self) -> f64 {
        self.seconds * 1e6
    }
}

/// Times `reorderer` over `graph`, best of `runs` repetitions (at least
/// one).
pub fn time_reorder(reorderer: &dyn Reorderer, graph: &CsrGraph, runs: usize) -> TimedReorder {
    let runs = runs.max(1);
    let mut best = Duration::MAX;
    let mut permutation = None;
    for _ in 0..runs {
        let start = Instant::now();
        let p = reorderer.reorder(graph);
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        permutation = Some(p);
    }
    TimedReorder {
        name: reorderer.name(),
        seconds: best.as_secs_f64(),
        permutation: permutation.expect("at least one run"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Identity;
    use igcn_graph::generate::erdos_renyi;

    #[test]
    fn timing_returns_positive_duration() {
        let g = erdos_renyi(500, 2000, 21);
        let t = time_reorder(&Identity, &g, 3);
        assert!(t.seconds >= 0.0);
        assert_eq!(t.name, "identity");
        assert_eq!(t.permutation.len(), 500);
        assert!(t.micros() >= 0.0);
    }

    #[test]
    fn zero_runs_clamped_to_one() {
        let g = erdos_renyi(50, 100, 22);
        let t = time_reorder(&Identity, &g, 0);
        assert_eq!(t.permutation.len(), 50);
    }
}
