//! The combined DBG+Hub variants of the Faldu et al. taxonomy.

use igcn_graph::{CsrGraph, Permutation};

use crate::dbg::bucket_of;
use crate::traits::{order_to_permutation, Reorderer};

/// DBG-HubSort: degree buckets hottest-first, with the *hot* buckets
/// (degree above average) internally sorted by descending degree and cold
/// buckets left stable.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbgHubSort;

impl Reorderer for DbgHubSort {
    fn name(&self) -> String {
        "dbg-hubsort".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        order_to_permutation("dbg-hubsort", &combined_order(graph, true))
    }
}

/// DBG-HubCluster: degree buckets hottest-first with every bucket kept
/// stable (the clustering comes entirely from the bucketing).
#[derive(Debug, Clone, Copy, Default)]
pub struct DbgHubCluster;

impl Reorderer for DbgHubCluster {
    fn name(&self) -> String {
        "dbg-hubcluster".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        order_to_permutation("dbg-hubcluster", &combined_order(graph, false))
    }
}

fn combined_order(graph: &CsrGraph, sort_hot: bool) -> Vec<u32> {
    let degrees = graph.degrees();
    let avg = graph.avg_degree();
    let max_bucket = degrees.iter().map(|&d| bucket_of(d)).max().unwrap_or(0);
    let mut order: Vec<u32> = Vec::with_capacity(graph.num_nodes());
    for bucket in (0..=max_bucket).rev() {
        let mut members: Vec<u32> = (0..graph.num_nodes() as u32)
            .filter(|&v| bucket_of(degrees[v as usize]) == bucket)
            .collect();
        let bucket_is_hot = members.iter().any(|&v| degrees[v as usize] as f64 > avg);
        if sort_hot && bucket_is_hot {
            members.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
        }
        order.extend_from_slice(&members);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::barabasi_albert;
    use igcn_graph::NodeId;

    #[test]
    fn both_are_valid_permutations() {
        let g = barabasi_albert(200, 2, 9);
        assert_eq!(DbgHubSort.reorder(&g).len(), 200);
        assert_eq!(DbgHubCluster.reorder(&g).len(), 200);
    }

    #[test]
    fn hubsort_variant_sorts_hot_head() {
        let g = barabasi_albert(300, 3, 10);
        let p = DbgHubSort.reorder(&g);
        let degrees = g.degrees();
        let inv = p.inverse();
        // The first few positions must be non-increasing in degree (they
        // all come from the hottest, sorted bucket).
        let d0 = degrees[inv.map(NodeId::new(0)).index()];
        let d1 = degrees[inv.map(NodeId::new(1)).index()];
        assert!(d0 >= d1, "head of dbg-hubsort not degree-sorted: {d0} < {d1}");
    }

    #[test]
    fn cluster_variant_is_stable_everywhere() {
        let g = barabasi_albert(150, 2, 11);
        let p = DbgHubCluster.reorder(&g);
        let degrees = g.degrees();
        let max_bucket = degrees.iter().map(|&d| bucket_of(d)).max().unwrap();
        for b in 0..=max_bucket {
            let nodes: Vec<u32> =
                (0..150u32).filter(|&v| bucket_of(degrees[v as usize]) == b).collect();
            let pos: Vec<usize> = nodes.iter().map(|&v| p.map(NodeId::new(v)).index()).collect();
            assert!(pos.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn variants_differ_on_skewed_graphs() {
        let g = barabasi_albert(400, 3, 12);
        assert_ne!(DbgHubSort.reorder(&g), DbgHubCluster.reorder(&g));
    }
}
