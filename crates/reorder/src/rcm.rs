//! Reverse Cuthill-McKee bandwidth reduction.

use igcn_graph::{CsrGraph, NodeId, Permutation};

use crate::traits::{order_to_permutation, Reorderer};

/// Classic RCM: BFS from a minimum-degree node, visiting neighbors in
/// ascending-degree order, then reverse the visitation sequence. A
/// supplementary baseline — bandwidth-style orderings are the traditional
/// sparse-matrix answer to the locality problem islandization solves at
/// runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rcm;

impl Reorderer for Rcm {
    fn name(&self) -> String {
        "rcm".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        let n = graph.num_nodes();
        let degrees = graph.degrees();
        let mut visited = vec![false; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);

        // Process every connected component, seeding from its
        // minimum-degree node.
        let mut seeds: Vec<u32> = (0..n as u32).collect();
        seeds.sort_by_key(|&v| (degrees[v as usize], v));
        for &seed in &seeds {
            if visited[seed as usize] {
                continue;
            }
            visited[seed as usize] = true;
            let mut queue = std::collections::VecDeque::from([seed]);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                let mut nbs: Vec<u32> = graph
                    .neighbors(NodeId::new(v))
                    .iter()
                    .copied()
                    .filter(|&nb| !visited[nb as usize])
                    .collect();
                nbs.sort_by_key(|&nb| (degrees[nb as usize], nb));
                for nb in nbs {
                    if !visited[nb as usize] {
                        visited[nb as usize] = true;
                        queue.push_back(nb);
                    }
                }
            }
        }
        order.reverse();
        order_to_permutation("rcm", &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::erdos_renyi;
    use igcn_graph::stats::mean_edge_span;
    use igcn_graph::Permutation as P;

    #[test]
    fn valid_permutation() {
        let g = erdos_renyi(150, 400, 18);
        assert_eq!(Rcm.reorder(&g).len(), 150);
    }

    #[test]
    fn reduces_span_of_scrambled_path() {
        // A path graph scrambled by a random relabelling; RCM must
        // recover near-optimal (span ≈ 1) ordering.
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let path = CsrGraph::from_undirected_edges(100, &edges).unwrap();
        let scramble = P::from_forward((0..100u32).map(|v| (v * 37) % 100).collect()).unwrap();
        let scrambled = path.permute(&scramble).unwrap();
        let before = mean_edge_span(&scrambled, None);
        let p = Rcm.reorder(&scrambled);
        let after = mean_edge_span(&scrambled, Some(&p));
        assert!(after < before / 4.0, "RCM span {after} vs scrambled {before}");
        assert!(after < 1.5, "path graph should be near-perfectly banded, got {after}");
    }

    #[test]
    fn covers_disconnected_components() {
        let g = CsrGraph::from_undirected_edges(7, &[(0, 1), (2, 3), (5, 6)]).unwrap();
        assert_eq!(Rcm.reorder(&g).len(), 7);
    }
}
