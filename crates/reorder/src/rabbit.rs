//! Rabbit-Order-style community clustering (Arai et al., IPDPS'16).
//!
//! Rabbit Order performs hierarchical community merging by modularity
//! gain and then assigns contiguous IDs per community. This
//! implementation keeps the two essential phases — community detection,
//! then contiguous per-community numbering — but replaces the incremental
//! aggregation with bounded-pass label propagation, which is the standard
//! lightweight approximation (documented deviation; same asymptotic cost
//! class and the same output *shape*: communities packed contiguously).

use igcn_graph::{CsrGraph, NodeId, Permutation};

use crate::traits::{order_to_permutation, Reorderer};

/// Rabbit-like community ordering.
#[derive(Debug, Clone, Copy)]
pub struct Rabbit {
    passes: usize,
}

impl Rabbit {
    /// Creates the reorderer with a custom number of label-propagation
    /// passes.
    ///
    /// # Panics
    ///
    /// Panics if `passes == 0`.
    pub fn new(passes: usize) -> Self {
        assert!(passes > 0, "at least one pass is required");
        Rabbit { passes }
    }
}

impl Default for Rabbit {
    /// Four passes, enough for label convergence on the evaluation-scale
    /// graphs.
    fn default() -> Self {
        Rabbit { passes: 4 }
    }
}

impl Reorderer for Rabbit {
    fn name(&self) -> String {
        "rabbit".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        let n = graph.num_nodes();
        let mut labels: Vec<u32> = (0..n as u32).collect();
        let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for _ in 0..self.passes {
            let mut changed = false;
            for v in 0..n {
                let neighbors = graph.neighbors(NodeId::new(v as u32));
                if neighbors.is_empty() {
                    continue;
                }
                counts.clear();
                for &nb in neighbors {
                    *counts.entry(labels[nb as usize]).or_insert(0) += 1;
                }
                // Most frequent neighbor label; ties to the smallest label
                // for determinism.
                let (&best, _) = counts
                    .iter()
                    .max_by_key(|&(&label, &c)| (c, std::cmp::Reverse(label)))
                    .expect("non-empty counts");
                if best != labels[v] {
                    labels[v] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Contiguous numbering: communities ordered by their smallest
        // member, nodes within a community in ascending ID.
        let mut groups: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for v in 0..n as u32 {
            groups.entry(labels[v as usize]).or_default().push(v);
        }
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut sized: Vec<(usize, u32)> =
            groups.iter().map(|(&label, members)| (members.len(), label)).collect();
        // Large communities first (Rabbit packs the dense cores together).
        sized.sort_by_key(|&(len, label)| (std::cmp::Reverse(len), label));
        for (_, label) in sized {
            order.extend_from_slice(&groups[&label]);
        }
        order_to_permutation("rabbit", &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::HubIslandConfig;
    use igcn_graph::stats::mean_edge_span;

    #[test]
    fn improves_locality_on_clustered_graphs() {
        let g = HubIslandConfig::new(600, 20).noise_fraction(0.0).generate(13);
        // The generator scatters island members over the ID space, so the
        // natural order has terrible locality; rabbit must improve it.
        let scrambled_span = mean_edge_span(&g.graph, None);
        let p = Rabbit::default().reorder(&g.graph);
        let rabbit_span = mean_edge_span(&g.graph, Some(&p));
        assert!(
            rabbit_span < scrambled_span * 0.8,
            "rabbit span {rabbit_span} vs natural {scrambled_span}"
        );
    }

    #[test]
    fn valid_on_disconnected_graphs() {
        let g = CsrGraph::from_undirected_edges(6, &[(0, 1), (2, 3)]).unwrap();
        let p = Rabbit::default().reorder(&g);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn deterministic() {
        let g = HubIslandConfig::new(200, 8).generate(14);
        assert_eq!(Rabbit::default().reorder(&g.graph), Rabbit::default().reorder(&g.graph));
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_panics() {
        let _ = Rabbit::new(0);
    }
}
