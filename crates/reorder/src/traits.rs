//! The reorderer interface.

use igcn_graph::{CsrGraph, Permutation};

/// A graph reordering algorithm: computes a node relabelling intended to
/// improve locality.
///
/// Implementations must return a valid permutation over exactly
/// `graph.num_nodes()` elements for every input, including empty and
/// disconnected graphs.
pub trait Reorderer {
    /// Algorithm name as used in figures (e.g. `"rabbit"`, `"dbg"`).
    fn name(&self) -> String;

    /// Computes the reordering (`forward[old] = new`).
    fn reorder(&self, graph: &CsrGraph) -> Permutation;
}

/// Helper: builds a permutation from a *new-order sequence* of old node
/// IDs, panicking with the algorithm name on an internal invariant
/// violation (reorderers construct orders that are permutations by
/// construction).
pub(crate) fn order_to_permutation(name: &str, order: &[u32]) -> Permutation {
    Permutation::from_order(order)
        .unwrap_or_else(|e| panic!("{name} produced an invalid ordering: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_to_permutation_valid() {
        let p = order_to_permutation("test", &[2, 0, 1]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "test produced an invalid ordering")]
    fn order_to_permutation_invalid_panics() {
        let _ = order_to_permutation("test", &[0, 0]);
    }
}
