//! SlashBurn (Lim, Kang, Faloutsos, TKDE'14).
//!
//! SlashBurn iteratively *slashes* the top-k highest-degree nodes (moving
//! them to the front of the ordering) and *burns* the remainder into
//! connected components: small components move to the back, the giant
//! component is recursed upon. The result concentrates non-zeros toward
//! the matrix corners. The paper cites SlashBurn as the heavyweight
//! clustering comparison — effective but expensive and sequential, hence
//! "hardware-unfriendly and unsuited for GNN acceleration" (§5).

use igcn_graph::{CsrGraph, NodeId, Permutation};

use crate::traits::{order_to_permutation, Reorderer};

/// SlashBurn ordering.
#[derive(Debug, Clone, Copy)]
pub struct SlashBurn {
    /// Fraction of (remaining) nodes slashed per round.
    k_fraction: f64,
}

impl SlashBurn {
    /// Creates SlashBurn slashing `k_fraction` of the remaining nodes per
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if `k_fraction` is not in `(0, 1)`.
    pub fn new(k_fraction: f64) -> Self {
        assert!(k_fraction > 0.0 && k_fraction < 1.0, "k_fraction must be in (0, 1)");
        SlashBurn { k_fraction }
    }
}

impl Default for SlashBurn {
    /// The paper's customary 0.5% per round.
    fn default() -> Self {
        SlashBurn { k_fraction: 0.005 }
    }
}

impl Reorderer for SlashBurn {
    fn name(&self) -> String {
        "slashburn".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        let n = graph.num_nodes();
        if n == 0 {
            return Permutation::identity(0);
        }
        let mut front: Vec<u32> = Vec::new(); // slashed hubs, in slash order
        let mut back: Vec<u32> = Vec::new(); // small components, reversed rounds
        let mut alive: Vec<bool> = vec![true; n];
        let mut alive_count = n;

        while alive_count > 0 {
            let k = (((alive_count as f64) * self.k_fraction).ceil() as usize).max(1);
            // Residual degrees of alive nodes.
            let mut candidates: Vec<(u32, u32)> = (0..n as u32)
                .filter(|&v| alive[v as usize])
                .map(|v| {
                    let deg = graph
                        .neighbors(NodeId::new(v))
                        .iter()
                        .filter(|&&nb| alive[nb as usize] && nb != v)
                        .count() as u32;
                    (deg, v)
                })
                .collect();
            candidates.sort_by_key(|&(deg, v)| (std::cmp::Reverse(deg), v));
            for &(_, v) in candidates.iter().take(k) {
                front.push(v);
                alive[v as usize] = false;
                alive_count -= 1;
            }
            if alive_count == 0 {
                break;
            }
            // Burn: connected components of the residual graph.
            let mut component = vec![u32::MAX; n];
            let mut comps: Vec<Vec<u32>> = Vec::new();
            for start in 0..n as u32 {
                if !alive[start as usize] || component[start as usize] != u32::MAX {
                    continue;
                }
                let id = comps.len() as u32;
                let mut members = vec![start];
                component[start as usize] = id;
                let mut head = 0;
                while head < members.len() {
                    let v = members[head];
                    head += 1;
                    for &nb in graph.neighbors(NodeId::new(v)) {
                        if alive[nb as usize] && component[nb as usize] == u32::MAX {
                            component[nb as usize] = id;
                            members.push(nb);
                        }
                    }
                }
                comps.push(members);
            }
            // The giant component survives to the next round; all others
            // are retired to the back (smallest last, matching the
            // corner-concentration layout).
            comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
            for comp in comps.iter().skip(1) {
                for &v in comp {
                    alive[v as usize] = false;
                    alive_count -= 1;
                }
            }
            let mut retired: Vec<u32> = Vec::new();
            for comp in comps.iter().skip(1) {
                retired.extend_from_slice(comp);
            }
            // Prepend this round's retirees so later rounds sit closer to
            // the slashed hubs.
            retired.append(&mut back);
            back = retired;

            // Termination: if the giant component is no bigger than k,
            // slash it entirely next-round-equivalent and finish.
            if comps.is_empty() {
                break;
            }
        }
        let mut order = front;
        order.extend_from_slice(&back);
        order_to_permutation("slashburn", &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::{barabasi_albert, HubIslandConfig};

    #[test]
    fn valid_permutation() {
        let g = barabasi_albert(200, 2, 15);
        let p = SlashBurn::default().reorder(&g);
        assert_eq!(p.len(), 200);
    }

    #[test]
    fn hubs_land_in_front() {
        let g = barabasi_albert(300, 3, 16);
        let p = SlashBurn::default().reorder(&g);
        let degrees = g.degrees();
        let hottest = (0..300u32).max_by_key(|&v| degrees[v as usize]).unwrap();
        assert!(p.map(NodeId::new(hottest)).index() < 30, "hottest node should be slashed early");
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = CsrGraph::from_undirected_edges(8, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let p = SlashBurn::default().reorder(&g);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn clusters_structured_graphs() {
        let g = HubIslandConfig::new(400, 16).noise_fraction(0.0).generate(17);
        let p = SlashBurn::default().reorder(&g.graph);
        assert_eq!(p.len(), 400);
    }

    #[test]
    #[should_panic(expected = "k_fraction")]
    fn invalid_fraction_panics() {
        let _ = SlashBurn::new(1.5);
    }
}
