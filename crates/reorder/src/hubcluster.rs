//! HubCluster (Faldu et al. taxonomy).

use igcn_graph::{CsrGraph, Permutation};

use crate::traits::{order_to_permutation, Reorderer};

/// HubCluster: hot vertices (degree above the average) are packed to the
/// front *without sorting* — cheaper than HubSort, preserving the
/// appearance order of both hot and cold vertices.
#[derive(Debug, Clone, Copy, Default)]
pub struct HubCluster;

impl Reorderer for HubCluster {
    fn name(&self) -> String {
        "hubcluster".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        let degrees = graph.degrees();
        let avg = graph.avg_degree();
        let mut order: Vec<u32> = Vec::with_capacity(graph.num_nodes());
        for v in 0..graph.num_nodes() as u32 {
            if degrees[v as usize] as f64 > avg {
                order.push(v);
            }
        }
        for v in 0..graph.num_nodes() as u32 {
            if degrees[v as usize] as f64 <= avg {
                order.push(v);
            }
        }
        order_to_permutation("hubcluster", &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::barabasi_albert;
    use igcn_graph::NodeId;

    #[test]
    fn hot_before_cold() {
        let g = barabasi_albert(200, 2, 5);
        let p = HubCluster.reorder(&g);
        let degrees = g.degrees();
        let avg = g.avg_degree();
        let max_hot_pos = (0..200u32)
            .filter(|&v| degrees[v as usize] as f64 > avg)
            .map(|v| p.map(NodeId::new(v)).index())
            .max()
            .unwrap();
        let min_cold_pos = (0..200u32)
            .filter(|&v| degrees[v as usize] as f64 <= avg)
            .map(|v| p.map(NodeId::new(v)).index())
            .min()
            .unwrap();
        assert!(max_hot_pos < min_cold_pos);
    }

    #[test]
    fn hot_order_unsorted_but_stable() {
        let g = barabasi_albert(100, 2, 6);
        let p = HubCluster.reorder(&g);
        let degrees = g.degrees();
        let avg = g.avg_degree();
        let hot: Vec<u32> = (0..100u32).filter(|&v| degrees[v as usize] as f64 > avg).collect();
        let positions: Vec<usize> = hot.iter().map(|&v| p.map(NodeId::new(v)).index()).collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }
}
