//! Degree-Based Grouping (Faldu et al., IISWC'19).

use igcn_graph::{CsrGraph, Permutation};

use crate::traits::{order_to_permutation, Reorderer};

/// DBG: vertices are partitioned into power-of-two degree buckets;
/// buckets are laid out hottest-first, and vertices keep their relative
/// order inside a bucket. Coarser (and cheaper) than a full sort, DBG
/// preserves intra-bucket spatial locality of the original layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dbg;

/// Bucket index of a degree: `floor(log2(d + 1))`.
pub(crate) fn bucket_of(degree: u32) -> u32 {
    (degree + 1).ilog2()
}

impl Reorderer for Dbg {
    fn name(&self) -> String {
        "dbg".to_string()
    }

    fn reorder(&self, graph: &CsrGraph) -> Permutation {
        let degrees = graph.degrees();
        let max_bucket = degrees.iter().map(|&d| bucket_of(d)).max().unwrap_or(0);
        let mut order: Vec<u32> = Vec::with_capacity(graph.num_nodes());
        for bucket in (0..=max_bucket).rev() {
            for v in 0..graph.num_nodes() as u32 {
                if bucket_of(degrees[v as usize]) == bucket {
                    order.push(v);
                }
            }
        }
        order_to_permutation("dbg", &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::barabasi_albert;
    use igcn_graph::NodeId;

    #[test]
    fn bucket_function() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(7), 3);
    }

    #[test]
    fn buckets_are_descending() {
        let g = barabasi_albert(300, 2, 7);
        let p = Dbg.reorder(&g);
        let degrees = g.degrees();
        let inv = p.inverse();
        let mut last_bucket = u32::MAX;
        for pos in 0..300u32 {
            let old = inv.map(NodeId::new(pos)).value();
            let b = bucket_of(degrees[old as usize]);
            assert!(b <= last_bucket || last_bucket == u32::MAX, "bucket rose at {pos}");
            if b < last_bucket {
                last_bucket = b;
            }
        }
    }

    #[test]
    fn stable_within_bucket() {
        let g = barabasi_albert(120, 2, 8);
        let p = Dbg.reorder(&g);
        let degrees = g.degrees();
        // Collect all positions of nodes in each bucket; within a bucket
        // positions must respect ascending node ID.
        let max_bucket = degrees.iter().map(|&d| bucket_of(d)).max().unwrap();
        for b in 0..=max_bucket {
            let nodes: Vec<u32> =
                (0..120u32).filter(|&v| bucket_of(degrees[v as usize]) == b).collect();
            let pos: Vec<usize> = nodes.iter().map(|&v| p.map(NodeId::new(v)).index()).collect();
            assert!(pos.windows(2).all(|w| w[0] < w[1]), "bucket {b} order broken");
        }
    }
}
