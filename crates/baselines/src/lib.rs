//! Behavioural simulators of the comparison platforms.
//!
//! The paper's cross-platform evaluation (§4.6, Figure 14, Table 2) pits
//! I-GCN against prior GCN accelerators, an SpMM accelerator, and
//! PyG/DGL software stacks on server CPUs and GPUs. This crate models
//! each of them at the dataflow level, sharing the
//! [`igcn_sim::GcnAccelerator`] trait so the Figure 14 harness iterates
//! one list:
//!
//! * [`awbgcn::AwbGcn`] — PUSH-column-wise with runtime workload
//!   autotuning (MICRO'20): sparsity-aware compute, result-matrix
//!   spill passes over the adjacency when `n × h` exceeds on-chip SRAM;
//! * [`hygcn::HyGcn`] — hybrid PULL architecture with window-based
//!   sparsity elimination (HPCA'20): aggregation-first over raw features,
//!   dense systolic combination;
//! * [`sigma::Sigma`] — flexible-interconnect sparse GEMM engine
//!   (HPCA'20): high MAC utilization but no graph-aware locality;
//! * [`platform`] — calibrated roofline + framework-overhead models of
//!   the PyG/DGL CPU and GPU baselines;
//! * [`methods`] — the measured PULL/PUSH/islandization comparison behind
//!   Table 1.
//!
//! Model constants are calibrated to published results (each module
//! documents its calibration anchors); the reproduction target is the
//! *shape* of Figure 14 and Table 2, not absolute numbers.

pub mod awbgcn;
pub mod hygcn;
pub mod methods;
pub mod platform;
pub mod sigma;

pub use awbgcn::AwbGcn;
pub use hygcn::HyGcn;
pub use platform::{Platform, PlatformKind};
pub use sigma::Sigma;
