//! Behavioural simulators of the comparison platforms.
//!
//! The paper's cross-platform evaluation (§4.6, Figure 14, Table 2) pits
//! I-GCN against prior GCN accelerators, an SpMM accelerator, and
//! PyG/DGL software stacks on server CPUs and GPUs. This crate models
//! each of them at the dataflow level, sharing the
//! [`igcn_sim::GcnAccelerator`] trait so the Figure 14 harness iterates
//! one list:
//!
//! * [`awbgcn::AwbGcn`] — PUSH-column-wise with runtime workload
//!   autotuning (MICRO'20): sparsity-aware compute, result-matrix
//!   spill passes over the adjacency when `n × h` exceeds on-chip SRAM;
//! * [`hygcn::HyGcn`] — hybrid PULL architecture with window-based
//!   sparsity elimination (HPCA'20): aggregation-first over raw features,
//!   dense systolic combination;
//! * [`sigma::Sigma`] — flexible-interconnect sparse GEMM engine
//!   (HPCA'20): high MAC utilization but no graph-aware locality;
//! * [`platform`] — calibrated roofline + framework-overhead models of
//!   the PyG/DGL CPU and GPU baselines;
//! * [`methods`] — the measured PULL/PUSH/islandization comparison behind
//!   Table 1.
//!
//! Every model here also serves through the unified
//! [`igcn_core::accel::Accelerator`] trait via `igcn_sim::SimBackend`
//! (see the `*Backend` aliases), so serving harnesses and the backend
//! conformance suite treat them exactly like the real engine.
//!
//! Model constants are calibrated to published results (each module
//! documents its calibration anchors); the reproduction target is the
//! *shape* of Figure 14 and Table 2, not absolute numbers.

pub mod awbgcn;
pub mod hygcn;
pub mod methods;
pub mod platform;
pub mod sigma;

pub use awbgcn::AwbGcn;
pub use hygcn::HyGcn;
pub use platform::{Platform, PlatformKind};
pub use sigma::Sigma;

/// AWB-GCN behind the unified [`igcn_core::accel::Accelerator`] trait.
pub type AwbGcnBackend = igcn_sim::SimBackend<AwbGcn>;
/// HyGCN behind the unified [`igcn_core::accel::Accelerator`] trait.
pub type HyGcnBackend = igcn_sim::SimBackend<HyGcn>;
/// SIGMA behind the unified [`igcn_core::accel::Accelerator`] trait.
pub type SigmaBackend = igcn_sim::SimBackend<Sigma>;
/// A CPU/GPU software platform behind the unified
/// [`igcn_core::accel::Accelerator`] trait.
pub type PlatformBackend = igcn_sim::SimBackend<Platform>;
