//! AWB-GCN (Geng et al., MICRO 2020) behavioural model.
//!
//! AWB-GCN executes both multiplications of Equation 1 as
//! PUSH-column-wise SpMM with three levels of runtime workload
//! autotuning. It exploits sparsity in both `X` and `A`, so its operation
//! count equals I-GCN's *unpruned* workload. Its two structural handicaps
//! against I-GCN are:
//!
//! 1. **result-matrix locality** — partial results of `Ã·(XW)` are
//!    scattered; when the `n × h` partial buffer exceeds on-chip SRAM the
//!    adjacency must be re-streamed once per result tile (§1 of the
//!    I-GCN paper: "does not address the data locality problem ... which
//!    can be the most critical problem for large graphs");
//! 2. **utilization transients** — autotuning converges over a warm-up
//!    period and the pipeline drains between the two chained SpMMs, which
//!    bounds sustained utilization below I-GCN's fine-grained island
//!    pipeline (calibration anchor: published Cora latency 2.3 µs vs the
//!    1.33 M-op workload implies ≈ 0.45 sustained utilization on tiny
//!    graphs; large graphs reach ≈ 0.8).

use igcn_gnn::{GnnModel, ModelWorkload};
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_sim::memory::{effective_streaming_bytes, AccessPattern};
use igcn_sim::{DramModel, EnergyModel, GcnAccelerator, HardwareConfig, MacArray, SimReport};

/// The AWB-GCN model.
#[derive(Debug, Clone)]
pub struct AwbGcn {
    hw: HardwareConfig,
    energy: EnergyModel,
}

impl AwbGcn {
    /// Creates the model. The paper's comparison config is the same FPGA
    /// budget as I-GCN: 4096 fp32 MACs at 330 MHz.
    pub fn new(hw: HardwareConfig) -> Self {
        AwbGcn { hw, energy: EnergyModel::fpga_default() }
    }

    /// Sustained MAC utilization: autotuning needs work to balance; tiny
    /// graphs never leave the transient.
    fn utilization(&self, total_ops: u64) -> f64 {
        // Ramp from 0.45 on ~1M-op graphs to 0.8 asymptotically.
        let m = total_ops as f64 / 1.0e6;
        0.45 + 0.35 * (m / (m + 20.0))
    }

    /// Off-chip traffic of one layer, split into (sequential, random).
    fn layer_traffic(
        &self,
        graph: &CsrGraph,
        features: &SparseFeatures,
        layer_idx: usize,
        in_dim: usize,
        out_dim: usize,
    ) -> (u64, u64) {
        let n = graph.num_nodes() as u64;
        let nnz_a = graph.num_directed_edges() as u64 + n; // + self loops
        let f32b = 4u64;
        let idx = 4u64;

        // Partial-result buffer for Ã·(XW): n × out_dim words. When it
        // does not fit in the SRAM share, the adjacency streams once per
        // result tile.
        let xo_bytes = n * out_dim as u64 * f32b;
        let buffer = (self.hw.sram_bytes as f64 * 0.8) as u64;
        let passes = xo_bytes.div_ceil(buffer.max(1)).max(1);

        let adjacency = nnz_a * (idx + f32b) * passes;
        let input = if layer_idx == 0 {
            features.nnz() as u64 * (f32b + idx)
        } else {
            n * in_dim as u64 * f32b
        };
        // The chained SpMM buffers XW on-chip when possible; otherwise it
        // round-trips DRAM.
        let xw_bytes = n * out_dim as u64 * f32b;
        let xw_roundtrip = if xw_bytes <= buffer { 0 } else { 2 * xw_bytes };
        let output = n * out_dim as u64 * f32b;
        let weights = (in_dim * out_dim) as u64 * f32b;

        let sequential = adjacency + input + weights + xw_roundtrip;
        // Scattered partial-result updates that spill.
        let random = if passes > 1 { output } else { 0 };
        (sequential + if passes > 1 { 0 } else { output }, random)
    }
}

impl GcnAccelerator for AwbGcn {
    fn name(&self) -> String {
        "AWB-GCN".to_string()
    }

    fn simulate(&self, graph: &CsrGraph, features: &SparseFeatures, model: &GnnModel) -> SimReport {
        let workload = ModelWorkload::compute(graph, features, model);
        let dram = DramModel::new(&self.hw);
        let total_ops = workload.total_ops();
        let macs = MacArray::with_params(self.hw.num_macs, self.utilization(total_ops));
        let resident = (self.hw.sram_bytes as f64 * 0.8) as u64;

        let mut cycles = 0u64;
        let mut compute_cycles = 0u64;
        let mut memory_cycles = 0u64;
        let mut total_bytes = 0u64;
        for (i, layer) in model.layers().iter().enumerate() {
            let ops = workload.layers()[i].total_ops();
            let compute = macs.cycles_for(ops);
            let (seq, rnd) = self.layer_traffic(graph, features, i, layer.in_dim, layer.out_dim);
            total_bytes += seq + rnd;
            let seq_stream = effective_streaming_bytes(seq, resident);
            let mem_s = dram.transfer_seconds(seq_stream, AccessPattern::Sequential)
                + dram.transfer_seconds(rnd, AccessPattern::Random);
            let memory = self.hw.seconds_to_cycles(mem_s);
            // Inter-SpMM pipeline drain between combination and
            // aggregation plus autotuning warm-up.
            let overhead = 250;
            cycles += compute.max(memory) + overhead;
            compute_cycles += compute;
            memory_cycles += memory;
        }
        let latency_s = self.hw.cycles_to_seconds(cycles);
        let sram_bytes = total_ops * 12;
        let energy_j = self.energy.energy_joules(total_ops, total_bytes, sram_bytes, latency_s);
        SimReport {
            name: self.name(),
            latency_s,
            cycles,
            compute_cycles,
            memory_cycles,
            locator_cycles: 0,
            offchip_bytes: total_bytes,
            total_ops,
            energy_j,
            graphs_per_kilojoule: self.energy.graphs_per_kilojoule(energy_j),
            // AWB-GCN already models PE-array utilisation explicitly.
            worker_utilisation: self.utilization(total_ops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_gnn::{GnnKind, ModelConfig};
    use igcn_graph::datasets::Dataset;

    fn cora_small() -> (CsrGraph, SparseFeatures, GnnModel) {
        let d = Dataset::Cora.generate_scaled(0.25, 1);
        let model = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
        (d.graph, d.features, model)
    }

    #[test]
    fn produces_positive_latency() {
        let (g, x, m) = cora_small();
        let r = AwbGcn::new(HardwareConfig::paper_default()).simulate(&g, &x, &m);
        assert!(r.latency_s > 0.0);
        assert!(r.total_ops > 0);
        assert_eq!(r.locator_cycles, 0);
    }

    #[test]
    fn utilization_ramps_with_size() {
        let a = AwbGcn::new(HardwareConfig::paper_default());
        assert!(a.utilization(1_000_000) < a.utilization(1_000_000_000));
        assert!(a.utilization(u64::MAX / 2) < 0.81);
    }

    #[test]
    fn small_graph_is_microsecond_scale() {
        let (g, x, m) = cora_small();
        let r = AwbGcn::new(HardwareConfig::paper_default()).simulate(&g, &x, &m);
        assert!(r.latency_us() < 100.0, "got {} µs", r.latency_us());
    }

    #[test]
    fn result_spill_adds_adjacency_passes() {
        // Force a tiny SRAM so the partial-result buffer spills.
        let mut hw = HardwareConfig::paper_default();
        hw.sram_bytes = 1 << 12;
        let (g, x, m) = cora_small();
        let spilled = AwbGcn::new(hw).simulate(&g, &x, &m);
        let roomy = AwbGcn::new(HardwareConfig::paper_default()).simulate(&g, &x, &m);
        assert!(spilled.offchip_bytes > roomy.offchip_bytes);
    }
}
