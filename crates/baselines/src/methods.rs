//! Measured PULL vs PUSH vs Islandization comparison (Table 1).
//!
//! Table 1 of the paper is qualitative ("Low/High/Yes/No"); this module
//! regenerates it with *measured* quantities for a given graph and layer
//! shape, so the qualitative entries can be checked:
//!
//! | column | measured as |
//! |---|---|
//! | On-chip storage | minimum working buffer bytes |
//! | Off-chip access | bytes for one `Ã·(XW)` aggregation |
//! | Reuse XW | average fetches of each `XW` row |
//! | Reuse A | adjacency streaming passes |
//! | Reuse Xo | average off-chip touches of each result row |
//! | Load imbalance | Gini coefficient of per-work-unit op counts |
//! | Redundancy removal | measured prunable fraction (islandization) |

use serde::Serialize;

use igcn_core::{islandize, IslandizationConfig};
use igcn_graph::{CsrGraph, NodeId};

/// Measured Table 1 row for one aggregation method.
#[derive(Debug, Clone, Serialize)]
pub struct MethodProfile {
    /// Method name (`"PULL"`, `"PUSH"`, `"Islandization"`).
    pub method: String,
    /// Minimum on-chip working buffer in bytes.
    pub onchip_buffer_bytes: u64,
    /// Off-chip bytes for one aggregation pass.
    pub offchip_bytes: u64,
    /// Average number of fetches of each `XW` row.
    pub xw_fetches_per_row: f64,
    /// Number of adjacency streaming passes.
    pub a_passes: f64,
    /// Average off-chip touches of each output row.
    pub xo_touches_per_row: f64,
    /// Load imbalance as excess execution time over the perfectly
    /// balanced ideal (`makespan / (total / lanes) − 1`; 0 = balanced).
    pub load_imbalance_gini: f64,
    /// Fraction of aggregation ops removable as shared-neighbor
    /// redundancy (0 when the method cannot find them).
    pub prunable_fraction: f64,
}

/// Imbalance of lock-step wave execution: `lanes` units process
/// consecutive work items in waves; each wave takes as long as its
/// longest item (the PULL/PUSH row/column hazard on power-law graphs).
fn imbalance_static_waves(work: &[u64], lanes: usize) -> f64 {
    let total: u64 = work.iter().sum();
    if total == 0 || work.is_empty() {
        return 0.0;
    }
    let mut time = 0u64;
    for wave in work.chunks(lanes.max(1)) {
        time += *wave.iter().max().expect("non-empty chunk");
    }
    let ideal = total as f64 / lanes as f64;
    (time as f64 / ideal - 1.0).max(0.0)
}

/// Imbalance of dynamic dispatch: tasks go to the least-loaded (idle) PE
/// in arrival order — the Island Collector's policy. Bounded task sizes
/// keep the makespan near ideal.
fn imbalance_greedy(work: &[u64], pes: usize) -> f64 {
    let total: u64 = work.iter().sum();
    if total == 0 || work.is_empty() {
        return 0.0;
    }
    let mut loads = vec![0u64; pes.max(1)];
    for &w in work {
        let min = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .map(|(i, _)| i)
            .expect("non-empty loads");
        loads[min] += w;
    }
    let makespan = *loads.iter().max().expect("non-empty loads") as f64;
    let ideal = total as f64 / pes as f64;
    (makespan / ideal - 1.0).max(0.0)
}

/// Profiles the three aggregation methods of Table 1 over one graph and
/// layer width.
pub fn profile_methods(graph: &CsrGraph, out_dim: usize) -> Vec<MethodProfile> {
    const F32: u64 = 4;
    const ENTRY: u64 = 8; // index + value
    let n = graph.num_nodes() as u64;
    let nnz = graph.num_directed_edges() as u64;
    let out = out_dim as u64;
    let avg_degree = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
    const LANES: usize = 8;

    // PULL-row-wise: output row buffered; every non-zero pulls a full XW
    // row from off-chip.
    let pull = MethodProfile {
        method: "PULL".to_string(),
        onchip_buffer_bytes: out * F32,
        offchip_bytes: nnz * ENTRY + nnz * out * F32 + n * out * F32,
        xw_fetches_per_row: avg_degree,
        a_passes: 1.0,
        xo_touches_per_row: 1.0,
        load_imbalance_gini: imbalance_static_waves(
            &graph.iter_nodes().map(|v| graph.degree(v) as u64).collect::<Vec<_>>(),
            LANES,
        ),
        prunable_fraction: 0.0,
    };

    // PUSH-column-wise: one result column buffered; the adjacency streams
    // once per output channel; XW read once.
    let push = MethodProfile {
        method: "PUSH".to_string(),
        onchip_buffer_bytes: n * F32,
        offchip_bytes: nnz * ENTRY * out + n * out * F32 + n * out * F32,
        xw_fetches_per_row: 1.0,
        a_passes: out as f64,
        xo_touches_per_row: 1.0,
        // Column (push-source) distribution == degree distribution on a
        // symmetric graph.
        load_imbalance_gini: imbalance_static_waves(
            &graph.iter_nodes().map(|v| graph.degree(v) as u64).collect::<Vec<_>>(),
            LANES,
        ),
        prunable_fraction: 0.0,
    };

    // Islandization: measured from an actual partition.
    let partition = islandize(graph, &IslandizationConfig::default());
    let c_max = partition.c_max() as u64;
    let hub_rows = partition.num_hubs() as u64;
    // Working set: one island (c_max members + its hub contacts) of XW
    // rows and output rows, plus the on-chip hub caches.
    let onchip = 2 * c_max * out * F32 + 2 * hub_rows * out * F32;
    // Features once, adjacency ~once (BFS re-reads on dropped tasks are
    // counted by the locator; approximate with one pass here), outputs
    // once; hubs re-fetched never (cached).
    let offchip = nnz * ENTRY / 2 + n * out * F32 + n * out * F32;
    let per_island_ops: Vec<u64> = partition
        .islands()
        .iter()
        .map(|isl| {
            isl.nodes.iter().map(|&v| graph.degree(NodeId::new(v)) as u64).sum::<u64>().max(1)
        })
        .collect();
    // Hub XW rows are fetched once (cache) even though used by many
    // islands; island rows exactly once.
    let hub_uses: f64 =
        partition.islands().iter().map(|isl| isl.hubs.len() as f64).sum::<f64>().max(1.0);
    let xw_fetches = (n as f64) / (n as f64 + hub_uses - hub_rows as f64).max(1.0);
    let island = MethodProfile {
        method: "Islandization".to_string(),
        onchip_buffer_bytes: onchip,
        offchip_bytes: offchip,
        xw_fetches_per_row: xw_fetches.min(1.0),
        a_passes: 1.0,
        xo_touches_per_row: 1.0,
        load_imbalance_gini: imbalance_greedy(&per_island_ops, LANES),
        prunable_fraction: measured_prunable_fraction(graph, &partition),
    };

    vec![pull, push, island]
}

fn measured_prunable_fraction(graph: &CsrGraph, partition: &igcn_core::IslandPartition) -> f64 {
    use igcn_core::consumer::window::WindowDecision;
    let k = 2usize;
    let mut unpruned = 0u64;
    let mut executed = 0u64;
    for island in partition.islands() {
        let bm = island.bitmap(graph);
        let dim = bm.dim();
        for r in 0..dim {
            for g in 0..dim.div_ceil(k) {
                let size = k.min(dim - g * k);
                let mask = bm.window(r, g * k, k);
                unpruned += mask.count_ones() as u64;
                executed += WindowDecision::decide(mask, size, true).executed_ops() as u64;
            }
        }
    }
    if unpruned == 0 {
        0.0
    } else {
        1.0 - executed as f64 / unpruned as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::HubIslandConfig;

    fn profiles() -> Vec<MethodProfile> {
        let g = HubIslandConfig::new(500, 20).island_density(0.5).noise_fraction(0.0).generate(7);
        profile_methods(&g.graph, 16)
    }

    #[test]
    fn three_methods_profiled() {
        let p = profiles();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].method, "PULL");
        assert_eq!(p[1].method, "PUSH");
        assert_eq!(p[2].method, "Islandization");
    }

    #[test]
    fn pull_buffer_small_push_buffer_large() {
        let p = profiles();
        assert!(p[0].onchip_buffer_bytes < p[1].onchip_buffer_bytes);
    }

    #[test]
    fn islandization_lowest_offchip() {
        let p = profiles();
        assert!(p[2].offchip_bytes < p[0].offchip_bytes);
        assert!(p[2].offchip_bytes < p[1].offchip_bytes);
    }

    #[test]
    fn islandization_balanced_and_prunable() {
        let p = profiles();
        assert!(
            p[2].load_imbalance_gini < p[0].load_imbalance_gini,
            "islands {} vs pull {}",
            p[2].load_imbalance_gini,
            p[0].load_imbalance_gini
        );
        assert!(p[2].prunable_fraction > 0.05);
        assert_eq!(p[0].prunable_fraction, 0.0);
    }

    #[test]
    fn push_repeats_adjacency() {
        let p = profiles();
        assert!(p[1].a_passes > p[0].a_passes);
        assert!((p[0].xw_fetches_per_row - 1.0).abs() > 0.1, "pull refetches XW");
        assert!(p[2].xw_fetches_per_row <= 1.0);
    }

    #[test]
    fn wave_imbalance_of_equal_values_is_zero() {
        assert!(imbalance_static_waves(&[5, 5, 5, 5], 2).abs() < 1e-12);
        assert!(imbalance_static_waves(&[], 4).abs() < 1e-12);
        // One heavy item per wave of two: time = 10 + 10, ideal = 10.
        assert!(imbalance_static_waves(&[10, 0, 10, 0], 2) > 0.9);
    }

    #[test]
    fn greedy_imbalance_small_for_bounded_tasks() {
        let tasks = vec![3u64; 100];
        assert!(imbalance_greedy(&tasks, 8) < 0.1);
        assert!(imbalance_greedy(&[], 8).abs() < 1e-12);
    }
}
