//! Calibrated roofline models of the CPU/GPU software baselines.
//!
//! §4.6.2 compares against PyTorch-Geometric and DGL on two Xeon servers
//! and two datacenter GPUs. Those stacks cannot run here, so each
//! platform is a three-term model:
//!
//! ```text
//! latency = Σ_layers max(ops / (peak_flops · flop_eff),
//!                        bytes / (bandwidth · bw_eff))
//!           + num_layers · framework_overhead
//! ```
//!
//! Calibration anchors (published magnitudes the constants are fit to):
//! I-GCN's reported average speedups of 9568× (PyG-CPU), 1243× (DGL-CPU),
//! 368× (PyG-GPU), 453× (DGL-V100) on µs-scale accelerator latencies put
//! the CPU baselines at ~10 ms and the GPU baselines at ~0.5 ms for
//! citation graphs — framework-overhead dominated — while Reddit-scale
//! inputs become roofline-bound. The per-platform constants below encode
//! exactly that: large fixed overheads per layer, low sparse-kernel
//! efficiencies.

use igcn_gnn::{GnnModel, ModelWorkload};
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_sim::{EnergyModel, GcnAccelerator, SimReport};

/// Which software platform is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// PyTorch Geometric on an Intel Xeon E5-2680 v3.
    PygCpuE5_2680,
    /// DGL on an Intel Xeon E5-2683 v3.
    DglCpuE5_2683,
    /// PyTorch Geometric on an NVIDIA V100.
    PygGpuV100,
    /// PyTorch Geometric on an NVIDIA RTX 8000.
    PygGpuRtx8000,
    /// DGL on an NVIDIA V100.
    DglGpuV100,
}

impl PlatformKind {
    /// All five software baselines of Figure 14(B).
    pub const ALL: [PlatformKind; 5] = [
        PlatformKind::PygCpuE5_2680,
        PlatformKind::DglCpuE5_2683,
        PlatformKind::PygGpuV100,
        PlatformKind::PygGpuRtx8000,
        PlatformKind::DglGpuV100,
    ];
}

/// A calibrated software-platform model.
#[derive(Debug, Clone)]
pub struct Platform {
    kind: PlatformKind,
    name: &'static str,
    peak_flops: f64,
    flop_eff: f64,
    bandwidth: f64,
    bw_eff: f64,
    overhead_per_layer_s: f64,
    /// Cache-line amplification of scattered row gathers.
    gather_amplification: f64,
    idle_power_w: f64,
    busy_power_w: f64,
}

impl Platform {
    /// Builds the calibrated model for `kind`.
    pub fn new(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::PygCpuE5_2680 => Platform {
                kind,
                name: "PyG-CPU (E5-2680v3)",
                peak_flops: 0.96e12,
                flop_eff: 0.02,
                bandwidth: 68.0e9,
                bw_eff: 0.5,
                overhead_per_layer_s: 5.0e-3,
                gather_amplification: 4.0,
                idle_power_w: 60.0,
                busy_power_w: 120.0,
            },
            PlatformKind::DglCpuE5_2683 => Platform {
                kind,
                name: "DGL-CPU (E5-2683v3)",
                peak_flops: 0.9e12,
                flop_eff: 0.04,
                bandwidth: 68.0e9,
                bw_eff: 0.55,
                overhead_per_layer_s: 0.7e-3,
                gather_amplification: 3.0,
                idle_power_w: 60.0,
                busy_power_w: 120.0,
            },
            PlatformKind::PygGpuV100 => Platform {
                kind,
                name: "PyG-GPU (V100)",
                peak_flops: 14.0e12,
                flop_eff: 0.05,
                bandwidth: 900.0e9,
                bw_eff: 0.5,
                overhead_per_layer_s: 180.0e-6,
                gather_amplification: 2.0,
                idle_power_w: 50.0,
                busy_power_w: 250.0,
            },
            PlatformKind::PygGpuRtx8000 => Platform {
                kind,
                name: "PyG-GPU (RTX 8000)",
                peak_flops: 16.3e12,
                flop_eff: 0.045,
                bandwidth: 672.0e9,
                bw_eff: 0.5,
                overhead_per_layer_s: 150.0e-6,
                gather_amplification: 2.0,
                idle_power_w: 40.0,
                busy_power_w: 230.0,
            },
            PlatformKind::DglGpuV100 => Platform {
                kind,
                name: "DGL-GPU (V100)",
                peak_flops: 14.0e12,
                flop_eff: 0.06,
                bandwidth: 900.0e9,
                bw_eff: 0.55,
                overhead_per_layer_s: 230.0e-6,
                gather_amplification: 2.0,
                idle_power_w: 50.0,
                busy_power_w: 250.0,
            },
        }
    }

    /// The platform kind.
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }
}

impl GcnAccelerator for Platform {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn simulate(&self, graph: &CsrGraph, features: &SparseFeatures, model: &GnnModel) -> SimReport {
        let workload = ModelWorkload::compute(graph, features, model);
        let mut latency = 0.0f64;
        let mut total_bytes = 0u64;
        for lw in workload.layers() {
            let ops = lw.total_ops();
            // Software SpMM gathers whole cache lines per scattered row
            // access; model as a fixed amplification of the single-touch
            // traffic.
            let bytes = (lw.total_bytes() as f64 * self.gather_amplification) as u64;
            total_bytes += bytes;
            let compute_s = ops as f64 / (self.peak_flops * self.flop_eff);
            let memory_s = bytes as f64 / (self.bandwidth * self.bw_eff);
            latency += compute_s.max(memory_s) + self.overhead_per_layer_s;
        }
        let total_ops = workload.total_ops();
        let energy_j = latency * (self.idle_power_w + self.busy_power_w) / 2.0;
        let energy_model = EnergyModel::fpga_default();
        SimReport {
            name: self.name(),
            latency_s: latency,
            cycles: 0,
            compute_cycles: 0,
            memory_cycles: 0,
            locator_cycles: 0,
            offchip_bytes: total_bytes,
            total_ops,
            energy_j,
            graphs_per_kilojoule: energy_model.graphs_per_kilojoule(energy_j),
            worker_utilisation: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_gnn::{GnnKind, ModelConfig};
    use igcn_graph::datasets::Dataset;

    fn cora() -> (CsrGraph, SparseFeatures, GnnModel) {
        let d = Dataset::Cora.generate_scaled(0.25, 6);
        let model = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
        (d.graph, d.features, model)
    }

    #[test]
    fn cpu_is_millisecond_scale_on_citation_graphs() {
        let (g, x, m) = cora();
        let r = Platform::new(PlatformKind::PygCpuE5_2680).simulate(&g, &x, &m);
        assert!(r.latency_s > 1e-3, "PyG-CPU should be ms-scale, got {}s", r.latency_s);
    }

    #[test]
    fn gpu_faster_than_cpu_slower_than_typical_accelerator() {
        let (g, x, m) = cora();
        let cpu = Platform::new(PlatformKind::PygCpuE5_2680).simulate(&g, &x, &m);
        let gpu = Platform::new(PlatformKind::PygGpuV100).simulate(&g, &x, &m);
        assert!(gpu.latency_s < cpu.latency_s);
        assert!(gpu.latency_s > 100e-6, "GPU still overhead-bound on tiny graphs");
    }

    #[test]
    fn dgl_cpu_faster_than_pyg_cpu() {
        // Matches the paper's 9568× vs 1243× speedup split.
        let (g, x, m) = cora();
        let pyg = Platform::new(PlatformKind::PygCpuE5_2680).simulate(&g, &x, &m);
        let dgl = Platform::new(PlatformKind::DglCpuE5_2683).simulate(&g, &x, &m);
        assert!(dgl.latency_s < pyg.latency_s);
    }

    #[test]
    fn all_platforms_construct() {
        for kind in PlatformKind::ALL {
            let p = Platform::new(kind);
            assert!(!p.name().is_empty());
            assert_eq!(p.kind(), kind);
        }
    }
}
