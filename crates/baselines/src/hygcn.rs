//! HyGCN (Yan et al., HPCA 2020) behavioural model.
//!
//! HyGCN is a hybrid ASIC: an edge-centric SIMD aggregation engine with
//! window-based sparsity elimination feeding a systolic combination
//! engine. Two structural properties drive its shape against I-GCN:
//!
//! 1. **aggregation-first order** — HyGCN aggregates *raw* features
//!    (`A·X` before `·W`), so aggregation cost scales with the input
//!    feature width (1433 for Cora, 61 K for NELL) instead of the hidden
//!    width. Input-feature sparsity is exploited during aggregation
//!    (non-zeros only), but the aggregated result is dense.
//! 2. **dense combination** — the systolic array performs dense MVM over
//!    the aggregated features: `n · in · out` MACs, with no sparsity
//!    exploitation (the AWB-GCN paper's headline criticism).
//!
//! Feature accesses during aggregation are scattered row gathers; the
//! window sparsity-elimination shrinks but does not eliminate re-fetches
//! ("feature matrices still need to be accessed many times. An HBM is
//! required to avoid hardware starvation", §1). HyGCN's published config
//! — 4608 MACs at 1 GHz with HBM — is the default here.

use igcn_gnn::GnnModel;
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_sim::memory::{effective_streaming_bytes, AccessPattern};
use igcn_sim::{DramModel, EnergyModel, GcnAccelerator, HardwareConfig, MacArray, SimReport};

/// The HyGCN model.
#[derive(Debug, Clone)]
pub struct HyGcn {
    hw: HardwareConfig,
    energy: EnergyModel,
    /// Average re-fetch reduction of the window sparsity elimination.
    window_reuse: f64,
}

impl HyGcn {
    /// Creates the model with HyGCN's published configuration: 4608 MACs
    /// at 1 GHz with 256 GB/s HBM.
    pub fn paper_config() -> Self {
        let hw = HardwareConfig {
            num_macs: 4608,
            frequency_hz: 1_000_000_000,
            dram_bandwidth: 256.0e9,
            dram_efficiency: 0.7,
            sram_bytes: 22 << 20, // 24 MB eDRAM-ish on-chip budget
            tpbfs_engines: 0,
            hub_lanes: 0,
            num_pes: 32,
            mac_utilization: 0.70,
            bfs_scan_words: 4,
        };
        HyGcn { hw, energy: EnergyModel::fpga_default(), window_reuse: 4.0 }
    }

    /// Creates the model over an explicit hardware configuration.
    pub fn new(hw: HardwareConfig) -> Self {
        HyGcn { hw, energy: EnergyModel::fpga_default(), window_reuse: 4.0 }
    }
}

impl GcnAccelerator for HyGcn {
    fn name(&self) -> String {
        "HyGCN".to_string()
    }

    fn simulate(&self, graph: &CsrGraph, features: &SparseFeatures, model: &GnnModel) -> SimReport {
        let n = graph.num_nodes() as u64;
        let nnz_a = graph.num_directed_edges() as u64 + n;
        let dram = DramModel::new(&self.hw);
        let macs = MacArray::new(&self.hw);
        let resident = (self.hw.sram_bytes as f64 * 0.8) as u64;
        let f32b = 4u64;
        let idx = 4u64;

        let mut cycles = 0u64;
        let mut compute_cycles = 0u64;
        let mut memory_cycles = 0u64;
        let mut total_ops = 0u64;
        let mut total_bytes = 0u64;
        for (i, layer) in model.layers().iter().enumerate() {
            let in_dim = layer.in_dim as u64;
            let out_dim = layer.out_dim as u64;
            // Aggregation over raw features. Layer 0 exploits X sparsity
            // per edge (avg row nnz); deeper layers are dense.
            let avg_row_nnz = if i == 0 {
                (features.nnz() as f64 / n.max(1) as f64).max(1.0)
            } else {
                in_dim as f64
            };
            let agg_ops = (nnz_a as f64 * avg_row_nnz) as u64;
            // Dense systolic combination.
            let comb_ops = n * in_dim * out_dim;
            let ops = agg_ops + comb_ops;

            // Traffic: adjacency once; feature rows gathered per edge with
            // window-elimination reuse; aggregated matrix to combination
            // stays on-chip when it fits.
            let adjacency = nnz_a * idx;
            let feature_payload = if i == 0 {
                (nnz_a as f64 * avg_row_nnz * (f32b + idx) as f64) as u64
            } else {
                nnz_a * in_dim * f32b
            };
            let gathers = (feature_payload as f64 / self.window_reuse) as u64;
            let output = n * out_dim * f32b;
            let weights = in_dim * out_dim * f32b;
            let seq = adjacency + output + weights;
            let rnd = gathers;
            total_bytes += seq + rnd;

            let compute = macs.cycles_for(ops);
            let seq_stream = effective_streaming_bytes(seq, resident);
            let rnd_stream = effective_streaming_bytes(rnd, resident / 4);
            let mem_s = dram.transfer_seconds(seq_stream, AccessPattern::Sequential)
                + dram.transfer_seconds(rnd_stream, AccessPattern::Random);
            let memory = self.hw.seconds_to_cycles(mem_s);
            // Inter-engine coordination overhead between the aggregation
            // and combination engines.
            cycles += compute.max(memory) + 400;
            compute_cycles += compute;
            memory_cycles += memory;
            total_ops += ops;
        }
        let latency_s = self.hw.cycles_to_seconds(cycles);
        let sram_bytes = total_ops * 12;
        let energy_j = self.energy.energy_joules(total_ops, total_bytes, sram_bytes, latency_s);
        SimReport {
            name: self.name(),
            latency_s,
            cycles,
            compute_cycles,
            memory_cycles,
            locator_cycles: 0,
            offchip_bytes: total_bytes,
            total_ops,
            energy_j,
            graphs_per_kilojoule: self.energy.graphs_per_kilojoule(energy_j),
            worker_utilisation: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_gnn::{GnnKind, ModelConfig};
    use igcn_graph::datasets::Dataset;

    #[test]
    fn dense_combination_dominates_on_wide_features() {
        let d = Dataset::Cora.generate_scaled(0.25, 2);
        let model = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Hy);
        let r = HyGcn::paper_config().simulate(&d.graph, &d.features, &model);
        // Dense combination over 1433-wide features: ops must exceed the
        // sparse equivalent by a large factor.
        let sparse_comb = d.features.nnz() as u64 * 128;
        assert!(r.total_ops > 5 * sparse_comb, "HyGCN should not exploit X sparsity in MVM");
    }

    #[test]
    fn report_sane() {
        let d = Dataset::Citeseer.generate_scaled(0.2, 3);
        let model = GnnModel::for_dataset(Dataset::Citeseer, GnnKind::Gcn, ModelConfig::Algo);
        let r = HyGcn::paper_config().simulate(&d.graph, &d.features, &model);
        assert!(r.latency_s > 0.0);
        assert!(r.offchip_bytes > 0);
        assert!(r.energy_j > 0.0);
    }
}
