//! SIGMA (Qin et al., HPCA 2020) behavioural model.
//!
//! SIGMA is a sparse-irregular GEMM accelerator with a flexible
//! reduction/distribution interconnect. It sustains excellent MAC
//! utilization on arbitrary sparse matrices, but it is *graph-agnostic*:
//! no community/hub awareness, no shared-neighbor reuse, and its bitmap
//! operand format must be built per kernel invocation. The I-GCN paper
//! reports a 16× average speedup over SIGMA (§4.6.2) — driven by
//! operand-format conversion overhead on small kernels and by scattered
//! stationary-operand fetches on large ones.

use igcn_gnn::{GnnModel, ModelWorkload};
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_sim::memory::{effective_streaming_bytes, AccessPattern};
use igcn_sim::{DramModel, EnergyModel, GcnAccelerator, HardwareConfig, MacArray, SimReport};

/// The SIGMA model.
#[derive(Debug, Clone)]
pub struct Sigma {
    hw: HardwareConfig,
    energy: EnergyModel,
}

impl Sigma {
    /// Creates the model with SIGMA's published flavour: 16 K PEs at
    /// 500 MHz with HBM — normalised here to the same 4096-MAC budget the
    /// paper uses for its own comparison fairness, keeping SIGMA's high
    /// per-kernel overheads.
    pub fn paper_config() -> Self {
        let hw = HardwareConfig {
            num_macs: 4096,
            frequency_hz: 500_000_000,
            dram_bandwidth: 256.0e9,
            dram_efficiency: 0.7,
            sram_bytes: 16 << 20,
            tpbfs_engines: 0,
            hub_lanes: 0,
            num_pes: 64,
            mac_utilization: 0.9,
            bfs_scan_words: 4,
        };
        Sigma { hw, energy: EnergyModel::fpga_default() }
    }

    /// Creates the model over an explicit hardware configuration.
    pub fn new(hw: HardwareConfig) -> Self {
        Sigma { hw, energy: EnergyModel::fpga_default() }
    }
}

impl GcnAccelerator for Sigma {
    fn name(&self) -> String {
        "SIGMA".to_string()
    }

    fn simulate(&self, graph: &CsrGraph, features: &SparseFeatures, model: &GnnModel) -> SimReport {
        let workload = ModelWorkload::compute(graph, features, model);
        let dram = DramModel::new(&self.hw);
        let macs = MacArray::new(&self.hw);
        let resident = (self.hw.sram_bytes as f64 * 0.8) as u64;
        let n = graph.num_nodes() as u64;
        let nnz_a = graph.num_directed_edges() as u64 + n;

        let mut cycles = 0u64;
        let mut compute_cycles = 0u64;
        let mut memory_cycles = 0u64;
        let mut total_bytes = 0u64;
        for (i, layer) in model.layers().iter().enumerate() {
            let lw = workload.layers()[i];
            let ops = lw.total_ops();
            let compute = macs.cycles_for(ops);
            // Bitmap-format conversion: every operand non-zero is touched
            // once more before compute can start.
            let format_cycles = macs.cycles_for(nnz_a + lw.combination_macs / 8);
            // Traffic: graph-agnostic row gathers of the stationary
            // operand — no island locality, modest cache reuse (×2).
            let gathers = (nnz_a * layer.out_dim as u64 * 4) / 2;
            let seq = lw.feature_bytes + lw.adjacency_bytes + lw.weight_bytes + lw.output_bytes;
            total_bytes += seq + gathers;
            let mem_s = dram.transfer_seconds(
                effective_streaming_bytes(seq, resident),
                AccessPattern::Sequential,
            ) + dram.transfer_seconds(
                effective_streaming_bytes(gathers, resident / 4),
                AccessPattern::Random,
            );
            let memory = self.hw.seconds_to_cycles(mem_s);
            // Per-kernel dispatch overhead (host-driven GEMM invocations).
            cycles += compute.max(memory) + format_cycles + 2_000;
            compute_cycles += compute;
            memory_cycles += memory;
        }
        let total_ops = workload.total_ops();
        let latency_s = self.hw.cycles_to_seconds(cycles);
        let sram_bytes = total_ops * 12;
        let energy_j = self.energy.energy_joules(total_ops, total_bytes, sram_bytes, latency_s);
        SimReport {
            name: self.name(),
            latency_s,
            cycles,
            compute_cycles,
            memory_cycles,
            locator_cycles: 0,
            offchip_bytes: total_bytes,
            total_ops,
            energy_j,
            graphs_per_kilojoule: self.energy.graphs_per_kilojoule(energy_j),
            worker_utilisation: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_gnn::{GnnKind, ModelConfig};
    use igcn_graph::datasets::Dataset;

    #[test]
    fn slower_than_compute_bound_floor() {
        let d = Dataset::Cora.generate_scaled(0.25, 4);
        let model = GnnModel::for_dataset(Dataset::Cora, GnnKind::Gcn, ModelConfig::Algo);
        let r = Sigma::paper_config().simulate(&d.graph, &d.features, &model);
        // Dispatch overhead alone is 2k cycles/layer at 500 MHz = 8 µs.
        assert!(r.latency_us() > 8.0, "got {} µs", r.latency_us());
    }

    #[test]
    fn report_sane() {
        let d = Dataset::Pubmed.generate_scaled(0.05, 5);
        let model = GnnModel::for_dataset(Dataset::Pubmed, GnnKind::Gcn, ModelConfig::Algo);
        let r = Sigma::paper_config().simulate(&d.graph, &d.features, &model);
        assert!(r.latency_s > 0.0 && r.energy_j > 0.0 && r.offchip_bytes > 0);
    }
}
