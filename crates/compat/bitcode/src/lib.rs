//! Offline stand-in for the `bitcode` binary codec.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the snapshot subsystem (`igcn-store`) vendors the small
//! codec subset it needs instead of depending on the real `bitcode`
//! crate: an [`Encode`]/[`Decode`] trait pair over a compact
//! little-endian wire format, with [`encode`]/[`decode`] entry points
//! matching the upstream call shape (`bitcode::encode(&value)` /
//! `bitcode::decode(&bytes)`).
//!
//! Differences from the real crate, on purpose:
//!
//! * no derive macros — callers implement the traits by hand on small
//!   mirror structs (the snapshot subsystem keeps its wire structs
//!   separate from the domain types anyway, so the format is an explicit
//!   contract rather than whatever the struct layout happens to be);
//! * no bit-packing — fixed-width little-endian primitives. Snapshots
//!   are dominated by `u32`/`f32` arrays, where bit-packing buys little
//!   and costs decode time;
//! * decoding is **total**: every error path is a typed
//!   [`CodecError`], never a panic, and corrupt length prefixes cannot
//!   trigger pathological allocations (capacity is clamped to the bytes
//!   actually remaining).
//!
//! # Wire format
//!
//! | type | encoding |
//! |---|---|
//! | `u8`/`u32`/`u64` | little-endian, fixed width |
//! | `usize` | as `u64` |
//! | `f32`/`f64` | IEEE-754 bits, little-endian |
//! | `bool` | one byte, `0`/`1` (other values are a decode error) |
//! | `String` | `u64` byte length + UTF-8 bytes |
//! | `Vec<T>` | `u64` element count + elements |
//! | `Option<T>` | one tag byte (`0`/`1`) + payload if `1` |
//! | tuples | fields in order |
//!
//! # Example
//!
//! ```
//! use bitcode::{decode, encode, Decode, Encode, Reader, Writer};
//!
//! struct Point { x: u32, y: u32 }
//!
//! impl Encode for Point {
//!     fn encode(&self, w: &mut Writer) {
//!         self.x.encode(w);
//!         self.y.encode(w);
//!     }
//! }
//!
//! impl Decode for Point {
//!     fn decode(r: &mut Reader<'_>) -> Result<Self, bitcode::CodecError> {
//!         Ok(Point { x: u32::decode(r)?, y: u32::decode(r)? })
//!     }
//! }
//!
//! let bytes = encode(&Point { x: 3, y: 9 });
//! let back: Point = decode(&bytes).unwrap();
//! assert_eq!((back.x, back.y), (3, 9));
//! ```

use std::error::Error;
use std::fmt;

/// Errors surfaced while decoding a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The stream ended before a value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Decoding finished with unconsumed bytes (only raised by
    /// [`decode`], which expects the value to span the whole slice).
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// A value was syntactically readable but semantically invalid
    /// (bad bool tag, invalid UTF-8, unknown enum discriminant…).
    Invalid {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of stream: needed {needed} bytes, {remaining} remain")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "decoded value left {remaining} trailing bytes")
            }
            CodecError::Invalid { detail } => write!(f, "invalid encoding: {detail}"),
        }
    }
}

impl Error for CodecError {}

/// Append-only byte sink values encode into.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Reserves space for `additional` more bytes (bulk writers call
    /// this once instead of growing per element).
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a byte slice values decode from.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u64` length prefix and sanity-checks it against the
    /// bytes remaining: each counted element needs at least
    /// `min_element_bytes` more bytes, so a corrupt length can be
    /// rejected before any allocation happens.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the prefix itself is truncated
    /// or promises more elements than the stream can hold.
    pub fn read_len(&mut self, min_element_bytes: usize) -> Result<usize, CodecError> {
        let len = u64::decode(self)? as usize;
        let needed = len.saturating_mul(min_element_bytes.max(1));
        if needed > self.remaining() {
            return Err(CodecError::UnexpectedEof { needed, remaining: self.remaining() });
        }
        Ok(len)
    }
}

/// A value that can be appended to a [`Writer`].
pub trait Encode {
    /// Appends this value's wire representation.
    fn encode(&self, w: &mut Writer);

    /// Appends a whole slice (no length prefix — `Vec<T>`'s impl
    /// writes that). The default loops; fixed-width primitives
    /// override it with a single-reservation bulk write, which is what
    /// makes multi-megabyte snapshot arrays cheap.
    fn encode_slice(items: &[Self], w: &mut Writer)
    where
        Self: Sized,
    {
        for item in items {
            item.encode(w);
        }
    }
}

/// A value that can be read back from a [`Reader`].
pub trait Decode: Sized {
    /// Reads one value.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or invalid input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Reads `len` values (the caller read and sanity-checked the
    /// length prefix). The default loops; fixed-width primitives
    /// override it with one bounds check and a chunked bulk convert.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or invalid input.
    fn decode_vec(r: &mut Reader<'_>, len: usize) -> Result<Vec<Self>, CodecError> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(Self::decode(r)?);
        }
        Ok(out)
    }
}

/// Encodes `value` into a fresh byte vector.
pub fn encode<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes one value spanning the whole of `bytes`.
///
/// # Errors
///
/// [`CodecError`] on truncated or invalid input, including trailing
/// bytes after the value.
pub fn decode<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes { remaining: r.remaining() });
    }
    Ok(value)
}

macro_rules! impl_le_primitive {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut Writer) {
                w.write_bytes(&self.to_le_bytes());
            }

            fn encode_slice(items: &[$t], w: &mut Writer) {
                w.reserve(items.len() * std::mem::size_of::<$t>());
                for item in items {
                    w.write_bytes(&item.to_le_bytes());
                }
            }
        }

        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("take returned the exact width")))
            }

            fn decode_vec(r: &mut Reader<'_>, len: usize) -> Result<Vec<$t>, CodecError> {
                const WIDTH: usize = std::mem::size_of::<$t>();
                let bytes = r.take(len.checked_mul(WIDTH).ok_or(CodecError::UnexpectedEof {
                    needed: usize::MAX,
                    remaining: 0,
                })?)?;
                Ok(bytes
                    .chunks_exact(WIDTH)
                    .map(|c| <$t>::from_le_bytes(c.try_into().expect("exact chunk width")))
                    .collect())
            }
        }
    )*};
}

impl_le_primitive!(u8, u16, u32, u64, i32, i64, f32, f64);

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        (*self as u64).encode(w);
    }

    fn encode_slice(items: &[usize], w: &mut Writer) {
        w.reserve(items.len() * 8);
        for &item in items {
            w.write_bytes(&(item as u64).to_le_bytes());
        }
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid {
            detail: format!("length {v} does not fit this platform's usize"),
        })
    }

    fn decode_vec(r: &mut Reader<'_>, len: usize) -> Result<Vec<usize>, CodecError> {
        let bytes = r.take(
            len.checked_mul(8)
                .ok_or(CodecError::UnexpectedEof { needed: usize::MAX, remaining: 0 })?,
        )?;
        bytes
            .chunks_exact(8)
            .map(|c| {
                let v = u64::from_le_bytes(c.try_into().expect("exact chunk width"));
                usize::try_from(v).map_err(|_| CodecError::Invalid {
                    detail: format!("length {v} does not fit this platform's usize"),
                })
            })
            .collect()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        (*self as u8).encode(w);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid { detail: format!("bad bool tag {other}") }),
        }
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        w.write_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.read_len(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::Invalid { detail: format!("invalid UTF-8 string: {e}") })
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        T::encode_slice(self, w);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // Elements are at least one byte on the wire, so read_len(1)
        // bounds the allocation by the remaining stream length.
        let len = r.read_len(1)?;
        T::decode_vec(r, len)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => 0u8.encode(w),
            Some(v) => {
                1u8.encode(w);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CodecError::Invalid { detail: format!("bad Option tag {other}") }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode(&value);
        let back: T = decode(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(-7i64);
        round_trip(3.25f32);
        round_trip(f64::MIN_POSITIVE);
        round_trip(true);
        round_trip(false);
        round_trip(1234usize);
    }

    #[test]
    fn nan_bits_survive() {
        let bytes = encode(&f32::NAN);
        let back: f32 = decode(&bytes).unwrap();
        assert_eq!(back.to_bits(), f32::NAN.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(9u32));
        round_trip(Option::<u32>::None);
        round_trip((7u32, vec![1.5f32, -2.5]));
        round_trip("héllo".to_string());
        round_trip(vec![(1u32, vec![2u32, 3]), (4, vec![])]);
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let bytes = encode(&vec![1u32, 2, 3]);
        for cut in 0..bytes.len() {
            let err = decode::<Vec<u32>>(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, CodecError::UnexpectedEof { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&5u32);
        bytes.push(0);
        assert!(matches!(decode::<u32>(&bytes), Err(CodecError::TrailingBytes { remaining: 1 })));
    }

    #[test]
    fn corrupt_length_prefix_cannot_demand_huge_allocation() {
        // A length prefix of u64::MAX with no payload must error out
        // before any element allocation happens.
        let bytes = encode(&u64::MAX);
        let err = decode::<Vec<u8>>(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { .. }));
    }

    #[test]
    fn bad_tags_are_invalid() {
        assert!(matches!(decode::<bool>(&[7]), Err(CodecError::Invalid { .. })));
        assert!(matches!(decode::<Option<u8>>(&[2]), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn invalid_utf8_is_invalid() {
        let mut w = Writer::new();
        2usize.encode(&mut w);
        w.write_bytes(&[0xFF, 0xFE]);
        assert!(matches!(decode::<String>(&w.into_bytes()), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn display_is_informative() {
        let e = CodecError::UnexpectedEof { needed: 4, remaining: 1 };
        assert!(e.to_string().contains("needed 4"));
        assert!(CodecError::TrailingBytes { remaining: 3 }.to_string().contains('3'));
    }
}
