//! Offline stand-in for the `mio` readiness API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so — like the vendored `threadpool` — it vendors the small
//! event-loop subset the gateway needs instead of depending on the real
//! `mio`: [`Poll`] / [`Events`] / [`Token`] / [`Interest`] over
//! [`net::TcpListener`] and [`net::TcpStream`] wrappers around
//! `std::net` sockets in nonblocking mode.
//!
//! # How readiness is emulated
//!
//! The real mio asks the OS selector (epoll/kqueue) which sockets are
//! ready. The standard library exposes no selector, so this stand-in
//! *probes*:
//!
//! * a **stream** is readable when a nonblocking one-byte
//!   `peek` returns `Ok(n)` — `n > 0` means buffered payload, `n == 0`
//!   means EOF, and both must wake the consumer; `WouldBlock` means not
//!   ready. An EOF is only readable until the owner's `read` has
//!   returned `Ok(0)` once — a drained, peer-closed socket peeks
//!   `Ok(0)` forever, and re-reporting it would busy-spin the poll
//!   loop while responses to already-read requests are still in
//!   flight;
//! * a **listener** is readable when a nonblocking `accept` succeeds —
//!   the accepted connection is stashed inside the wrapper, and the
//!   caller's next [`net::TcpListener::accept`] returns it;
//! * **writability** is reported whenever `WRITABLE` interest is
//!   registered: there is no portable probe for send-buffer space, so
//!   write paths must tolerate `WouldBlock` and retry on the next tick
//!   (which all level-triggered mio consumers do anyway).
//!
//! [`Poll::poll`] scans every registered source; when nothing is ready
//! it sleeps ~1 ms between scans until the timeout elapses. That bounds
//! wake-up latency at milliseconds instead of microseconds — adequate
//! for the serving gateway, whose micro-batching window is of the same
//! magnitude — and costs a low idle duty cycle instead of a blocked
//! syscall. Semantics are **level-triggered** ([`Interest`]s stay armed
//! until deregistered), the subset that is identical between mio's and
//! this stand-in's contract.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Granularity of the idle sleep between readiness scans.
const SCAN_SLEEP: Duration = Duration::from_millis(1);

/// Caller-chosen identifier attached to a registered source and
/// reported back on its [`Event`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(1);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(2);

    /// Combines two interests (named for real-mio API compatibility).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }
}

/// One readiness event: which token, and which directions are ready.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
}

impl Event {
    /// The registered token of the ready source.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (data buffered, EOF, or a pending accept).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Write readiness (always reported while `WRITABLE` interest is
    /// registered; see the module docs).
    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// Buffer of events filled by [`Poll::poll`].
#[derive(Debug, Default)]
pub struct Events {
    events: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Creates a buffer that holds at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { events: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Whether the last poll produced no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// A source's probe result for one scan.
#[derive(Debug, Clone, Copy, Default)]
struct Readiness {
    readable: bool,
    writable: bool,
}

/// What the registry keeps per registered source: the probe handle (a
/// cheap clone of the source's shared inner) and its interests.
struct Entry {
    source: SourceHandle,
    token: Token,
    interest: Interest,
}

#[doc(hidden)]
pub enum SourceHandle {
    Listener(Arc<ListenerInner>),
    Stream(Arc<StreamInner>),
}

impl SourceHandle {
    fn probe(&self, interest: Interest) -> Readiness {
        let readable = interest.is_readable()
            && match self {
                SourceHandle::Listener(inner) => inner.probe_accept(),
                SourceHandle::Stream(inner) => inner.probe_readable(),
            };
        // No portable probe for send-buffer space: report writable
        // whenever asked (module docs).
        Readiness { readable, writable: interest.is_writable() }
    }
}

/// Registration handle: register/reregister/deregister sources.
pub struct Registry {
    entries: Arc<Mutex<HashMap<usize, Entry>>>,
}

impl Registry {
    /// Registers `source` under `token` with `interest`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the source is already registered with this
    /// poll.
    pub fn register(
        &self,
        source: &mut impl Source,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let id = source.source_id();
        let mut entries = self.entries.lock().expect("registry lock");
        if entries.contains_key(&id) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "source already registered"));
        }
        entries.insert(id, Entry { source: source.handle(), token, interest });
        Ok(())
    }

    /// Replaces the token/interest of an already registered source.
    ///
    /// # Errors
    ///
    /// `NotFound` if the source was never registered.
    pub fn reregister(
        &self,
        source: &mut impl Source,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let id = source.source_id();
        let mut entries = self.entries.lock().expect("registry lock");
        match entries.get_mut(&id) {
            Some(entry) => {
                entry.token = token;
                entry.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "source not registered")),
        }
    }

    /// Removes a source from the poll.
    ///
    /// # Errors
    ///
    /// `NotFound` if the source was never registered.
    pub fn deregister(&self, source: &mut impl Source) -> io::Result<()> {
        let id = source.source_id();
        match self.entries.lock().expect("registry lock").remove(&id) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "source not registered")),
        }
    }
}

/// A source registrable with a [`Poll`] (sealed: the two `net` types).
pub trait Source: sealed::Sealed {
    #[doc(hidden)]
    fn source_id(&self) -> usize;
    #[doc(hidden)]
    fn handle(&self) -> SourceHandle;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::net::TcpListener {}
    impl Sealed for super::net::TcpStream {}
}

/// The poller: scans registered sources for readiness.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in (`io::Result` mirrors mio's API).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll { registry: Registry { entries: Arc::new(Mutex::new(HashMap::new())) } })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Fills `events` with ready sources, blocking up to `timeout`
    /// (`None` = until something is ready). Events are capped at the
    /// buffer's capacity; remaining readiness is reported by the next
    /// call (level-triggered).
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in (probe errors surface as readiness,
    /// so the owner reads/accepts and observes the error there).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let deadline = timeout.map(|t| Instant::now() + t);
        events.events.clear();
        loop {
            {
                let entries = self.registry.entries.lock().expect("registry lock");
                for entry in entries.values() {
                    let readiness = entry.source.probe(entry.interest);
                    if readiness.readable || readiness.writable {
                        events.events.push(Event {
                            token: entry.token,
                            readable: readiness.readable,
                            writable: readiness.writable,
                        });
                        if events.events.len() >= events.capacity {
                            break;
                        }
                    }
                }
            }
            if !events.events.is_empty() {
                return Ok(());
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Ok(());
                    }
                    std::thread::sleep(SCAN_SLEEP.min(d - now));
                }
                None => std::thread::sleep(SCAN_SLEEP),
            }
        }
    }
}

/// Unique source ids (address-independent, clone-stable).
static NEXT_SOURCE_ID: AtomicUsize = AtomicUsize::new(1);

fn next_source_id() -> usize {
    NEXT_SOURCE_ID.fetch_add(1, Ordering::Relaxed)
}

#[doc(hidden)]
pub struct ListenerInner {
    id: usize,
    listener: std::net::TcpListener,
    /// Connection accepted by a readiness probe, handed to the next
    /// `accept` call.
    pending: Mutex<Vec<(std::net::TcpStream, std::net::SocketAddr)>>,
}

impl ListenerInner {
    fn probe_accept(&self) -> bool {
        let mut pending = self.pending.lock().expect("listener stash lock");
        if !pending.is_empty() {
            return true;
        }
        match self.listener.accept() {
            Ok(conn) => {
                pending.push(conn);
                true
            }
            // WouldBlock: nothing queued. Any *real* error is also
            // "readable" so the owner's accept() observes it.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
            Err(_) => true,
        }
    }
}

#[doc(hidden)]
pub struct StreamInner {
    id: usize,
    stream: std::net::TcpStream,
    /// Set once an owner `read` returned `Ok(0)`: the EOF has been
    /// delivered, so further peeks at it are no longer "readable" —
    /// otherwise a half-closed connection with responses still in
    /// flight would make every poll return immediately and busy-spin
    /// the IO loop until the backend finishes.
    eof_observed: std::sync::atomic::AtomicBool,
}

impl StreamInner {
    fn probe_readable(&self) -> bool {
        let mut probe = [0u8; 1];
        match self.stream.peek(&mut probe) {
            // Orderly EOF: readable until the owner consumes it once.
            Ok(0) => !self.eof_observed.load(Ordering::Relaxed),
            // Buffered payload.
            Ok(_) => true,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
            // Real errors are readable: the owner's read reports them.
            Err(_) => true,
        }
    }

    fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        let n = io::Read::read(&mut (&self.stream), buf)?;
        if n == 0 && !buf.is_empty() {
            self.eof_observed.store(true, Ordering::Relaxed);
        }
        Ok(n)
    }
}

/// Nonblocking TCP types shaped like `mio::net`.
pub mod net {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{Shutdown, SocketAddr, ToSocketAddrs};

    /// A nonblocking TCP listener registrable with [`Poll`](super::Poll).
    pub struct TcpListener {
        inner: Arc<ListenerInner>,
    }

    impl TcpListener {
        /// Binds a nonblocking listener to `addr`.
        ///
        /// # Errors
        ///
        /// Propagates bind/configuration errors of the OS socket.
        pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            let listener = std::net::TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            Ok(TcpListener {
                inner: Arc::new(ListenerInner {
                    id: next_source_id(),
                    listener,
                    pending: Mutex::new(Vec::new()),
                }),
            })
        }

        /// Accepts a queued connection (nonblocking; `WouldBlock` when
        /// none is pending). Connections stashed by a readiness probe
        /// are returned first.
        ///
        /// # Errors
        ///
        /// `WouldBlock` when no connection is pending; otherwise the OS
        /// accept error.
        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let stashed = self.inner.pending.lock().expect("listener stash lock").pop();
            let (stream, addr) = match stashed {
                Some(conn) => conn,
                None => self.inner.listener.accept()?,
            };
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true).ok();
            let inner = Arc::new(StreamInner {
                id: next_source_id(),
                stream,
                eof_observed: std::sync::atomic::AtomicBool::new(false),
            });
            Ok((TcpStream { inner }, addr))
        }

        /// The bound local address.
        ///
        /// # Errors
        ///
        /// Propagates the OS `getsockname` error.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.listener.local_addr()
        }
    }

    impl super::Source for TcpListener {
        fn source_id(&self) -> usize {
            self.inner.id
        }
        fn handle(&self) -> SourceHandle {
            SourceHandle::Listener(Arc::clone(&self.inner))
        }
    }

    /// A nonblocking TCP stream registrable with [`Poll`](super::Poll).
    pub struct TcpStream {
        inner: Arc<StreamInner>,
    }

    impl TcpStream {
        /// The peer's address.
        ///
        /// # Errors
        ///
        /// Propagates the OS `getpeername` error.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.stream.peer_addr()
        }

        /// Shuts down one or both directions.
        ///
        /// # Errors
        ///
        /// Propagates the OS `shutdown` error.
        pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
            self.inner.stream.shutdown(how)
        }
    }

    impl super::Source for TcpStream {
        fn source_id(&self) -> usize {
            self.inner.id
        }
        fn handle(&self) -> SourceHandle {
            SourceHandle::Stream(Arc::clone(&self.inner))
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Read for &TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.inner.stream).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.inner.stream).flush()
        }
    }

    impl Write for &TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.inner.stream).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.inner.stream).flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);

    #[test]
    fn listener_reports_pending_accepts_and_hands_them_over() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let mut listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry().register(&mut listener, LISTENER, Interest::READABLE).unwrap();

        // Nothing connected: a short poll returns no events.
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty(), "spurious readiness with no client");

        let client = std::net::TcpStream::connect(addr).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let event = events.iter().next().expect("accept readiness");
        assert_eq!(event.token(), LISTENER);
        assert!(event.is_readable());
        let (server_side, _) = listener.accept().unwrap();
        drop(client);
        drop(server_side);
    }

    #[test]
    fn stream_readiness_tracks_data_and_eof() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let mut listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry().register(&mut listener, LISTENER, Interest::READABLE).unwrap();

        let mut client = std::net::TcpStream::connect(addr).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        poll.registry()
            .register(&mut server_side, CLIENT, Interest::READABLE.add(Interest::WRITABLE))
            .unwrap();

        // No payload yet: the stream reports only writability.
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        for event in &events {
            if event.token() == CLIENT {
                assert!(!event.is_readable(), "readable before any payload");
                assert!(event.is_writable());
            }
        }

        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        'outer: loop {
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            for event in &events {
                if event.token() == CLIENT && event.is_readable() {
                    let mut buf = [0u8; 16];
                    let n = server_side.read(&mut buf).unwrap();
                    got.extend_from_slice(&buf[..n]);
                    if got == b"ping" {
                        break 'outer;
                    }
                }
            }
        }

        // EOF must also wake the consumer (read returns 0).
        drop(client);
        loop {
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            if let Some(event) = events.iter().find(|e| e.token() == CLIENT && e.is_readable()) {
                assert_eq!(event.token(), CLIENT);
                let mut buf = [0u8; 16];
                if server_side.read(&mut buf).unwrap() == 0 {
                    break;
                }
            }
        }

        // Once the EOF has been consumed, the stream must stop
        // reporting readable — otherwise the poll loop busy-spins on
        // half-closed connections (only writability remains).
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(
            !events.iter().any(|e| e.token() == CLIENT && e.is_readable()),
            "consumed EOF re-reported as readable"
        );
        poll.registry().deregister(&mut server_side).unwrap();
        poll.registry().deregister(&mut listener).unwrap();
    }

    #[test]
    fn registry_rejects_double_register_and_unknown_deregister() {
        let poll = Poll::new().unwrap();
        let mut listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        poll.registry().register(&mut listener, LISTENER, Interest::READABLE).unwrap();
        let err = poll.registry().register(&mut listener, CLIENT, Interest::READABLE).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        poll.registry().reregister(&mut listener, CLIENT, Interest::READABLE).unwrap();
        poll.registry().deregister(&mut listener).unwrap();
        let err = poll.registry().deregister(&mut listener).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let mut other = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let err = poll.registry().reregister(&mut other, CLIENT, Interest::READABLE).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn poll_timeout_returns_empty_in_time() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.is_empty());
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(15), "returned early: {elapsed:?}");
        assert!(elapsed < Duration::from_secs(2), "overslept: {elapsed:?}");
    }
}
