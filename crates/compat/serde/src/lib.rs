//! Offline stand-in for `serde`.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access. The real serde is used here only for `#[derive(Serialize,
//! Deserialize)]` annotations on result/statistics types — nothing in
//! the workspace serializes at runtime yet. This shim keeps those
//! annotations compiling (so the types stay declared serializable, and
//! swapping the real serde back in is a one-line Cargo change) by
//! providing marker traits and no-op derive macros.
//!
//! The `#[serde(...)]` helper attributes are accepted and ignored.
//!
//! Beyond the markers, [`json`] is a real, hand-rolled JSON
//! encoder/decoder shared by the gateway's HTTP bodies and the
//! workspace's `results/*.json` writers — the one place in the
//! workspace that serializes at runtime.

pub mod json;

/// Marker for types declared serializable.
///
/// Blanket-implemented (the no-op [`macro@Serialize`] derive emits
/// nothing), so `T: Serialize` bounds always hold and impose no codegen
/// cost.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types declared deserializable.
///
/// Blanket-implemented; see [`Serialize`].
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Annotated {
        #[serde(skip)]
        _field: u32,
    }

    #[test]
    fn derives_compile_and_implement_markers() {
        fn is_serialize<T: super::Serialize>() {}
        fn is_deserialize<T: super::Deserialize>() {}
        is_serialize::<Annotated>();
        is_deserialize::<Annotated>();
    }
}
