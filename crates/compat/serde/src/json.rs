//! Hand-rolled JSON: one encoder/decoder shared by the gateway's HTTP
//! bodies and every `results/*.json` writer in the workspace.
//!
//! The workspace builds hermetically (no `serde_json`), and before this
//! module each bench binary hand-formatted its own JSON strings. This
//! is the single replacement implementation: an order-preserving value
//! tree, a compact encoder with full string escaping, and a strict
//! recursive-descent parser.
//!
//! # Number fidelity
//!
//! * `u64`/`i64` round-trip exactly ([`JsonValue::Uint`] /
//!   [`JsonValue::Int`] keep full 64-bit precision — correlation ids
//!   are not squeezed through an `f64`).
//! * `f32` round-trips **bit-exactly** through text: values are widened
//!   to `f64`, printed with Rust's shortest-round-trip `Display`, and
//!   on the way back parsed as `f64` then narrowed. Because the `f64`
//!   is exactly the widened `f32`, the narrowing conversion recovers
//!   the original bits — the property the gateway's bit-identity
//!   contract rests on ([`JsonValue::as_f32`]).
//! * Non-finite floats use the bare tokens `NaN`, `Infinity` and
//!   `-Infinity` (a documented extension both ends of the wire share;
//!   NaN payload bits are not preserved — use the binary protocol for
//!   that level of fidelity).

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 128;

/// A parsed or to-be-encoded JSON document.
///
/// Objects preserve insertion order so encoded results files stay
/// diffable and deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token (no sign, no fraction, no exponent).
    Uint(u64),
    /// A negative integer token.
    Int(i64),
    /// Any other number token (fraction, exponent, or 64-bit overflow).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Wraps an `f32` so that decoding with [`JsonValue::as_f32`]
    /// recovers the exact bits (see the module docs).
    pub fn from_f32(v: f32) -> JsonValue {
        JsonValue::Float(v as f64)
    }

    /// Wraps an `f64` rounded to six decimal places — the convention of
    /// the workspace's results files, where sub-microsecond noise is
    /// not meaningful.
    pub fn from_f64_rounded(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Float((v * 1e6).round() / 1e6)
        } else {
            JsonValue::Float(v)
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Encodes compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Uint(u) => {
                let mut buf = [0u8; 20];
                out.push_str(format_u64(*u, &mut buf));
            }
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Float(v) => write_f64(*v, out),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Encodes compactly into a fresh string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Encodes with two-space indentation — the style of the committed
    /// `results/*.json` files.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            // Leaves (and empty containers) encode compactly; one row
            // of a results table stays one line.
            other => other.write(out),
        }
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `u64` (exact for `Uint`; `Int`/`Float` only
    /// when the value is a non-negative integer in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            JsonValue::Float(f)
                if *f >= 0.0 && f.fract() == 0.0 && *f <= 9_007_199_254_740_992.0 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Uint(u) => Some(*u as f64),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value narrowed to `f32` — exact when the value was
    /// produced by [`JsonValue::from_f32`] (see the module docs).
    pub fn as_f32(&self) -> Option<f32> {
        self.as_f64().map(|f| f as f32)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Uint(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Uint(v as u64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Uint(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        if v >= 0 {
            JsonValue::Uint(v as u64)
        } else {
            JsonValue::Int(v)
        }
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

/// Builds an insertion-ordered object from `(key, value)` pairs.
pub fn obj<const N: usize>(fields: [(&str, JsonValue); N]) -> JsonValue {
    JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Encodes an `f32` slice as a JSON array (bit-exact round trip via
/// [`JsonValue::from_f32`]).
pub fn f32_array(values: &[f32]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&v| JsonValue::from_f32(v)).collect())
}

/// Encodes a `u32` slice as a JSON array.
pub fn u32_array(values: &[u32]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&v| JsonValue::Uint(v as u64)).collect())
}

/// Encodes a `usize` slice as a JSON array.
pub fn usize_array(values: &[usize]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&v| JsonValue::Uint(v as u64)).collect())
}

/// Decodes a JSON array into `f32`s (narrowing via [`JsonValue::as_f32`]).
pub fn parse_f32_array(value: &JsonValue) -> Option<Vec<f32>> {
    value.as_array()?.iter().map(|v| v.as_f32()).collect()
}

/// Decodes a JSON array into `u32`s.
pub fn parse_u32_array(value: &JsonValue) -> Option<Vec<u32>> {
    value.as_array()?.iter().map(|v| v.as_u64().and_then(|u| u32::try_from(u).ok())).collect()
}

/// Decodes a JSON array into `usize`s.
pub fn parse_usize_array(value: &JsonValue) -> Option<Vec<usize>> {
    value.as_array()?.iter().map(|v| v.as_u64().map(|u| u as usize)).collect()
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Formats a `u64` without allocating (the hot path of feature-array
/// encoding).
fn format_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

fn write_f64(v: f64, out: &mut String) {
    use std::fmt::Write;
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("Infinity");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral floats recognisable as numbers with a decimal
        // point, so the round trip stays in `Float`.
        write!(out, "{v:.1}").expect("writing to String cannot fail");
    } else {
        // Rust's shortest-round-trip Display.
        write!(out, "{v}").expect("writing to String cannot fail");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'N') => self.literal("NaN", JsonValue::Float(f64::NAN)),
            Some(b'I') => self.literal("Infinity", JsonValue::Float(f64::INFINITY)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(JsonValue::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: the low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if self.pos == start + usize::from(negative) {
            return Err(self.err("expected digits"));
        }
        if integral {
            if negative {
                if let Ok(i) = token.parse::<i64>() {
                    return Ok(JsonValue::Int(i));
                }
            } else if let Ok(u) = token.parse::<u64>() {
                return Ok(JsonValue::Uint(u));
            }
        }
        token
            .parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError { offset: start, message: format!("bad number '{token}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &JsonValue) -> JsonValue {
        JsonValue::parse(&v.encode()).expect("own encoding parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Uint(0),
            JsonValue::Uint(u64::MAX),
            JsonValue::Int(-1),
            JsonValue::Int(i64::MIN),
            JsonValue::Float(0.5),
            JsonValue::Float(-123.456e-7),
            JsonValue::Str(String::new()),
            JsonValue::Str("plain".to_string()),
        ] {
            assert_eq!(round_trip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let nasty =
            "quote:\" backslash:\\ newline:\n tab:\t cr:\r nul:\u{0} bell:\u{7} high:\u{10348} e:é";
        let v = JsonValue::Str(nasty.to_string());
        let encoded = v.encode();
        assert!(encoded.contains("\\\""), "quotes escaped");
        assert!(encoded.contains("\\\\"), "backslashes escaped");
        assert!(encoded.contains("\\u0000"), "control chars escaped");
        assert_eq!(round_trip(&v), v);
        // Escaped input (incl. a surrogate pair) decodes correctly.
        let parsed = JsonValue::parse(r#""a\u0041\n\ud800\udf48""#).unwrap();
        assert_eq!(parsed.as_str(), Some("aA\n\u{10348}"));
    }

    #[test]
    fn f32_values_round_trip_bit_exactly() {
        let cases = [
            0.0f32,
            -0.0,
            0.3,
            1.0 / 3.0,
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            1.0e-45, // smallest subnormal
            core::f32::consts::PI,
            -7.394601e-23,
        ];
        for &x in &cases {
            let v = JsonValue::from_f32(x);
            let back = round_trip(&v).as_f32().expect("numeric");
            assert_eq!(back.to_bits(), x.to_bits(), "{x:?} changed bits");
        }
        // Array helper too.
        let arr = f32_array(&cases);
        let back = parse_f32_array(&round_trip(&arr)).expect("array of numbers");
        for (a, b) in cases.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn non_finite_floats_use_extension_tokens() {
        assert_eq!(JsonValue::Float(f64::INFINITY).encode(), "Infinity");
        assert_eq!(JsonValue::Float(f64::NEG_INFINITY).encode(), "-Infinity");
        assert_eq!(JsonValue::Float(f64::NAN).encode(), "NaN");
        assert!(JsonValue::parse("NaN").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(JsonValue::parse("-Infinity").unwrap().as_f64(), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn nested_structures_round_trip_and_preserve_order() {
        let doc = obj([
            ("zeta", JsonValue::Uint(1)),
            ("alpha", JsonValue::Array(vec![JsonValue::Null, obj([("k", "v".into())])])),
            ("empty_arr", JsonValue::Array(vec![])),
            ("empty_obj", JsonValue::Object(vec![])),
        ]);
        assert_eq!(round_trip(&doc), doc);
        let encoded = doc.encode();
        assert!(
            encoded.find("zeta").unwrap() < encoded.find("alpha").unwrap(),
            "insertion order preserved"
        );
        // Pretty form parses back to the same tree.
        assert_eq!(JsonValue::parse(&doc.encode_pretty()).unwrap(), doc);
    }

    #[test]
    fn parser_handles_whitespace_and_rejects_garbage() {
        let v = JsonValue::parse(" {\n \"a\" : [ 1 , 2.5 ,\t-3 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "01a",
            "[1] trailing",
            "nul",
            "\"\\ud800\"", // unpaired surrogate
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn integer_accessors_stay_exact() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let neg = JsonValue::parse("-9223372036854775808").unwrap();
        assert_eq!(neg, JsonValue::Int(i64::MIN));
        assert_eq!(neg.as_u64(), None);
        assert_eq!(JsonValue::Float(3.0).as_u64(), Some(3));
        assert_eq!(JsonValue::Float(3.5).as_u64(), None);
    }

    #[test]
    fn array_helpers_round_trip() {
        let u = vec![0u32, 7, u32::MAX];
        assert_eq!(parse_u32_array(&round_trip(&u32_array(&u))), Some(u));
        let s = vec![0usize, 1, 1 << 40];
        assert_eq!(parse_usize_array(&round_trip(&usize_array(&s))), Some(s));
    }
}
