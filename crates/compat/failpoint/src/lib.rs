//! Offline stand-in for the `fail` crate: named failpoints with
//! deterministic trigger schedules.
//!
//! This workspace builds hermetically, so fault injection is vendored
//! rather than pulled from crates.io. Durability and serving code marks
//! its crash windows with named failpoints
//! (`igcn_fail::fail_point!("store::wal::append")`); tests and the
//! `chaos_tool` campaigns then arm those points with a *schedule* (when
//! to fire) and an *action* (what the instrumented site should do), and
//! exercise recovery paths that are unreachable from the public API.
//!
//! # Cost when disabled
//!
//! A process that never arms a failpoint pays **one relaxed atomic
//! load** per evaluation — no lock, no allocation, no map lookup (the
//! registry is only consulted once the global "armed" flag is set).
//! `chaos_tool --quick` pins this with a timing check against an empty
//! loop.
//!
//! # Configuration grammar
//!
//! A point is armed with a spec string, programmatically
//! ([`cfg`]) or via the `IGCN_FAILPOINTS` environment variable
//! ([`init_from_env`], `name=spec;name2=spec2`):
//!
//! ```text
//! spec    := [trigger ":"] action
//! trigger := "always" | "once" | "nth(" N ")" | "prob(" P "," SEED ")"
//! action  := "return" | "truncate(" K ")" | "panic" | "delay(" MS ")"
//! ```
//!
//! `always` fires on every hit, `once` on the first hit only, `nth(N)`
//! on the N-th hit (1-based) only, and `prob(P, SEED)` on each hit
//! independently with probability `P` drawn from a dedicated
//! xoshiro256++ stream seeded with `SEED` — fully deterministic per
//! seed. The trigger defaults to `always`.
//!
//! `panic` and `delay` are executed *inside* [`eval`]; `return` and
//! `truncate(K)` surface to the instrumented site, which maps them onto
//! its own typed error (and, for truncate, tears its write after the
//! first `K` bytes — simulating a crash mid-write).
//!
//! # Test isolation
//!
//! The registry is process-global, so concurrently running tests that
//! arm points would trample each other. [`FailGuard::setup`] serialises
//! them behind a global mutex and clears every point on drop:
//!
//! ```
//! let guard = igcn_fail::FailGuard::setup();
//! guard.cfg("demo::op", "nth(2):return").unwrap();
//! assert_eq!(igcn_fail::eval("demo::op"), None); // hit 1
//! assert_eq!(igcn_fail::eval("demo::op"), Some(igcn_fail::Action::ReturnErr)); // hit 2
//! assert_eq!(igcn_fail::eval("demo::op"), None); // nth fires once
//! drop(guard); // disarms everything
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What an armed failpoint instructs the instrumented site to do.
///
/// `Panic` and `Delay` never escape [`eval`] (they are executed there);
/// the site only ever observes the two "return-class" actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with the site's typed injected-fault error.
    ReturnErr,
    /// Tear the site's write after the first `K` bytes, then fail —
    /// the on-disk signature of a crash mid-write.
    Truncate(usize),
    /// Panic at the site (executed inside [`eval`]).
    Panic,
    /// Sleep for the given duration, then proceed normally (executed
    /// inside [`eval`]).
    Delay(Duration),
}

/// When an armed failpoint fires.
#[derive(Debug, Clone)]
enum Trigger {
    /// Every hit.
    Always,
    /// The first hit only.
    Once,
    /// The `n`-th hit (1-based) only.
    Nth(u64),
    /// Each hit independently with probability `p`, from a dedicated
    /// deterministic stream.
    Prob { p: f64, rng: StdRng },
}

#[derive(Debug)]
struct PointState {
    trigger: Trigger,
    action: Action,
    /// Evaluations of this point since it was armed.
    hits: u64,
    /// Times the trigger fired.
    fired: u64,
}

impl PointState {
    /// Records one hit and decides whether the point fires on it.
    fn hit(&mut self) -> Option<Action> {
        self.hits += 1;
        let fire = match &mut self.trigger {
            Trigger::Always => true,
            Trigger::Once => self.hits == 1,
            Trigger::Nth(n) => self.hits == *n,
            Trigger::Prob { p, rng } => rng.gen_bool(*p),
        };
        if fire {
            self.fired += 1;
            Some(self.action)
        } else {
            None
        }
    }
}

/// Fast-path flag: false while no point is armed, so [`eval`] costs one
/// relaxed load in the common (production) case.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, PointState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, PointState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Locks the registry, recovering from poisoning — a failpoint armed
/// with `panic` poisons the lock by design when the panicking thread
/// still holds it elsewhere, and the registry (plain data) stays valid.
fn lock_registry() -> MutexGuard<'static, HashMap<String, PointState>> {
    registry().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Evaluates the failpoint `name` at an instrumented site.
///
/// Returns `None` when the point is not armed or its trigger does not
/// fire on this hit. `Panic` and `Delay` actions are executed here;
/// `ReturnErr` / `Truncate` are returned for the site to map onto its
/// typed error.
///
/// # Panics
///
/// Panics (by design) when the point fires with [`Action::Panic`].
#[inline]
pub fn eval(name: &str) -> Option<Action> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    eval_armed(name)
}

#[inline(never)]
fn eval_armed(name: &str) -> Option<Action> {
    let action = { lock_registry().get_mut(name).and_then(PointState::hit) };
    match action {
        Some(Action::Panic) => panic!("failpoint {name} fired: injected panic"),
        Some(Action::Delay(d)) => {
            std::thread::sleep(d);
            None
        }
        other => other,
    }
}

/// Marks a failpoint site. With one argument, evaluates the point
/// (panic/delay actions execute; return-class actions are ignored —
/// use the two-argument form at sites that can fail). With a handler,
/// **returns** `handler(action)` from the enclosing function when the
/// point fires with a return-class action.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        let _ = $crate::eval($name);
    }};
    ($name:expr, $handler:expr) => {
        if let Some(action) = $crate::eval($name) {
            #[allow(clippy::redundant_closure_call)]
            return ($handler)(action);
        }
    };
}

/// Arms failpoint `name` with `spec` (see the crate docs for the
/// grammar). Re-arming an already-armed point replaces its schedule and
/// resets its hit counter.
///
/// # Errors
///
/// A human-readable description of the first grammar violation.
pub fn cfg(name: impl Into<String>, spec: &str) -> Result<(), String> {
    let (trigger, action) = parse_spec(spec)?;
    lock_registry().insert(name.into(), PointState { trigger, action, hits: 0, fired: 0 });
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Disarms failpoint `name` (a no-op if it was not armed).
pub fn remove(name: &str) {
    let mut reg = lock_registry();
    reg.remove(name);
    if reg.is_empty() {
        ARMED.store(false, Ordering::Relaxed);
    }
}

/// Disarms every failpoint and restores the zero-cost fast path.
pub fn teardown() {
    let mut reg = lock_registry();
    reg.clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Times failpoint `name` was evaluated since it was armed (0 if not
/// armed) — lets tests assert an instrumented site was actually
/// reached.
pub fn hits(name: &str) -> u64 {
    lock_registry().get(name).map_or(0, |p| p.hits)
}

/// Times failpoint `name` fired since it was armed (0 if not armed).
pub fn fired(name: &str) -> u64 {
    lock_registry().get(name).map_or(0, |p| p.fired)
}

/// Names of every currently armed failpoint, sorted.
pub fn armed_points() -> Vec<String> {
    let mut names: Vec<String> = lock_registry().keys().cloned().collect();
    names.sort();
    names
}

/// Arms every point named in the `IGCN_FAILPOINTS` environment variable
/// (`name=spec;name2=spec2`; empty segments are ignored). Call it from
/// binary entry points — libraries never read the environment
/// themselves.
///
/// # Errors
///
/// The first malformed segment, with its offending text.
pub fn init_from_env() -> Result<(), String> {
    let Ok(raw) = std::env::var("IGCN_FAILPOINTS") else {
        return Ok(());
    };
    for segment in raw.split(';').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, spec) = segment
            .split_once('=')
            .ok_or_else(|| format!("IGCN_FAILPOINTS segment {segment:?} lacks '='"))?;
        cfg(name.trim(), spec.trim()).map_err(|e| format!("failpoint {name:?}: {e}"))?;
    }
    Ok(())
}

fn parse_spec(spec: &str) -> Result<(Trigger, Action), String> {
    let spec = spec.trim();
    // The trigger:action separator is the first ':' outside parentheses
    // (specs like "nth(3):truncate(17)" contain no nested colons).
    let (trigger_text, action_text) = match spec.split_once(':') {
        Some((t, a)) => (Some(t.trim()), a.trim()),
        None => (None, spec),
    };
    let trigger = match trigger_text {
        None | Some("always") => Trigger::Always,
        Some("once") => Trigger::Once,
        Some(t) => {
            if let Some(n) = parse_call(t, "nth")? {
                let n: u64 =
                    n.parse().map_err(|_| format!("nth() wants a positive integer, got {n:?}"))?;
                if n == 0 {
                    return Err("nth() is 1-based; nth(0) never fires".to_string());
                }
                Trigger::Nth(n)
            } else if let Some(args) = parse_call(t, "prob")? {
                let (p, seed) = args
                    .split_once(',')
                    .ok_or_else(|| format!("prob() wants \"p, seed\", got {args:?}"))?;
                let p: f64 = p
                    .trim()
                    .parse()
                    .map_err(|_| format!("prob() probability {p:?} is not a float"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("prob() probability {p} must be in [0, 1]"));
                }
                let seed: u64 = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("prob() seed {seed:?} is not a u64"))?;
                Trigger::Prob { p, rng: StdRng::seed_from_u64(seed) }
            } else {
                return Err(format!("unknown trigger {t:?}"));
            }
        }
    };
    let action = match action_text {
        "return" => Action::ReturnErr,
        "panic" => Action::Panic,
        a => {
            if let Some(k) = parse_call(a, "truncate")? {
                let k: usize =
                    k.parse().map_err(|_| format!("truncate() wants a byte count, got {k:?}"))?;
                Action::Truncate(k)
            } else if let Some(ms) = parse_call(a, "delay")? {
                let ms: u64 =
                    ms.parse().map_err(|_| format!("delay() wants milliseconds, got {ms:?}"))?;
                Action::Delay(Duration::from_millis(ms))
            } else {
                return Err(format!("unknown action {a:?}"));
            }
        }
    };
    Ok((trigger, action))
}

/// Matches `func(args)` and returns the trimmed `args` text, `None` if
/// `text` does not start with `func(`.
fn parse_call<'a>(text: &'a str, func: &str) -> Result<Option<&'a str>, String> {
    let Some(rest) = text.strip_prefix(func) else {
        return Ok(None);
    };
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(') else {
        return Ok(None);
    };
    let inner = inner
        .strip_suffix(')')
        .ok_or_else(|| format!("{func}(... missing closing parenthesis in {text:?}"))?;
    Ok(Some(inner.trim()))
}

/// Serialises failpoint-using tests behind a global mutex and disarms
/// everything (setup *and* drop), so concurrently running tests never
/// observe each other's schedules.
pub struct FailGuard {
    _lock: MutexGuard<'static, ()>,
}

impl FailGuard {
    /// Acquires the global failpoint lock and clears the registry.
    pub fn setup() -> FailGuard {
        static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = TEST_LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            // A previous test panicking (often deliberately, via an
            // armed `panic` action) poisons the lock; the () payload
            // cannot be corrupt.
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        teardown();
        FailGuard { _lock: lock }
    }

    /// Arms a failpoint for the guard's scope (see [`cfg`]).
    ///
    /// # Errors
    ///
    /// As [`cfg`].
    pub fn cfg(&self, name: impl Into<String>, spec: &str) -> Result<(), String> {
        cfg(name, spec)
    }

    /// Disarms one point without ending the scope (see [`remove`]).
    pub fn remove(&self, name: &str) {
        remove(name);
    }
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_points_are_silent() {
        let _guard = FailGuard::setup();
        assert_eq!(eval("never::armed"), None);
        assert_eq!(hits("never::armed"), 0);
    }

    #[test]
    fn always_fires_every_hit() {
        let guard = FailGuard::setup();
        guard.cfg("t::always", "return").unwrap();
        for _ in 0..5 {
            assert_eq!(eval("t::always"), Some(Action::ReturnErr));
        }
        assert_eq!(hits("t::always"), 5);
        assert_eq!(fired("t::always"), 5);
    }

    #[test]
    fn once_fires_only_first_hit() {
        let guard = FailGuard::setup();
        guard.cfg("t::once", "once:return").unwrap();
        assert_eq!(eval("t::once"), Some(Action::ReturnErr));
        assert_eq!(eval("t::once"), None);
        assert_eq!(eval("t::once"), None);
        assert_eq!(fired("t::once"), 1);
    }

    #[test]
    fn nth_fires_only_that_hit() {
        let guard = FailGuard::setup();
        guard.cfg("t::nth", "nth(3):truncate(17)").unwrap();
        assert_eq!(eval("t::nth"), None);
        assert_eq!(eval("t::nth"), None);
        assert_eq!(eval("t::nth"), Some(Action::Truncate(17)));
        assert_eq!(eval("t::nth"), None);
    }

    #[test]
    fn prob_is_deterministic_per_seed() {
        let draw = |seed: u64| {
            let guard = FailGuard::setup();
            guard.cfg("t::prob", &format!("prob(0.5, {seed}):return")).unwrap();
            (0..64).map(|_| eval("t::prob").is_some()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
        let fired = draw(42).iter().filter(|f| **f).count();
        assert!((10..=54).contains(&fired), "p=0.5 over 64 hits fired {fired} times");
    }

    #[test]
    fn panic_action_panics_inside_eval() {
        let guard = FailGuard::setup();
        guard.cfg("t::panic", "panic").unwrap();
        let caught = std::panic::catch_unwind(|| eval("t::panic")).expect_err("must panic");
        let msg = caught.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("t::panic"), "panic names the point: {msg}");
    }

    #[test]
    fn delay_action_sleeps_then_proceeds() {
        let guard = FailGuard::setup();
        guard.cfg("t::delay", "delay(15)").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(eval("t::delay"), None);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn remove_and_teardown_disarm() {
        let guard = FailGuard::setup();
        guard.cfg("t::a", "return").unwrap();
        guard.cfg("t::b", "return").unwrap();
        assert_eq!(armed_points(), vec!["t::a".to_string(), "t::b".to_string()]);
        guard.remove("t::a");
        assert_eq!(eval("t::a"), None);
        assert_eq!(eval("t::b"), Some(Action::ReturnErr));
        teardown();
        assert_eq!(eval("t::b"), None);
        assert!(armed_points().is_empty());
    }

    #[test]
    fn env_parsing_arms_multiple_points() {
        let _guard = FailGuard::setup();
        // init_from_env reads the process environment, which tests must
        // not mutate; exercise the same path via cfg on split segments.
        let raw = "a::x = once:return ; b::y = nth(2):delay(1)";
        for segment in raw.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let (name, spec) = segment.split_once('=').unwrap();
            cfg(name.trim(), spec.trim()).unwrap();
        }
        assert_eq!(armed_points(), vec!["a::x".to_string(), "b::y".to_string()]);
        assert_eq!(eval("a::x"), Some(Action::ReturnErr));
        assert_eq!(eval("a::x"), None);
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (spec, needle) in [
            ("sometimes:return", "unknown trigger"),
            ("explode", "unknown action"),
            ("nth(0):return", "1-based"),
            ("nth(x):return", "positive integer"),
            ("prob(1.5, 3):return", "[0, 1]"),
            ("prob(0.5):return", "p, seed"),
            ("truncate(", "closing parenthesis"),
            ("delay(soon)", "milliseconds"),
        ] {
            let err = parse_spec(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec:?} -> {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn fail_point_macro_returns_through_handler() {
        fn guarded_op() -> Result<u32, String> {
            fail_point!("t::macro", |action: Action| Err(format!("injected: {action:?}")));
            Ok(7)
        }
        let guard = FailGuard::setup();
        assert_eq!(guarded_op(), Ok(7));
        guard.cfg("t::macro", "return").unwrap();
        assert!(guarded_op().unwrap_err().contains("ReturnErr"));
    }

    #[test]
    fn rearming_resets_the_schedule() {
        let guard = FailGuard::setup();
        guard.cfg("t::rearm", "nth(2):return").unwrap();
        assert_eq!(eval("t::rearm"), None);
        guard.cfg("t::rearm", "nth(2):return").unwrap();
        assert_eq!(eval("t::rearm"), None, "counter restarted");
        assert_eq!(eval("t::rearm"), Some(Action::ReturnErr));
    }
}
