//! Vendored structured logging, in the same hermetic spirit as
//! `igcn-obs` and `igcn-fail`: no dependencies, one process-global
//! level switch, and emission cheap enough to leave compiled into
//! serving paths.
//!
//! Every emitted line is one JSON object on stderr:
//!
//! ```text
//! {"ts_ms":1791234567890,"level":"warn","target":"gateway","msg":"slow request",
//!  "trace":"00000b50aa000001","service_ms":612,"shards":4}
//! ```
//!
//! * `ts_ms` — wall-clock milliseconds since the Unix epoch.
//! * `level` — `debug` | `info` | `warn` | `error`.
//! * `target` — the emitting subsystem (`"gateway"`, `"serve"`…).
//! * `msg` — the human message, JSON-escaped.
//! * `trace` — the correlated trace id as 16 hex digits; present only
//!   when a trace is installed via [`with_trace`] at the emission site
//!   (the gateway installs the request's id around its per-request
//!   logging, so log lines join trace trees and flight-recorder rows
//!   without every call site threading an id).
//! * `suppressed` — present when per-callsite rate limiting dropped
//!   lines since this callsite last emitted.
//! * every `key = value` field from the macro call, with values that
//!   format as plain JSON numbers emitted unquoted and everything else
//!   as an escaped JSON string.
//!
//! The [`debug!`]/[`info!`]/[`warn!`]/[`error!`] macros gate on the
//! global minimum level (one relaxed atomic load when the line is
//! filtered), then on a **per-callsite rate limiter**: each macro
//! expansion owns a static window counter allowing
//! [`MAX_PER_SEC_PER_SITE`] lines per second, so a hot error path
//! cannot flood stderr — dropped lines are counted and surface in the
//! `suppressed` field of the site's next emitted line.
//!
//! The default minimum level is `info`, overridable with
//! `IGCN_LOG=debug|info|warn|error|off` or [`set_min_level`]. Tests
//! capture lines in-process with [`capture`] instead of scraping
//! stderr.

use std::io::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Per-callsite emission budget per one-second window; lines beyond it
/// are dropped and counted into the site's `suppressed` field.
pub const MAX_PER_SEC_PER_SITE: u32 = 50;

/// Log severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Diagnostic chatter, off by default.
    Debug = 0,
    /// Normal operational events.
    Info = 1,
    /// Something degraded but handled (contained panic, slow request).
    Warn = 2,
    /// Something failed.
    Error = 3,
}

impl Level {
    /// The lowercase level name used on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// `Level::Error as u8 + 1`: the "off" sentinel for the level switch.
const LEVEL_OFF: u8 = 4;

fn min_level_atomic() -> &'static AtomicU8 {
    static MIN: OnceLock<AtomicU8> = OnceLock::new();
    MIN.get_or_init(|| {
        let initial = match std::env::var("IGCN_LOG").as_deref().map(str::trim) {
            Ok("debug") => Level::Debug as u8,
            Ok("info") => Level::Info as u8,
            Ok("warn") => Level::Warn as u8,
            Ok("error") => Level::Error as u8,
            Ok("off") => LEVEL_OFF,
            _ => Level::Info as u8,
        };
        AtomicU8::new(initial)
    })
}

/// Sets the process-global minimum level (`None` disables logging).
pub fn set_min_level(level: Option<Level>) {
    min_level_atomic().store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
}

/// Whether a line at `level` would currently be emitted (before rate
/// limiting). One relaxed load — the macros call this first.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    // LEVEL_OFF is above Error, so "off" filters every level with the
    // same single comparison.
    (level as u8) >= min_level_atomic().load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Trace correlation
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_TRACE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Restores the previously installed trace id on drop.
pub struct TraceGuard {
    prev: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// Installs `trace_id` as this thread's log-correlation id for the
/// guard's lifetime: every line emitted on this thread carries it as
/// the `trace` field. Installing 0 clears correlation for the scope.
pub fn with_trace(trace_id: u64) -> TraceGuard {
    TraceGuard { prev: CURRENT_TRACE.with(|c| c.replace(trace_id)) }
}

/// This thread's installed trace id (0 = none).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(std::cell::Cell::get)
}

// ---------------------------------------------------------------------------
// Per-callsite rate limiting
// ---------------------------------------------------------------------------

/// One macro expansion's rate-limit state. Public because the macros
/// expand a `static CallSite` at every call site; not for direct use.
pub struct CallSite {
    window_start_ms: AtomicU64,
    in_window: AtomicU32,
    suppressed: AtomicU64,
}

impl CallSite {
    /// A fresh call-site record (used by the macro expansion).
    pub const fn new() -> CallSite {
        CallSite {
            window_start_ms: AtomicU64::new(0),
            in_window: AtomicU32::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Admits or drops one line under the per-second budget; dropped
    /// lines are counted for the `suppressed` field.
    pub fn admit(&self) -> bool {
        let now = now_ms();
        let start = self.window_start_ms.load(Ordering::Relaxed);
        if now.saturating_sub(start) >= 1_000 {
            // New window. One winner resets the count; racers in the
            // same millisecond just charge the fresh window.
            if self
                .window_start_ms
                .compare_exchange(start, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.in_window.store(0, Ordering::Relaxed);
            }
        }
        if self.in_window.fetch_add(1, Ordering::Relaxed) < MAX_PER_SEC_PER_SITE {
            true
        } else {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Takes the suppressed-line count accumulated since the last
    /// emitted line.
    pub fn take_suppressed(&self) -> u64 {
        self.suppressed.swap(0, Ordering::Relaxed)
    }
}

impl Default for CallSite {
    fn default() -> Self {
        CallSite::new()
    }
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn capture_sink() -> &'static Mutex<Option<Vec<String>>> {
    static SINK: OnceLock<Mutex<Option<Vec<String>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Redirects emission into an in-process buffer for the guard's
/// lifetime and returns the captured lines on [`Capture::take`] /
/// drop-and-retake. Test use; capture is process-global, so tests
/// using it must serialise themselves.
pub struct Capture {
    _private: (),
}

impl Capture {
    /// The lines captured so far (draining).
    pub fn take(&self) -> Vec<String> {
        capture_sink()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        *capture_sink().lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
    }
}

/// Starts capturing emitted lines in-process instead of writing stderr.
pub fn capture() -> Capture {
    *capture_sink().lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(Vec::new());
    Capture { _private: () }
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Whether a `Display`-formatted value is already a legal JSON number
/// (so the encoder can emit it unquoted).
fn is_json_number(s: &str) -> bool {
    let rest = s.strip_prefix('-').unwrap_or(s);
    if rest.is_empty() || !rest.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    // Leading zeros are illegal in JSON ("007"); lone "0" and "0.5" are fine.
    if rest.len() > 1 && rest.starts_with('0') && !rest.starts_with("0.") {
        return false;
    }
    s.parse::<f64>().map(f64::is_finite).unwrap_or(false)
}

/// Formats and writes one line. Called by the macros after the level
/// gate and the rate limiter admitted it; not for direct use.
pub fn emit(
    level: Level,
    target: &str,
    msg: &std::fmt::Arguments<'_>,
    fields: &[(&str, &dyn std::fmt::Display)],
    suppressed: u64,
) {
    let mut line = String::with_capacity(96 + fields.len() * 24);
    line.push_str(&format!(
        "{{\"ts_ms\":{},\"level\":\"{}\",\"target\":\"",
        now_ms(),
        level.as_str()
    ));
    escape_into(&mut line, target);
    line.push_str("\",\"msg\":\"");
    escape_into(&mut line, &msg.to_string());
    line.push('"');
    let trace = current_trace();
    if trace != 0 {
        line.push_str(&format!(",\"trace\":\"{trace:016x}\""));
    }
    if suppressed > 0 {
        line.push_str(&format!(",\"suppressed\":{suppressed}"));
    }
    for (key, value) in fields {
        line.push_str(",\"");
        escape_into(&mut line, key);
        line.push_str("\":");
        let rendered = value.to_string();
        if is_json_number(&rendered) {
            line.push_str(&rendered);
        } else {
            line.push('"');
            escape_into(&mut line, &rendered);
            line.push('"');
        }
    }
    line.push('}');
    let mut sink = capture_sink().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(buf) = sink.as_mut() {
        buf.push(line);
    } else {
        drop(sink);
        let stderr = std::io::stderr();
        let mut handle = stderr.lock();
        let _ = writeln!(handle, "{line}");
    }
}

/// The workhorse macro: `log!(Level::Warn, "gateway", "slow request",
/// service_ms = ms, shards = k)`. Prefer the level-named wrappers.
#[macro_export]
macro_rules! log {
    ($level:expr, $target:expr, $fmt:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        if $crate::level_enabled($level) {
            static SITE: $crate::CallSite = $crate::CallSite::new();
            if SITE.admit() {
                $crate::emit(
                    $level,
                    $target,
                    &format_args!($fmt),
                    &[$((stringify!($key), &$value as &dyn ::std::fmt::Display)),*],
                    SITE.take_suppressed(),
                );
            }
        }
    }};
}

/// Emits at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $fmt:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::log!($crate::Level::Debug, $target, $fmt $(, $key = $value)*)
    };
}

/// Emits at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $fmt:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::log!($crate::Level::Info, $target, $fmt $(, $key = $value)*)
    };
}

/// Emits at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $fmt:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::log!($crate::Level::Warn, $target, $fmt $(, $key = $value)*)
    };
}

/// Emits at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $fmt:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::log!($crate::Level::Error, $target, $fmt $(, $key = $value)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests: the capture sink and level switch are
    /// process-global.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn line_schema_and_field_encoding() {
        let _s = serial();
        let cap = capture();
        set_min_level(Some(Level::Info));
        crate::warn!("gateway", "slow request", service_ms = 612, peer = "10.0.0.1:99");
        let lines = cap.take();
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"ts_ms\":"), "bad line start: {line}");
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"target\":\"gateway\""));
        assert!(line.contains("\"msg\":\"slow request\""));
        assert!(line.contains("\"service_ms\":612"), "numbers emit unquoted: {line}");
        assert!(line.contains("\"peer\":\"10.0.0.1:99\""), "strings emit quoted: {line}");
        assert!(!line.contains("\"trace\""), "no trace installed, no trace field");
        assert!(line.ends_with('}'));
    }

    #[test]
    fn level_switch_filters() {
        let _s = serial();
        let cap = capture();
        set_min_level(Some(Level::Warn));
        crate::info!("test", "filtered");
        crate::error!("test", "kept");
        set_min_level(None);
        crate::error!("test", "off drops everything");
        set_min_level(Some(Level::Info));
        let lines = cap.take();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"msg\":\"kept\""));
    }

    #[test]
    fn trace_correlation_is_scoped() {
        let _s = serial();
        let cap = capture();
        set_min_level(Some(Level::Info));
        {
            let _g = with_trace(0xB50A_A001);
            crate::info!("test", "inside");
            assert_eq!(current_trace(), 0xB50A_A001);
        }
        crate::info!("test", "outside");
        let lines = cap.take();
        assert!(lines[0].contains("\"trace\":\"00000000b50aa001\""), "{}", lines[0]);
        assert!(!lines[1].contains("\"trace\""), "{}", lines[1]);
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn per_callsite_rate_limit_suppresses_and_reports() {
        let _s = serial();
        let cap = capture();
        set_min_level(Some(Level::Info));
        for i in 0..(MAX_PER_SEC_PER_SITE + 20) {
            crate::info!("test", "hot line", i = i);
        }
        let lines = cap.take();
        assert_eq!(lines.len(), MAX_PER_SEC_PER_SITE as usize, "budget is per callsite per second");
        // The suppressed count surfaces on the *next* admitted line
        // from the same site — force a fresh window by emitting from
        // another site first (same window: still suppressed), then
        // check the counter accumulated.
        crate::info!("test", "other site still emits");
        assert_eq!(cap.take().len(), 1, "rate limit is per-site, not global");
    }

    #[test]
    fn escaping_and_number_detection() {
        let _s = serial();
        let cap = capture();
        set_min_level(Some(Level::Info));
        crate::info!("test", "quote\" and \\ and\nnewline", odd = "007", neg = -1.5);
        let lines = cap.take();
        let line = &lines[0];
        assert!(line.contains("quote\\\" and \\\\ and\\nnewline"), "{line}");
        assert!(line.contains("\"odd\":\"007\""), "leading-zero stays a string: {line}");
        assert!(line.contains("\"neg\":-1.5"), "{line}");
        assert!(is_json_number("0"));
        assert!(is_json_number("0.5"));
        assert!(is_json_number("-12"));
        assert!(!is_json_number(""));
        assert!(!is_json_number("1e"));
        assert!(!is_json_number("NaN"));
        assert!(!is_json_number("0x10"));
    }
}
