//! Hierarchical trace trees with bounded tail-sampling retention.
//!
//! The flat stage histograms in the crate root answer "how slow is
//! `layer_execute` in aggregate"; this module answers "why was trace
//! `0x7f3a` slow" — per request, per shard. A request's spans form a
//! tree: the gateway roots one span per inference request, the
//! dispatcher hangs a `dispatch` child under it, and the engines hang
//! per-layer / per-shard / halo children under that, each carrying
//! key-value tags (shard index, layer, wavefront count, protocol).
//!
//! The design keeps the serving stack's cost model intact:
//!
//! * **Cheap requests stay cheap.** A request only grows a tree when
//!   the process opted into telemetry ([`crate::enabled`]) *and* the
//!   gateway rooted a span for it. Untraced code paths see an inert
//!   [`TraceCtx::NONE`]: [`OpenSpan::child`] on an inactive parent is
//!   one branch, no clock read, no allocation — and the flat
//!   [`crate::Span`] fast path (one relaxed load when disabled) is
//!   untouched.
//! * **Tail sampling.** Finished trees are *retained* only when the
//!   request was slow (total time over [`slow_threshold_ns`],
//!   configurable via [`set_slow_threshold_ns`] or
//!   `IGCN_TRACE_THRESHOLD_MS`) or did not finish `"ok"`. Everything
//!   else is assembled and immediately discarded, so steady-state fast
//!   traffic costs span records but no storage.
//! * **Everything is bounded.** At most [`MAX_IN_PROGRESS`] trees
//!   assemble concurrently (excess traces are dropped and counted in
//!   the `traces_dropped` counter), each tree holds at most
//!   [`MAX_SPANS_PER_TRACE`] spans (excess spans tick the tree's
//!   `truncated_spans`), and the retention ring holds at most
//!   [`retention`] trees (oldest evicted first).
//!
//! Retained trees export as Chrome trace-event JSON
//! ([`RetainedTrace::to_chrome_json`]) loadable in `chrome://tracing`
//! / Perfetto, and the gateway serves them on `GET /trace/{id}` +
//! `GET /traces`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::counter;

/// Upper bound on concurrently assembling traces. A gateway at this
/// many in-flight *traced* requests stops collecting new trees (they
/// are dropped and counted) rather than growing without bound.
pub const MAX_IN_PROGRESS: usize = 512;

/// Upper bound on spans per tree. Spans past it are dropped and
/// counted in [`RetainedTrace::truncated_spans`].
pub const MAX_SPANS_PER_TRACE: usize = 2048;

const DEFAULT_RETENTION: usize = 64;
const DEFAULT_SLOW_THRESHOLD_MS: u64 = 500;

/// A span's coordinates inside a trace tree: which trace, and which
/// span to parent children under. `Copy`, 16 bytes — cheap to stamp on
/// requests and capture into worker closures.
///
/// [`TraceCtx::NONE`] (`trace_id == 0`) is the inert context: spans
/// opened under it do nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The end-to-end trace id (0 = no trace attached).
    pub trace_id: u64,
    /// The span to parent children under (0 = root level).
    pub span_id: u64,
}

impl TraceCtx {
    /// The inert context: no trace attached.
    pub const NONE: TraceCtx = TraceCtx { trace_id: 0, span_id: 0 };

    /// Whether spans opened under this context record anything.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }
}

/// One recorded span of a finished (or assembling) trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub span_id: u64,
    /// Parent span id (0 for the root span).
    pub parent_id: u64,
    /// Stage/step name (`"request"`, `"dispatch"`, `"shard_execute"`…).
    pub name: &'static str,
    /// Start offset in nanoseconds, relative to the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Key-value tags (`("shard", "2")`, `("layer", "0")`…).
    pub tags: Vec<(&'static str, String)>,
}

struct PendingTrace {
    spans: Vec<SpanRecord>,
    truncated_spans: u64,
}

/// A finished, retained trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedTrace {
    /// The end-to-end trace id.
    pub trace_id: u64,
    /// Terminal status: `"ok"`, `"failed"`, `"shed"`, `"deadline"`,
    /// `"aborted"`.
    pub status: &'static str,
    /// Total root-to-finish duration in nanoseconds.
    pub total_ns: u64,
    /// Spans in record order (parents are recorded after their
    /// children finish, so order is not topological — sort by
    /// `start_ns` for display).
    pub spans: Vec<SpanRecord>,
    /// Spans dropped because the tree hit [`MAX_SPANS_PER_TRACE`].
    pub truncated_spans: u64,
}

struct TraceStore {
    in_progress: HashMap<u64, PendingTrace>,
    retained: VecDeque<RetainedTrace>,
    retention: usize,
}

fn store() -> &'static Mutex<TraceStore> {
    static STORE: OnceLock<Mutex<TraceStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(TraceStore {
            in_progress: HashMap::new(),
            retained: VecDeque::new(),
            retention: std::env::var("IGCN_TRACE_RETAIN")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_RETENTION),
        })
    })
}

fn store_lock() -> std::sync::MutexGuard<'static, TraceStore> {
    store().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn slow_threshold() -> &'static AtomicU64 {
    static THRESHOLD: OnceLock<AtomicU64> = OnceLock::new();
    THRESHOLD.get_or_init(|| {
        let ms = std::env::var("IGCN_TRACE_THRESHOLD_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SLOW_THRESHOLD_MS);
        AtomicU64::new(ms.saturating_mul(1_000_000))
    })
}

/// The tail-sampling slow threshold in nanoseconds: a trace finishing
/// `"ok"` is retained only when its total time is at or over this.
pub fn slow_threshold_ns() -> u64 {
    slow_threshold().load(Ordering::Relaxed)
}

/// Sets the tail-sampling slow threshold (0 retains every finished
/// trace). Defaults to 500 ms, or `IGCN_TRACE_THRESHOLD_MS` when set.
pub fn set_slow_threshold_ns(ns: u64) {
    slow_threshold().store(ns, Ordering::Relaxed);
}

/// The retention ring capacity.
pub fn retention() -> usize {
    store_lock().retention
}

/// Sets the retention ring capacity (evicting oldest entries if the
/// ring is over the new bound). Defaults to 64, or `IGCN_TRACE_RETAIN`
/// when set.
///
/// # Panics
///
/// Panics if `n == 0` — a zero-capacity ring would silently disable
/// the subsystem; use the slow threshold to tune volume instead.
pub fn set_retention(n: usize) {
    assert!(n > 0, "trace retention must be positive");
    let mut s = store_lock();
    s.retention = n;
    while s.retained.len() > n {
        s.retained.pop_front();
    }
}

/// The process trace epoch: all span timestamps are offsets from this
/// instant, so spans recorded on different threads order correctly.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Pushes one finished span record into its assembling trace. No-op if
/// the trace is not assembling (dropped, finished, or never begun).
fn push_span(trace_id: u64, record: SpanRecord) {
    let mut s = store_lock();
    if let Some(pending) = s.in_progress.get_mut(&trace_id) {
        if pending.spans.len() < MAX_SPANS_PER_TRACE {
            pending.spans.push(record);
        } else {
            pending.truncated_spans += 1;
        }
    }
}

/// Number of traces currently assembling (leak check for tests and
/// the `/traces` endpoint).
pub fn in_progress_count() -> usize {
    store_lock().in_progress.len()
}

/// Number of retained trace trees.
pub fn retained_count() -> usize {
    store_lock().retained.len()
}

/// The retained trees, oldest first (cloned snapshots).
pub fn retained_traces() -> Vec<RetainedTrace> {
    store_lock().retained.iter().cloned().collect()
}

/// The retained tree for `trace_id`, if any. When the same trace id
/// was retained more than once (a client reusing ids), the most recent
/// tree wins.
pub fn retained_trace(trace_id: u64) -> Option<RetainedTrace> {
    store_lock().retained.iter().rev().find(|t| t.trace_id == trace_id).cloned()
}

/// Drops every assembling and retained trace (tool/test use).
pub fn reset_traces() {
    let mut s = store_lock();
    s.in_progress.clear();
    s.retained.clear();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct LiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    tags: Vec<(&'static str, String)>,
}

/// An open tree span: records itself into its trace on drop (or
/// [`OpenSpan::finish`]). Inert — no clock read, no allocation — when
/// opened under an inactive parent or while telemetry is disabled.
#[must_use = "an open span records on drop; binding it to _ drops immediately"]
pub struct OpenSpan {
    live: Option<LiveSpan>,
}

impl OpenSpan {
    /// Opens a child span of `parent` named `name`. Inert when
    /// `parent` is inactive or telemetry is disabled.
    #[inline]
    pub fn child(parent: TraceCtx, name: &'static str) -> OpenSpan {
        if !parent.is_active() || !crate::enabled() {
            return OpenSpan { live: None };
        }
        OpenSpan::open(parent.trace_id, parent.span_id, name)
    }

    fn open(trace_id: u64, parent_id: u64, name: &'static str) -> OpenSpan {
        OpenSpan {
            live: Some(LiveSpan {
                trace_id,
                span_id: next_span_id(),
                parent_id,
                name,
                start: Instant::now(),
                start_ns: now_ns(),
                tags: Vec::new(),
            }),
        }
    }

    /// Whether this span is recording.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// The context children of this span should be opened under
    /// ([`TraceCtx::NONE`] when inert — children stay inert too).
    pub fn ctx(&self) -> TraceCtx {
        match &self.live {
            Some(live) => TraceCtx { trace_id: live.trace_id, span_id: live.span_id },
            None => TraceCtx::NONE,
        }
    }

    /// Attaches a key-value tag. The value is only formatted when the
    /// span is live.
    pub fn tag(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(live) = &mut self.live {
            live.tags.push((key, value.to_string()));
        }
    }

    /// Ends the span now (same as dropping it).
    pub fn finish(self) {}
}

impl Drop for OpenSpan {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let dur_ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            push_span(
                live.trace_id,
                SpanRecord {
                    span_id: live.span_id,
                    parent_id: live.parent_id,
                    name: live.name,
                    start_ns: live.start_ns,
                    dur_ns,
                    tags: live.tags,
                },
            );
        }
    }
}

/// Records an already-measured span of `dur_ns` nanoseconds ending
/// *now* as a child of `parent` — for stages timed with explicit
/// clocks before their trace was known (gateway decode, queue wait).
/// No-op when `parent` is inactive.
pub fn record_child_ns(parent: TraceCtx, name: &'static str, dur_ns: u64) {
    if !parent.is_active() || !crate::enabled() {
        return;
    }
    let end_ns = now_ns();
    push_span(
        parent.trace_id,
        SpanRecord {
            span_id: next_span_id(),
            parent_id: parent.span_id,
            name,
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
            tags: Vec::new(),
        },
    );
}

/// The root span of one request's trace tree.
///
/// Created by the serving edge once per traced request
/// ([`root_span`]); [`RootSpan::finish`] closes the tree with a
/// terminal status and runs the tail-sampling retention decision. A
/// `RootSpan` dropped *without* `finish` — a died connection, a forced
/// shutdown — finishes its tree as `"aborted"`, so assembling traces
/// can never leak.
#[must_use = "an unfinished root span aborts its trace on drop"]
pub struct RootSpan {
    span: OpenSpan,
    trace_id: u64,
}

impl RootSpan {
    /// The context request stages should parent under.
    pub fn ctx(&self) -> TraceCtx {
        self.span.ctx()
    }

    /// Whether this request is growing a tree.
    pub fn is_live(&self) -> bool {
        self.span.is_live()
    }

    /// Attaches a key-value tag to the root span.
    pub fn tag(&mut self, key: &'static str, value: impl std::fmt::Display) {
        self.span.tag(key, value);
    }

    /// Closes the tree with `status` and decides retention: trees that
    /// did not finish `"ok"`, or whose total time is at or over
    /// [`slow_threshold_ns`], enter the bounded retention ring.
    pub fn finish(mut self, status: &'static str) {
        self.finish_inner(status);
    }

    fn finish_inner(&mut self, status: &'static str) {
        let Some(live) = self.span.live.take() else {
            return;
        };
        let trace_id = self.trace_id;
        let total_ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let root_record = SpanRecord {
            span_id: live.span_id,
            parent_id: 0,
            name: live.name,
            start_ns: live.start_ns,
            dur_ns: total_ns,
            tags: live.tags,
        };
        let mut s = store_lock();
        let Some(mut pending) = s.in_progress.remove(&trace_id) else {
            return;
        };
        if pending.spans.len() < MAX_SPANS_PER_TRACE {
            pending.spans.push(root_record);
        } else {
            pending.truncated_spans += 1;
        }
        let retain = status != "ok" || total_ns >= slow_threshold_ns();
        if retain {
            while s.retained.len() >= s.retention {
                s.retained.pop_front();
            }
            s.retained.push_back(RetainedTrace {
                trace_id,
                status,
                total_ns,
                spans: pending.spans,
                truncated_spans: pending.truncated_spans,
            });
        }
    }
}

impl Drop for RootSpan {
    fn drop(&mut self) {
        self.finish_inner("aborted");
    }
}

/// Begins a trace tree for `trace_id` and opens its root span. The
/// returned root is inert (and nothing is collected) when telemetry is
/// disabled, `trace_id` is 0, the same id is already assembling, or
/// [`MAX_IN_PROGRESS`] trees are in flight (counted in the
/// `traces_dropped` counter).
pub fn root_span(trace_id: u64, name: &'static str) -> RootSpan {
    if trace_id == 0 || !crate::enabled() {
        return RootSpan { span: OpenSpan { live: None }, trace_id: 0 };
    }
    {
        let mut s = store_lock();
        if s.in_progress.contains_key(&trace_id) || s.in_progress.len() >= MAX_IN_PROGRESS {
            drop(s);
            counter("traces_dropped").inc();
            return RootSpan { span: OpenSpan { live: None }, trace_id: 0 };
        }
        s.in_progress.insert(trace_id, PendingTrace { spans: Vec::new(), truncated_spans: 0 });
    }
    RootSpan { span: OpenSpan::open(trace_id, 0, name), trace_id }
}

// ---------------------------------------------------------------------------
// Ambient context
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT: std::cell::Cell<TraceCtx> = const { std::cell::Cell::new(TraceCtx::NONE) };
}

/// Restores the previous ambient context on drop.
pub struct AmbientGuard {
    prev: TraceCtx,
    installed: bool,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        if self.installed {
            AMBIENT.with(|c| c.set(self.prev));
        }
    }
}

/// Installs `ctx` as this thread's ambient trace context for the
/// guard's lifetime. Engines read it ([`ambient`]) to parent their
/// layer spans without threading a context through every call
/// signature. Installing an inactive context is free (no TLS write).
pub fn with_ambient(ctx: TraceCtx) -> AmbientGuard {
    if !ctx.is_active() {
        return AmbientGuard { prev: TraceCtx::NONE, installed: false };
    }
    let prev = AMBIENT.with(|c| c.replace(ctx));
    AmbientGuard { prev, installed: true }
}

/// This thread's ambient trace context ([`TraceCtx::NONE`] when the
/// current work is untraced). Worker-pool closures do **not** inherit
/// it — capture a [`TraceCtx`] by value into the closure instead.
pub fn ambient() -> TraceCtx {
    AMBIENT.with(std::cell::Cell::get)
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Minimal JSON string escaping (the crate is dependency-free by
/// design, so the exporter hand-rolls its encoding).
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

impl RetainedTrace {
    /// Renders the tree in Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in
    /// `chrome://tracing` and Perfetto.
    ///
    /// Every span becomes one complete (`"ph":"X"`) event with
    /// microsecond `ts`/`dur`; spans tagged `shard=K` render on track
    /// `tid = K + 1` so per-shard work lines up visually, everything
    /// else on track 0. Span ids, parent ids and tags ride in `args`,
    /// so the tree structure survives the export.
    pub fn to_chrome_json(&self) -> String {
        let mut spans: Vec<&SpanRecord> = self.spans.iter().collect();
        spans.sort_by_key(|s| (s.start_ns, s.span_id));
        let mut out = String::with_capacity(256 + spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"igcn\"}}",
        );
        for span in spans {
            let tid = span
                .tags
                .iter()
                .find(|(k, _)| *k == "shard")
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .map_or(0, |shard| shard + 1);
            out.push_str(",{\"name\":\"");
            escape_into(&mut out, span.name);
            out.push_str("\",\"cat\":\"igcn\",\"ph\":\"X\",\"ts\":");
            push_us(&mut out, span.start_ns);
            out.push_str(",\"dur\":");
            push_us(&mut out, span.dur_ns);
            out.push_str(&format!(",\"pid\":1,\"tid\":{tid},\"args\":{{"));
            out.push_str(&format!(
                "\"trace_id\":\"{:016x}\",\"span_id\":{},\"parent_id\":{}",
                self.trace_id, span.span_id, span.parent_id
            ));
            for (key, value) in &span.tags {
                out.push_str(",\"");
                escape_into(&mut out, key);
                out.push_str("\":\"");
                escape_into(&mut out, value);
                out.push('"');
            }
            out.push_str("}}");
        }
        out.push_str(&format!(
            "],\"otherData\":{{\"trace_id\":\"{:016x}\",\"status\":\"{}\",\
             \"total_ns\":{},\"truncated_spans\":{}}}}}",
            self.trace_id, self.status, self.total_ns, self.truncated_spans
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that flip the process-global enabled flag and
    /// share the trace store.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn inert_paths_record_nothing() {
        let _s = serial();
        crate::set_enabled(false);
        reset_traces();
        // Disabled: even a nonzero trace id roots nothing.
        let root = root_span(0xAA, "request");
        assert!(!root.is_live());
        assert_eq!(root.ctx(), TraceCtx::NONE);
        root.finish("ok");
        // Enabled but inactive parent: children stay inert.
        crate::set_enabled(true);
        let child = OpenSpan::child(TraceCtx::NONE, "layer_execute");
        assert!(!child.is_live());
        drop(child);
        record_child_ns(TraceCtx::NONE, "queue_wait", 10);
        crate::set_enabled(false);
        assert_eq!(in_progress_count(), 0);
        assert_eq!(retained_count(), 0);
    }

    #[test]
    fn tree_assembles_with_parents_and_tags() {
        let _s = serial();
        crate::set_enabled(true);
        reset_traces();
        set_slow_threshold_ns(0); // retain everything
        let mut root = root_span(0xB0B, "request");
        assert!(root.is_live());
        root.tag("protocol", "http");
        let mut layer = OpenSpan::child(root.ctx(), "layer_execute");
        layer.tag("layer", 0);
        let mut shard = OpenSpan::child(layer.ctx(), "shard_execute");
        shard.tag("shard", 1);
        let (layer_id, shard_id) = (layer.ctx().span_id, shard.ctx().span_id);
        drop(shard);
        drop(layer);
        record_child_ns(root.ctx(), "queue_wait", 1_234);
        let root_id = root.ctx().span_id;
        root.finish("ok");
        crate::set_enabled(false);

        assert_eq!(in_progress_count(), 0, "finish must remove the assembling tree");
        let tree = retained_trace(0xB0B).expect("threshold 0 retains the tree");
        assert_eq!(tree.status, "ok");
        assert_eq!(tree.spans.len(), 4);
        let find = |id: u64| tree.spans.iter().find(|s| s.span_id == id).unwrap();
        assert_eq!(find(root_id).parent_id, 0);
        assert_eq!(find(layer_id).parent_id, root_id);
        assert_eq!(find(shard_id).parent_id, layer_id);
        assert_eq!(find(shard_id).tags, vec![("shard", "1".to_string())]);
        // Every non-root span's parent exists in the tree.
        for span in &tree.spans {
            assert!(
                span.parent_id == 0 || tree.spans.iter().any(|p| p.span_id == span.parent_id),
                "span {} has a dangling parent {}",
                span.span_id,
                span.parent_id
            );
        }
        reset_traces();
    }

    #[test]
    fn tail_sampling_drops_fast_ok_traces_and_keeps_errored_ones() {
        let _s = serial();
        crate::set_enabled(true);
        reset_traces();
        set_slow_threshold_ns(u64::MAX >> 1); // nothing is "slow"
        root_span(0x1, "request").finish("ok");
        assert_eq!(retained_count(), 0, "a fast ok trace must be discarded");
        root_span(0x2, "request").finish("failed");
        assert_eq!(retained_count(), 1, "an errored trace must be retained");
        drop(root_span(0x3, "request")); // dropped without finish
        crate::set_enabled(false);
        let aborted = retained_trace(0x3).expect("a dropped root aborts and retains its trace");
        assert_eq!(aborted.status, "aborted");
        assert_eq!(in_progress_count(), 0);
        set_slow_threshold_ns(DEFAULT_SLOW_THRESHOLD_MS * 1_000_000);
        reset_traces();
    }

    #[test]
    fn retention_ring_is_bounded() {
        let _s = serial();
        crate::set_enabled(true);
        reset_traces();
        set_slow_threshold_ns(0);
        let prev = retention();
        set_retention(4);
        for id in 1..=20u64 {
            root_span(id, "request").finish("ok");
        }
        crate::set_enabled(false);
        assert_eq!(retained_count(), 4, "retention ring must stay at its bound");
        let kept: Vec<u64> = retained_traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(kept, vec![17, 18, 19, 20], "oldest trees evicted first");
        set_retention(prev);
        set_slow_threshold_ns(DEFAULT_SLOW_THRESHOLD_MS * 1_000_000);
        reset_traces();
    }

    #[test]
    fn span_and_trace_caps_hold() {
        let _s = serial();
        crate::set_enabled(true);
        reset_traces();
        set_slow_threshold_ns(0);
        let root = root_span(0xCAFE, "request");
        for _ in 0..(MAX_SPANS_PER_TRACE + 10) {
            drop(OpenSpan::child(root.ctx(), "layer_execute"));
        }
        root.finish("ok");
        let tree = retained_trace(0xCAFE).unwrap();
        assert_eq!(tree.spans.len(), MAX_SPANS_PER_TRACE);
        // +1: the root span itself also hit the full tree.
        assert_eq!(tree.truncated_spans, 11);

        // In-progress cap: the 513th concurrent trace is dropped.
        reset_traces();
        let roots: Vec<RootSpan> =
            (1..=MAX_IN_PROGRESS as u64).map(|id| root_span(id, "request")).collect();
        assert!(roots.iter().all(RootSpan::is_live));
        let dropped_before = counter("traces_dropped").get();
        let overflow = root_span(9_999, "request");
        assert!(!overflow.is_live(), "traces beyond MAX_IN_PROGRESS must be dropped");
        assert_eq!(counter("traces_dropped").get(), dropped_before + 1);
        drop(roots);
        crate::set_enabled(false);
        set_slow_threshold_ns(DEFAULT_SLOW_THRESHOLD_MS * 1_000_000);
        reset_traces();
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        let outer = TraceCtx { trace_id: 7, span_id: 1 };
        let inner = TraceCtx { trace_id: 7, span_id: 2 };
        assert_eq!(ambient(), TraceCtx::NONE);
        {
            let _g1 = with_ambient(outer);
            assert_eq!(ambient(), outer);
            {
                let _g2 = with_ambient(inner);
                assert_eq!(ambient(), inner);
                // Installing an inactive ctx is a no-op, not a clear.
                let _g3 = with_ambient(TraceCtx::NONE);
                assert_eq!(ambient(), inner);
            }
            assert_eq!(ambient(), outer);
        }
        assert_eq!(ambient(), TraceCtx::NONE);
    }

    #[test]
    fn chrome_export_is_valid_and_complete() {
        let tree = RetainedTrace {
            trace_id: 0xDEAD,
            status: "ok",
            total_ns: 2_500,
            spans: vec![
                SpanRecord {
                    span_id: 1,
                    parent_id: 0,
                    name: "request",
                    start_ns: 0,
                    dur_ns: 2_500,
                    tags: vec![("protocol", "http".to_string())],
                },
                SpanRecord {
                    span_id: 2,
                    parent_id: 1,
                    name: "shard_execute",
                    start_ns: 500,
                    dur_ns: 1_000,
                    tags: vec![("shard", "2".to_string()), ("note", "a\"b".to_string())],
                },
            ],
            truncated_spans: 0,
        };
        let json = tree.to_chrome_json();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.500"), "µs timestamps with ns precision");
        assert!(json.contains("\"dur\":1.000"));
        assert!(json.contains("\"tid\":3"), "shard 2 renders on track 3");
        assert!(json.contains("\"shard\":\"2\""));
        assert!(json.contains("a\\\"b"), "tag values must be escaped");
        assert!(json.contains("\"trace_id\":\"000000000000dead\""));
        // Balanced braces/brackets outside strings — cheap structural
        // validity check without a JSON parser in this crate.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for ch in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "unbalanced JSON structure");
        assert!(!in_str);
    }
}
