//! Vendored process-global telemetry, in the same hermetic spirit as
//! `igcn-fail` and `igcn-simd`: no dependencies, one `static` registry,
//! and a disabled fast path cheap enough to leave compiled into every
//! production code path.
//!
//! Three primitives cover the serving stack's observability needs:
//!
//! * **Metrics** — [`counter`], [`gauge`] and [`histogram`] hand out
//!   `&'static` handles from a name-keyed registry. Recording is
//!   lock-free (plain atomic adds; histograms use fixed log₂ buckets so
//!   a latency record is one `fetch_add` plus a `fetch_max`), and
//!   [`HistogramSnapshot`]s are mergeable and subtractable, reporting
//!   p50/p90/p99/max with **bit-stable bucket bounds** — quantiles are
//!   always a bucket's inclusive upper bound `2^(i+1) - 1`, so the same
//!   records produce the same numbers on every machine.
//! * **Spans** — [`Span::enter("stage")`](Span::enter) times a named
//!   stage into `stage_ns/<stage>` on drop. When telemetry is disabled
//!   (the default) entering a span is one relaxed atomic load and no
//!   clock read — the overhead probe
//!   ([`disabled_span_overhead_ns`]) pins it at single-digit
//!   nanoseconds, the same contract the failpoint crate makes for
//!   `eval`.
//! * **Flight recorder** — a bounded ring ([`flight_record`] /
//!   [`flight_entries`]) holding the last [`FLIGHT_CAPACITY`]
//!   per-request stage breakdowns with their trace IDs, for postmortem
//!   dumps when a slow request has already left the building.
//!
//! Per-request **trace IDs** ([`next_trace_id`]) are process-unique,
//! never zero, and seeded from wall clock + pid so two processes do not
//! collide in practice. The gateway propagates them end-to-end
//! (`X-IGCN-Trace` header, binary frame header field) and stamps them
//! on flight-recorder entries and slow-request log lines.
//!
//! [`render_prometheus`] serialises the whole registry in Prometheus
//! text exposition format: counters as `igcn_<name>_total`, gauges as
//! `igcn_<name>`, and every stage histogram as one `igcn_stage_ns`
//! summary family with `stage` and `quantile` labels.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod trace;

pub use trace::TraceCtx;

/// Master switch. Disabled by default: every [`Span::enter`] is one
/// relaxed load, and [`flight_record`] drops entries.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables telemetry process-wide. Serving edges call
/// `set_enabled(true)` at startup; unit tests and benches that need the
/// nanosecond-path leave it off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether telemetry is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The stage glossary: every named stage the serving stack records.
/// `obs_tool` drives load shaped to touch all of them and asserts every
/// histogram is non-empty, so a stage added here without wiring (or
/// wired without being declared) fails CI.
pub mod stage {
    /// HTTP/1.1 request head + body parse at the gateway.
    pub const GATEWAY_DECODE_HTTP: &str = "gateway_decode_http";
    /// Binary frame decode (header check + payload parse) at the gateway.
    pub const GATEWAY_DECODE_BINARY: &str = "gateway_decode_binary";
    /// Admission-queue wait: request admitted → handed to the serving tier.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Dispatch service time: handed to the serving tier → response ready
    /// (covers the serving queue, micro-batching and backend execution).
    pub const DISPATCH: &str = "dispatch";
    /// One engine layer's hot-path execution (recorded per layer).
    pub const LAYER_EXECUTE: &str = "layer_execute";
    /// Sharded fleet: building + broadcasting the hub XW halo slab and
    /// the shard-local island fan-out of one layer.
    pub const HALO_EXCHANGE: &str = "halo_exchange";
    /// Sharded fleet: schedule-order merge of per-island hub
    /// contributions + hub finalisation of one layer.
    pub const HALO_MERGE: &str = "halo_merge";
    /// One write-ahead-log record append (fsync included).
    pub const WAL_APPEND: &str = "wal_append";
    /// One crash-safe checkpoint (rotate + publish + WAL reset).
    pub const CHECKPOINT: &str = "checkpoint";
    /// HTTP response serialisation at the gateway.
    pub const RESPONSE_ENCODE_HTTP: &str = "response_encode_http";
    /// Binary response frame encode at the gateway.
    pub const RESPONSE_ENCODE_BINARY: &str = "response_encode_binary";

    /// Every declared stage, in pipeline order.
    pub const ALL: &[&str] = &[
        GATEWAY_DECODE_HTTP,
        GATEWAY_DECODE_BINARY,
        QUEUE_WAIT,
        DISPATCH,
        LAYER_EXECUTE,
        HALO_EXCHANGE,
        HALO_MERGE,
        WAL_APPEND,
        CHECKPOINT,
        RESPONSE_ENCODE_HTTP,
        RESPONSE_ENCODE_BINARY,
    ];
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: HashMap<String, &'static Counter>,
    gauges: HashMap<String, &'static Gauge>,
    histograms: HashMap<String, &'static Histogram>,
    descriptions: HashMap<String, &'static str>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    // Telemetry must never take the process down: recover from a
    // poisoned lock (a panic under the registry lock) by using the
    // inner value — every operation on it is rebuild-safe.
    registry().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The process-global counter named `name`, created on first use. The
/// handle is `'static`: hot paths may look it up once and keep it.
pub fn counter(name: &str) -> &'static Counter {
    if let Some(c) = lock().counters.get(name) {
        return c;
    }
    let mut reg = lock();
    reg.counters.entry(name.to_string()).or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// The process-global gauge named `name`, created on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    if let Some(g) = lock().gauges.get(name) {
        return g;
    }
    let mut reg = lock();
    reg.gauges.entry(name.to_string()).or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// The process-global histogram named `name`, created on first use.
/// Stage histograms use the bare stage name (see [`stage`]).
pub fn histogram(name: &str) -> &'static Histogram {
    if let Some(h) = lock().histograms.get(name) {
        return h;
    }
    let mut reg = lock();
    reg.histograms.entry(name.to_string()).or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Registers help text for the metric named `name`, emitted as the
/// `# HELP` line in [`render_prometheus`]. First registration wins;
/// metrics without one get a generic per-kind default. Help must be a
/// single line (exposition-format comments cannot span lines).
pub fn describe(name: &str, help: &'static str) {
    debug_assert!(!help.contains('\n'), "metric help must be a single line");
    lock().descriptions.entry(name.to_string()).or_insert(help);
}

/// Zeroes every registered metric and clears the flight recorder.
/// Handles stay valid (values reset in place). Tool use only — counters
/// observed by concurrent recorders will simply restart from zero.
pub fn reset() {
    let reg = lock();
    for c in reg.counters.values() {
        c.value.store(0, Ordering::SeqCst);
    }
    for g in reg.gauges.values() {
        g.value.store(0, Ordering::SeqCst);
    }
    for h in reg.histograms.values() {
        h.reset();
    }
    drop(reg);
    flight().lock().unwrap_or_else(|poisoned| poisoned.into_inner()).clear();
}

/// A monotonically increasing `u64` counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge (instantaneous level: queue depth, open connections).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Self {
        Gauge { value: AtomicI64::new(0) }
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of log₂ buckets: bucket 0 holds values `{0, 1}`, bucket `i`
/// holds `[2^i, 2^(i+1))`, bucket 63 holds everything from `2^63` up.
pub const NUM_BUCKETS: usize = 64;

/// A fixed-bucket log₂ histogram with lock-free recording.
///
/// Values are dimensionless `u64`s; the serving stack records
/// nanoseconds. Recording is two relaxed atomic RMWs (bucket + sum) plus
/// a `fetch_max`; there is no lock anywhere on the record path.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("p50", &s.quantile(0.50))
            .field("max", &s.max)
            .finish()
    }
}

/// The log₂ bucket index of `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < 2 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i` — the bit-stable value
/// quantiles report.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);

    fn new() -> Self {
        Histogram {
            buckets: [Self::ZERO; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// One consistent-enough snapshot (relaxed loads: concurrent
    /// recorders may straddle buckets, but quiesced values are exact).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::SeqCst);
        }
        self.sum.store(0, Ordering::SeqCst);
        self.max.store(0, Ordering::SeqCst);
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable, subtractable,
/// and the thing quantiles are computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket record counts (see [`bucket_upper_bound`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not a bucket bound).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; NUM_BUCKETS], sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Total records.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the inclusive upper bound
    /// of the bucket holding the rank-`ceil(q·count)` record — bit-stable
    /// across machines and runs for the same records. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Folds `other` into `self` (fleet-wide aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The records landed since `earlier` was taken (bucket-wise
    /// saturating subtraction — valid because buckets only grow). `max`
    /// is carried from `self`: a maximum cannot be un-observed, so the
    /// delta's max is an upper bound for the window.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        for (a, b) in out.buckets.iter_mut().zip(&earlier.buckets) {
            *a = a.saturating_sub(*b);
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An RAII stage timer: construction notes the clock, drop records the
/// elapsed nanoseconds into the `stage_ns/<stage>` histogram. When
/// telemetry is disabled the constructor returns an inert guard without
/// reading the clock — one relaxed atomic load, pinned ≤ 5 ns by
/// [`disabled_span_overhead_ns`] and the CI smoke step.
#[must_use = "a span records on drop; binding it to _ drops immediately"]
pub struct Span {
    live: Option<(Instant, &'static Histogram)>,
}

impl Span {
    /// Starts timing `stage` (a name from the [`stage`] glossary, or any
    /// ad-hoc stage name).
    #[inline]
    pub fn enter(stage: &str) -> Span {
        if !ENABLED.load(Ordering::Relaxed) {
            return Span { live: None };
        }
        Span::enter_slow(stage)
    }

    #[inline(never)]
    fn enter_slow(stage: &str) -> Span {
        Span { live: Some((Instant::now(), stage_histogram(stage))) }
    }

    /// Abandons the span without recording (e.g. a stage that did not
    /// actually run).
    pub fn cancel(mut self) {
        self.live = None;
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((start, hist)) = self.live.take() {
            hist.record(elapsed_ns(start));
        }
    }
}

/// The histogram a stage records into (name-prefixed so stage timings
/// and ad-hoc histograms cannot collide).
pub fn stage_histogram(stage: &str) -> &'static Histogram {
    // Stage names are short; format! once per lookup is fine — hot
    // paths hold the returned handle or live behind the enabled gate.
    histogram(&format!("stage_ns/{stage}"))
}

/// Records a stage duration measured externally (the gateway times its
/// per-request stages with explicit clocks so it can also assemble the
/// flight-recorder breakdown). Gated on [`enabled`].
#[inline]
pub fn record_stage_ns(stage: &str, ns: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    stage_histogram(stage).record(ns);
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Measures the cost of entering + dropping a [`Span`] with telemetry
/// **disabled** — the production configuration for the engine's inner
/// loops. Forces telemetry off for the measurement and restores the
/// previous state. Returns nanoseconds per span (median of 5 timed
/// passes of `iters` spans each, so one scheduler hiccup on a 1-CPU
/// container cannot dominate).
pub fn disabled_span_overhead_ns(iters: u64) -> f64 {
    let was = enabled();
    set_enabled(false);
    let timed = |iters: u64| {
        let start = Instant::now();
        for _ in 0..iters {
            let span = std::hint::black_box(Span::enter(std::hint::black_box("obs::probe")));
            drop(span);
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    let mut passes: Vec<f64> = (0..5).map(|_| timed(iters)).collect();
    passes.sort_by(f64::total_cmp);
    set_enabled(was);
    passes[2]
}

// ---------------------------------------------------------------------------
// Trace IDs
// ---------------------------------------------------------------------------

/// A fresh process-unique trace ID: never zero (zero is the wire's
/// "no trace attached"), strictly unique within the process (atomic
/// counter), and seeded from wall clock ⊕ pid so concurrent processes
/// diverge immediately.
pub fn next_trace_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        AtomicU64::new(nanos ^ (u64::from(std::process::id()) << 32))
    });
    let mut id = next.fetch_add(1, Ordering::Relaxed);
    if id == 0 {
        id = next.fetch_add(1, Ordering::Relaxed);
    }
    id
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Ring capacity of the flight recorder: the last this-many requests'
/// stage breakdowns survive for postmortem dumps.
pub const FLIGHT_CAPACITY: usize = 256;

/// One finished request's breakdown, as kept by the flight recorder and
/// dumped by the gateway's `/stats` endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// The request's end-to-end trace ID.
    pub trace_id: u64,
    /// Caller correlation id (`InferenceRequest::id`).
    pub request_id: u64,
    /// `"http"` or `"binary"`.
    pub protocol: &'static str,
    /// Terminal status: `"ok"`, `"error"`, `"shed"`, `"deadline"`.
    pub status: &'static str,
    /// `(stage, nanoseconds)` in pipeline order.
    pub stages: Vec<(&'static str, u64)>,
}

fn flight() -> &'static Mutex<std::collections::VecDeque<FlightEntry>> {
    static FLIGHT: OnceLock<Mutex<std::collections::VecDeque<FlightEntry>>> = OnceLock::new();
    FLIGHT.get_or_init(|| Mutex::new(std::collections::VecDeque::with_capacity(FLIGHT_CAPACITY)))
}

/// Appends `entry` to the flight recorder, evicting the oldest entry
/// once [`FLIGHT_CAPACITY`] is reached. No-op while telemetry is
/// disabled.
pub fn flight_record(entry: FlightEntry) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut ring = flight().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if ring.len() == FLIGHT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(entry);
}

/// The recorded entries, oldest first.
pub fn flight_entries() -> Vec<FlightEntry> {
    flight().lock().unwrap_or_else(|poisoned| poisoned.into_inner()).iter().cloned().collect()
}

// ---------------------------------------------------------------------------
// Snapshot + Prometheus rendering
// ---------------------------------------------------------------------------

/// A name-sorted copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram (stage histograms carry
    /// the `stage_ns/` prefix).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Snapshots the whole registry, sorted by name for stable output.
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock();
    let mut counters: Vec<(String, u64)> =
        reg.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect();
    let mut gauges: Vec<(String, i64)> =
        reg.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect();
    let mut histograms: Vec<(String, HistogramSnapshot)> =
        reg.histograms.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect();
    drop(reg);
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    MetricsSnapshot { counters, gauges, histograms }
}

/// Maps a metric name to a Prometheus-legal base name: `igcn_` prefix,
/// and every character outside `[a-zA-Z0-9_]` becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("igcn_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the registry in Prometheus text exposition format (v0.0.4):
/// counters as `igcn_<name>_total`, gauges as `igcn_<name>`, stage
/// histograms as one `igcn_stage_ns` summary family labelled by stage
/// (`quantile` ∈ {0.5, 0.9, 0.99} plus `_sum`/`_count` and a `_max`
/// gauge), other histograms as their own summary family. Every family
/// carries a `# HELP` line: text registered via [`describe`], or a
/// per-kind default naming the metric.
pub fn render_prometheus() -> String {
    let snap = snapshot();
    let descriptions: HashMap<String, &'static str> = lock().descriptions.clone();
    let help_for = |name: &str, default: String| -> String {
        descriptions.get(name).map_or(default, |h| (*h).to_string())
    };
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let base = prom_name(name);
        let help = help_for(name, format!("Monotonic event counter {name}."));
        out.push_str(&format!(
            "# HELP {base}_total {help}\n# TYPE {base}_total counter\n{base}_total {value}\n"
        ));
    }
    for (name, value) in &snap.gauges {
        let base = prom_name(name);
        let help = help_for(name, format!("Instantaneous level {name}."));
        out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} gauge\n{base} {value}\n"));
    }
    let stages: Vec<&(String, HistogramSnapshot)> =
        snap.histograms.iter().filter(|(n, _)| n.starts_with("stage_ns/")).collect();
    if !stages.is_empty() {
        out.push_str(
            "# HELP igcn_stage_ns Per-stage latency in nanoseconds \
             (log2-bucketed summary; quantiles are bit-stable bucket upper bounds).\n",
        );
        out.push_str("# TYPE igcn_stage_ns summary\n");
        for (name, h) in &stages {
            let stage = &name["stage_ns/".len()..];
            for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "igcn_stage_ns{{stage=\"{stage}\",quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("igcn_stage_ns_sum{{stage=\"{stage}\"}} {}\n", h.sum));
            out.push_str(&format!("igcn_stage_ns_count{{stage=\"{stage}\"}} {}\n", h.count()));
            out.push_str(&format!("igcn_stage_ns_max{{stage=\"{stage}\"}} {}\n", h.max));
        }
    }
    for (name, h) in snap.histograms.iter().filter(|(n, _)| !n.starts_with("stage_ns/")) {
        let base = prom_name(name);
        let help = help_for(name, format!("Log2-bucketed summary {name}."));
        out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} summary\n"));
        for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!("{base}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
        }
        out.push_str(&format!("{base}_sum {}\n", h.sum));
        out.push_str(&format!("{base}_count {}\n", h.count()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that flip the process-global enabled flag (the
    /// same pattern as `igcn-fail`'s `FailGuard`).
    fn enabled_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn bucket_bounds_are_bit_stable() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        let h = histogram("test/quantiles");
        h.reset();
        for v in [1u64, 2, 3, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.quantile(0.5), bucket_upper_bound(bucket_of(100)));
        assert_eq!(s.quantile(1.0), bucket_upper_bound(bucket_of(100_000)));
        let mut merged = s.clone();
        merged.merge(&s);
        assert_eq!(merged.count(), 14);
        assert_eq!(merged.sum, 2 * s.sum);
        let delta = merged.delta_since(&s);
        assert_eq!(delta.count(), 7);
        assert_eq!(delta.sum, s.sum);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // Satellite contract: N threads × M records each land exactly
        // N·M records with bit-stable bucket bounds.
        const N: usize = 8;
        const M: u64 = 10_000;
        let h = histogram("test/concurrent");
        h.reset();
        std::thread::scope(|s| {
            for t in 0..N {
                s.spawn(move || {
                    for i in 0..M {
                        h.record((t as u64) * 17 + i % 4096);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), N as u64 * M, "concurrent records were lost");
        // Same records → same buckets, every run, every machine.
        let mut expect = [0u64; NUM_BUCKETS];
        for t in 0..N as u64 {
            for i in 0..M {
                expect[bucket_of(t * 17 + i % 4096)] += 1;
            }
        }
        assert_eq!(snap.buckets, expect, "bucket assignment is not bit-stable");
    }

    #[test]
    fn counters_and_gauges() {
        let c = counter("test/counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        let g = gauge("test/gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        // Same name → same handle.
        assert!(std::ptr::eq(c, counter("test/counter")));
    }

    #[test]
    fn spans_record_only_when_enabled() {
        let _serial = enabled_lock();
        let h = stage_histogram("test_span_stage");
        h.reset();
        set_enabled(false);
        drop(Span::enter("test_span_stage"));
        assert_eq!(h.snapshot().count(), 0, "disabled span must not record");
        set_enabled(true);
        drop(Span::enter("test_span_stage"));
        Span::enter("test_span_stage").cancel();
        set_enabled(false);
        assert_eq!(h.snapshot().count(), 1, "enabled span records once; cancel() does not");
    }

    #[test]
    fn trace_ids_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "trace id repeated");
        }
    }

    #[test]
    fn flight_recorder_is_bounded() {
        let _serial = enabled_lock();
        set_enabled(true);
        for i in 0..(FLIGHT_CAPACITY as u64 + 40) {
            flight_record(FlightEntry {
                trace_id: i + 1,
                request_id: i,
                protocol: "http",
                status: "ok",
                stages: vec![(stage::DISPATCH, i)],
            });
        }
        set_enabled(false);
        let entries = flight_entries();
        assert_eq!(entries.len(), FLIGHT_CAPACITY);
        // Oldest evicted first: the ring holds the *last* N entries.
        assert_eq!(entries.last().unwrap().trace_id, FLIGHT_CAPACITY as u64 + 40);
        assert_eq!(entries.first().unwrap().trace_id, 41);
    }

    #[test]
    fn prometheus_rendering_shape() {
        counter("promtest_requests").add(3);
        describe("promtest_requests", "Requests seen by the prom shape test.");
        gauge("promtest_depth").set(2);
        stage_histogram("promtest_stage").record(100);
        let text = render_prometheus();
        assert!(text.contains("igcn_promtest_requests_total 3"));
        assert!(text.contains("# TYPE igcn_promtest_requests_total counter"));
        assert!(text
            .contains("# HELP igcn_promtest_requests_total Requests seen by the prom shape test."));
        assert!(text.contains("igcn_promtest_depth 2"));
        assert!(
            text.contains("# HELP igcn_promtest_depth Instantaneous level promtest_depth."),
            "undescribed metrics get a per-kind default HELP"
        );
        assert!(text.contains("# HELP igcn_stage_ns "));
        assert!(text.contains("igcn_stage_ns{stage=\"promtest_stage\",quantile=\"0.5\"}"));
        assert!(text.contains("igcn_stage_ns_count{stage=\"promtest_stage\"}"));
        // Every line is `name{labels} value` or a comment — parseable.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "unparseable exposition line: {line:?}"
            );
        }
        // Every `# TYPE` family is preceded by a `# HELP` for the same
        // family — the satellite contract this PR adds.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let family = rest.split_whitespace().next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {family} ")),
                    "family {family} has no HELP line"
                );
            }
        }
    }

    #[test]
    fn disabled_span_overhead_is_nanoscale() {
        let _serial = enabled_lock();
        // The CI gate runs in obs_tool with a pinned 5 ns bound; here we
        // only sanity-check the probe returns something sub-microsecond.
        let ns = disabled_span_overhead_ns(200_000);
        assert!(ns < 1_000.0, "disabled span costs {ns} ns");
    }
}
