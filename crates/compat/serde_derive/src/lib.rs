//! No-op `Serialize`/`Deserialize` derives for the offline serde
//! stand-in.
//!
//! The companion `serde` shim blanket-implements its marker traits, so
//! these derives only need to *accept* the annotation (including
//! `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes;
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes;
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
